"""The synthetic Internet generator.

Builds a :class:`~repro.topology.model.Topology` from a
:class:`~repro.topology.config.TopologyConfig`:

1. **ASes** — region assignment by weight, one IPv4 /16 and one IPv6 /32
   each, an rDNS naming convention, a primary router vendor drawn from the
   regional market share, and a vendor-dominance level from a Beta
   distribution (Figure 17's shape);
2. **Routers** — per-AS counts from a bounded power-law (Figure 20),
   interface counts from a lognormal with a dual-stack boost (Figure 9),
   vendor from the AS's dominance model, engine IDs from the per-vendor
   format policy, uptimes from the Figure 13 mixture, plus every
   behavioural quirk population of §4.4/§8;
3. **Servers and CPE** — single-interface devices distributed across ASes,
   Net-SNMP / consumer vendor mixes, looser clocks, DHCP churn pools.

Two layouts share one set of derivation helpers:

* ``layout="sequential"`` (the default) threads a single seeded RNG and
  sequential address cursors through every device, in creation order —
  identical configs produce byte-identical Internets, and the draw order
  is load-bearing for seed stability.
* ``layout="streamed"`` derives each device from an *independent* RNG
  keyed on ``(seed, asn, slot)`` with arithmetic address slots, so the
  same device can be rebuilt in isolation at probe time
  (:class:`repro.topology.lazy.LazyTopology`) or eagerly via ``build()``
  — the two paths are byte-identical by construction because they call
  the same ``derive_*`` functions with the same RNG streams.

The ``derive_*`` module functions take every input explicitly
(config, RNG, allocator, shared populations); the generator class is a
thin sequential driver around them.
"""

from __future__ import annotations

import ipaddress
import math
import random
import zlib
from dataclasses import dataclass
from typing import Protocol

from repro.compat import keyword_only_compat
from repro.net.mac import MacAddress
from repro.oui.enterprise import enterprise_number, has_enterprise_number
from repro.oui.registry import OuiRegistry, default_registry
from repro.snmp.agent import AgentBehavior, SnmpAgent
from repro.snmp.loadbalancer import AgentPool, BalancingPolicy
from repro.snmp.engine_id import EngineId
from repro.topology import timeline
from repro.topology.config import REGION_AS_WEIGHTS, TopologyConfig
from repro.topology.model import (
    AutonomousSystem,
    Device,
    DeviceType,
    Interface,
    Region,
    Topology,
)

#: First-octet values usable for AS IPv4 /16 allocations (globally
#: routable unicast /8s only).
_USABLE_FIRST_OCTETS = [
    o
    for o in range(1, 224)
    if o not in (10, 100, 127, 169, 172, 192, 198, 203)
]

_RDNS_STYLES = ("iface-router", "router-iface", "flat", "opaque")

#: Software "vendors" whose boxes carry other makers' NICs.
NIC_SUBSTITUTES = {"Net-SNMP": ("Intel", "Realtek", "Supermicro", "Mellanox")}


@dataclass
class _VendorMacAllocator:
    """Hands out unique per-vendor MAC blocks."""

    registry: OuiRegistry

    def __post_init__(self) -> None:
        self._counters: dict[str, int] = {}

    NIC_SUBSTITUTES = NIC_SUBSTITUTES

    def next_mac(self, vendor: str, count: int = 1) -> MacAddress:
        """Allocate ``count`` consecutive MACs; return the first."""
        substitutes = self.NIC_SUBSTITUTES.get(vendor)
        if substitutes is not None:
            rotation = self._counters.get(vendor, 0)
            self._counters[vendor] = rotation + 1
            vendor = substitutes[rotation % len(substitutes)]
        index = self._counters.get(vendor, 1)
        self._counters[vendor] = index + count
        block, offset = divmod(index, 1 << 24)
        return self.registry.make_mac(vendor, block, offset)


class DeviceAllocator(Protocol):
    """Resource allocation surface the derivation helpers draw from.

    The sequential implementation threads global cursors (MAC counters,
    per-AS host counters, a device-id counter); the streamed slot
    implementation computes everything arithmetically from the device's
    slot so allocation is a pure function of ``(seed, asn, slot)``.
    """

    def next_mac(self, vendor: str, count: int = 1) -> MacAddress: ...

    def alloc_v4(self, asys: AutonomousSystem) -> ipaddress.IPv4Address: ...

    def alloc_v6(self, asys: AutonomousSystem) -> ipaddress.IPv6Address: ...

    def alloc_v6_eui64(self, asys: AutonomousSystem,
                       mac: MacAddress) -> ipaddress.IPv6Address: ...

    def next_device_id(self) -> int: ...

    def iface_cap(self, protocol: str) -> int: ...


class _SequentialAllocator:
    """Classic global-cursor allocation: order of creation is identity."""

    def __init__(self, *, config: TopologyConfig, registry: OuiRegistry) -> None:
        self._config = config
        self._macs = _VendorMacAllocator(registry)
        self._next_id = 1

    def next_mac(self, vendor: str, count: int = 1) -> MacAddress:
        return self._macs.next_mac(vendor, count)

    def alloc_v4(self, asys: AutonomousSystem) -> ipaddress.IPv4Address:
        index = asys.next_host  # type: ignore[attr-defined]
        asys.next_host = index + 1  # type: ignore[attr-defined]
        base = int(asys.ipv4_prefix.network_address)
        offset = 1 + index
        if offset >= asys.ipv4_prefix.num_addresses - 1:
            raise ValueError(f"AS{asys.asn} IPv4 prefix exhausted")
        return ipaddress.IPv4Address(base + offset)

    def alloc_v6_eui64(self, asys: AutonomousSystem,
                       mac: MacAddress) -> ipaddress.IPv6Address:
        """A SLAAC address: per-AS /64 subnet + modified EUI-64 host bits."""
        from repro.net.eui64 import eui64_interface_id

        index = asys.next_host
        asys.next_host = index + 1
        base = int(asys.ipv6_prefix.network_address)
        subnet = (index % 4096) << 64
        return ipaddress.IPv6Address(base + subnet + eui64_interface_id(mac))

    def alloc_v6(self, asys: AutonomousSystem) -> ipaddress.IPv6Address:
        # Reuse the same per-AS counter; v6 space never runs out.
        index = asys.next_host  # type: ignore[attr-defined]
        asys.next_host = index + 1  # type: ignore[attr-defined]
        base = int(asys.ipv6_prefix.network_address)
        # Spread hosts across /64s the way real plans do.
        subnet, host = divmod(index, 16)
        return ipaddress.IPv6Address(base + (subnet << 64) + host + 1)

    def next_device_id(self) -> int:
        device_id = self._next_id
        self._next_id = device_id + 1
        return device_id

    def iface_cap(self, protocol: str) -> int:
        return self._config.router_iface_max


@dataclass(frozen=True)
class SharedPopulations:
    """Cross-device engine-ID populations, a pure function of the config."""

    shared_bug_engine_id: EngineId
    cpe_shared_ids: tuple[EngineId, ...]
    promiscuous_data: tuple[bytes, ...]


def derive_shared_populations(cfg: TopologyConfig) -> SharedPopulations:
    """Pre-build the cloned-firmware engine IDs and promiscuous data."""
    cpe_shared: list[EngineId] = []
    for i in range(cfg.cpe_shared_engine_models):
        vendor = ("Thomson", "Broadcom", "Netgear")[i % 3]
        enterprise = enterprise_for(vendor)
        cpe_shared.append(EngineId.from_octets(enterprise, bytes([0x42 + i]) * 8))
    promiscuous = tuple(
        bytes([0xA0 + i, 0x00, 0x00, 0x00, 0x00, 0x01])
        for i in range(cfg.promiscuous_models)
    )
    return SharedPopulations(
        shared_bug_engine_id=EngineId(bytes.fromhex("8000000903000000000000")),
        cpe_shared_ids=tuple(cpe_shared),
        promiscuous_data=promiscuous,
    )


def enterprise_for(vendor: str) -> int:
    if has_enterprise_number(vendor):
        return enterprise_number(vendor)
    # Long-tail vendors without an embedded PEN get a deterministic
    # high private number, as many small vendors do in reality.
    return 50_000 + (zlib.crc32(vendor.encode()) % 10_000)


# -- per-device derivation ------------------------------------------------------
#
# Every helper below is a pure function of its arguments: config, an RNG
# positioned at the device's stream, an allocator, and the shared
# populations.  The sequential layout passes one global RNG through all of
# them in creation order; the streamed layout passes a per-device RNG.


def derive_router(cfg: TopologyConfig, rng: random.Random, alloc: DeviceAllocator,
                  shared: SharedPopulations, asys: AutonomousSystem,
                  primary: str, dominance: float) -> Device:
    region_share = cfg.router_vendor_share[asys.region]
    if rng.random() < dominance:
        vendor = primary
    else:
        others = {v: w for v, w in region_share.items() if v != primary and w > 0}
        if not others:
            vendor = primary
        else:
            vendor = rng.choices(list(others), weights=list(others.values()))[0]

    # Protocol mix and interface count.
    roll = rng.random()
    if roll < cfg.router_dual_frac:
        protocol = "dual"
    elif roll < cfg.router_dual_frac + cfg.router_v6_only_frac:
        protocol = "v6"
    else:
        protocol = "v4"
    n_ifaces = int(rng.lognormvariate(cfg.router_iface_mu, cfg.router_iface_sigma)) + 1
    if protocol == "dual":
        n_ifaces = int(n_ifaces * cfg.dual_stack_iface_boost) + 2
    n_ifaces = min(n_ifaces, alloc.iface_cap(protocol))

    first_mac = alloc.next_mac(vendor, n_ifaces)
    open_prob = asys.router_open_rate
    if vendor == "Juniper":
        open_prob *= cfg.juniper_open_factor
    snmp_open = rng.random() < open_prob

    interfaces: list[Interface] = []
    for i in range(n_ifaces):
        mac = first_mac.successor(i)
        if protocol == "v4":
            address: "ipaddress.IPv4Address | ipaddress.IPv6Address" = alloc.alloc_v4(asys)
        elif protocol == "v6":
            address = (
                alloc.alloc_v6_eui64(asys, mac)
                if rng.random() < cfg.eui64_v6_frac
                else alloc.alloc_v6(asys)
            )
        else:
            if i % 3:
                address = alloc.alloc_v4(asys)
            elif rng.random() < cfg.eui64_v6_frac:
                address = alloc.alloc_v6_eui64(asys, mac)
            else:
                address = alloc.alloc_v6(asys)
        reachable = rng.random() >= cfg.acl_interface_frac
        interfaces.append(
            Interface(address=address, mac=mac, snmp_reachable=reachable)
        )

    engine_id = derive_engine_id(cfg, rng, shared, vendor, DeviceType.ROUTER,
                                 first_mac, interfaces)
    agent, extras = derive_agent(cfg, rng, vendor, DeviceType.ROUTER, engine_id,
                                 skew_sigma=cfg.router_skew_sigma)
    return finish_device(
        cfg, rng, alloc, DeviceType.ROUTER, vendor, asys, interfaces, agent,
        snmp_open, dhcp_pool=False, extras=extras,
        open_tcp=rng.random() < cfg.router_open_tcp_frac,
    )


def derive_endhost(cfg: TopologyConfig, rng: random.Random, alloc: DeviceAllocator,
                   shared: SharedPopulations, asys: AutonomousSystem,
                   device_type: DeviceType, vendor: str) -> Device:
    if device_type is DeviceType.SERVER:
        roll = rng.random()
        dual = roll < cfg.server_dual_frac
        v6 = not dual and roll < cfg.server_dual_frac + cfg.server_v6_frac
        skew_sigma = cfg.server_skew_sigma
        snmp_open = rng.random() < cfg.server_snmp_open
        dhcp = False
        open_tcp = rng.random() < cfg.server_open_tcp_frac
    else:
        roll = rng.random()
        dual = roll < cfg.cpe_dual_frac
        v6 = not dual and roll < cfg.cpe_dual_frac + cfg.cpe_v6_frac
        skew_sigma = (
            cfg.cpe_skew_tight_sigma
            if rng.random() < cfg.cpe_skew_tight_frac
            else cfg.cpe_skew_sigma
        )
        snmp_open = rng.random() < cfg.cpe_snmp_open
        dhcp = rng.random() < cfg.cpe_dhcp_churn_frac
        open_tcp = rng.random() < cfg.cpe_open_tcp_frac

    if device_type is DeviceType.SERVER and rng.random() < cfg.server_multi_ip_frac:
        n_addrs = rng.randint(2, cfg.server_multi_ip_max)
    elif device_type is DeviceType.CPE and not dhcp \
            and rng.random() < cfg.cpe_multi_ip_frac:
        n_addrs = rng.randint(2, cfg.cpe_multi_ip_max)
    else:
        n_addrs = 1

    # Reserve the whole MAC block before deriving successor NICs, so
    # neighbouring devices never reuse an address.
    mac = alloc.next_mac(vendor, count=max(1, n_addrs))

    def alloc_v6_for(nic_mac: MacAddress) -> ipaddress.IPv6Address:
        if rng.random() < cfg.eui64_v6_frac:
            return alloc.alloc_v6_eui64(asys, nic_mac)
        return alloc.alloc_v6(asys)

    interfaces = []
    if dual:
        interfaces.append(Interface(alloc.alloc_v4(asys), mac=mac))
        interfaces.append(Interface(alloc_v6_for(mac), mac=mac))
        n_addrs = max(0, n_addrs - 2)
    elif v6:
        for i in range(n_addrs):
            nic = mac.successor(i)
            interfaces.append(Interface(alloc_v6_for(nic), mac=nic))
        n_addrs = 0
    for i in range(n_addrs):
        interfaces.append(Interface(alloc.alloc_v4(asys), mac=mac.successor(i)))

    engine_id = derive_engine_id(cfg, rng, shared, vendor, device_type, mac, interfaces)
    agent, extras = derive_agent(cfg, rng, vendor, device_type, engine_id,
                                 skew_sigma=skew_sigma)
    return finish_device(
        cfg, rng, alloc, device_type, vendor, asys, interfaces, agent, snmp_open,
        dhcp_pool=dhcp, extras=extras, open_tcp=open_tcp,
    )


def derive_load_balancer(cfg: TopologyConfig, rng: random.Random,
                         alloc: DeviceAllocator, asys: AutonomousSystem) -> Device:
    """A VIP fronting a pool of Net-SNMP backends (§9 extension)."""
    n_backends = rng.randint(cfg.lb_backends_min, cfg.lb_backends_max)
    backends = []
    for __ in range(n_backends):
        engine_id = EngineId.net_snmp_random(rng.randbytes(8))
        agent, __extras = derive_agent(
            cfg, rng, "Net-SNMP", DeviceType.SERVER, engine_id,
            skew_sigma=cfg.server_skew_sigma,
        )
        backends.append(agent)
    policy = (
        BalancingPolicy.SOURCE_HASH
        if rng.random() < cfg.lb_source_hash_frac
        else BalancingPolicy.ROUND_ROBIN
    )
    pool = AgentPool(backends=backends, policy=policy)
    vip = Interface(alloc.alloc_v4(asys), mac=alloc.next_mac("Net-SNMP"))
    return Device(
        device_id=alloc.next_device_id(),
        device_type=DeviceType.LOAD_BALANCER,
        vendor="Net-SNMP",
        asn=asys.asn,
        region=asys.region,
        interfaces=[vip],
        agent=backends[0],
        snmp_open=rng.random() < cfg.server_snmp_open,
        open_tcp_ports=(80, 443),
        os_family="Linux",
        agent_pool=pool,
    )


def derive_engine_id(cfg: TopologyConfig, rng: random.Random,
                     shared: SharedPopulations, vendor: str,
                     device_type: DeviceType, mac: MacAddress,
                     interfaces: list[Interface]) -> EngineId:
    from repro.topology.config import ENGINE_ID_POLICY

    # Cloned-firmware / buggy populations first.
    if vendor == "Cisco" and rng.random() < cfg.cisco_shared_bug_frac:
        return shared.shared_bug_engine_id
    if device_type is DeviceType.CPE and shared.cpe_shared_ids \
            and rng.random() < cfg.cpe_shared_engine_frac:
        return rng.choice(shared.cpe_shared_ids)
    if rng.random() < cfg.promiscuous_frac and shared.promiscuous_data:
        data = rng.choice(shared.promiscuous_data)
        enterprise = enterprise_for(vendor)
        return EngineId(
            (0x80000000 | enterprise).to_bytes(4, "big") + b"\x03" + data
        )

    policy_key = vendor
    if device_type is DeviceType.CPE and f"{vendor}-CPE" in ENGINE_ID_POLICY:
        policy_key = f"{vendor}-CPE"
    policy = ENGINE_ID_POLICY.get(policy_key, (("mac", 1.0),))
    # IPv6-visible CPE frequently derive the engine ID from their IPv4
    # WAN address — the paper finds >15% IPv4-format engine IDs in its
    # IPv6 scans, revealing dual-stack deployments.
    if device_type is DeviceType.CPE and any(
        i.version == 6 for i in interfaces
    ) and rng.random() < 0.18:
        policy = (("ipv4", 1.0),)
    formats = [f for f, __ in policy]
    weights = [w for __, w in policy]
    fmt = rng.choices(formats, weights=weights)[0]
    enterprise = enterprise_for(vendor)

    if fmt == "mac":
        return EngineId.from_mac(enterprise, mac)
    if fmt == "ipv4":
        v4_addrs = [i.address for i in interfaces if i.version == 4]
        if v4_addrs and rng.random() < 0.85:
            address = v4_addrs[0]
        else:
            # Embed an RFC1918 address: the device manages a private
            # LAN behind a NAT.  Feeds the unroutable filter — and the
            # NAT-inference extension (§9 future work).
            address = ipaddress.IPv4Address(
                f"192.168.{rng.randrange(256)}.{rng.randrange(1, 255)}"
            )
        return EngineId.from_ipv4(enterprise, address)
    if fmt == "text":
        return EngineId.from_text(enterprise, f"snmp-{rng.randrange(1 << 30):08x}")
    if fmt == "octets":
        return EngineId.from_octets(enterprise, rng.randbytes(8))
    if fmt == "net-snmp":
        return EngineId.net_snmp_random(rng.randbytes(8))
    if fmt == "legacy":
        # Mostly sparse bit patterns with a dense minority: the
        # positively skewed Hamming-weight distribution of Figure 6.
        # AUDITED (PR 3): ANDing two independent draws is a deliberate
        # bias, not a bug — each bit is 1 with probability 0.25, so a
        # byte's expected weight drops from 4 to 2, reproducing the
        # low-weight mode of the figure.  Two RNG draws per byte is
        # also load-bearing for seeded-stream stability: replacing it
        # with one draw would shift every later draw and regenerate
        # the topology.  Both draws use the seeded generator, so
        # determinism is unaffected.
        if rng.random() < 0.7:
            data = bytes(
                rng.getrandbits(8) & rng.getrandbits(8)
                for __ in range(8)
            )
        else:
            data = rng.randbytes(8)
        return EngineId.legacy(enterprise, data)
    raise ValueError(f"unknown engine-ID format policy: {fmt!r}")


def sample_uptime(cfg: TopologyConfig, rng: random.Random) -> float:
    day = timeline.SECONDS_PER_DAY
    segments = ((0.0, 30.0), (30.0, 105.0), (105.0, 365.0),
                (365.0, cfg.uptime_max_days))
    seg = rng.choices(segments, weights=cfg.uptime_weights)[0]
    return rng.uniform(seg[0] * day, seg[1] * day)


def derive_agent(cfg: TopologyConfig, rng: random.Random, vendor: str,
                 device_type: DeviceType, engine_id: EngineId,
                 skew_sigma: float) -> tuple[SnmpAgent, dict]:
    uptime = sample_uptime(cfg, rng)
    boot_time = timeline.SCAN1_V4_START - uptime
    age_years = uptime / timeline.SECONDS_PER_YEAR + rng.uniform(0.0, 6.0)
    boots = 1 + _poisson(rng, age_years * cfg.boots_per_year)

    implicit_v3 = (
        vendor in cfg.implicit_v3_vendors
        and rng.random() < cfg.implicit_v3_frac
    )
    # Adversarial personalities ride behind an opt-in knob: the guard
    # short-circuits before any RNG draw when the fraction is zero, so
    # legacy seeded streams are untouched.
    garbage_reports = False
    engine_id_pad_to = 0
    response_delay = 0.0
    reboot_after_handles = 0
    if cfg.adversarial_frac > 0.0 and rng.random() < cfg.adversarial_frac:
        kind = rng.choice(("garbage", "pad", "delay", "reboot-handles"))
        if kind == "garbage":
            garbage_reports = True
        elif kind == "pad":
            engine_id_pad_to = rng.choice((3, 4, 33, 40))
        elif kind == "delay":
            response_delay = rng.uniform(0.5, 3.0)
        else:
            reboot_after_handles = rng.randint(2, 6)
    behavior = AgentBehavior(
        amplification_count=(
            rng.randint(2, cfg.amplification_max)
            if rng.random() < cfg.amplification_frac
            else 1
        ),
        v3_enabled=not implicit_v3,
        v3_enabled_by_community=implicit_v3,
        report_zero_time=rng.random() < cfg.zero_time_frac,
        report_empty_engine_id=rng.random() < cfg.empty_engine_frac,
        future_time_offset=(
            2 ** 31 if rng.random() < cfg.future_time_frac else 0
        ),
        clock_skew=rng.gauss(0.0, skew_sigma),
        malformed=rng.random() < cfg.malformed_frac,
        garbage_reports=garbage_reports,
        engine_id_pad_to=engine_id_pad_to,
        response_delay=response_delay,
        reboot_after_handles=reboot_after_handles,
    )
    agent = SnmpAgent(
        engine_id=engine_id,
        boot_time=boot_time,
        engine_boots=boots,
        behavior=behavior,
        # The operator "only" configured a read community; v3
        # discovery rides along implicitly (the lab finding).
        communities=(b"public",) if implicit_v3 else (),
    )
    extras = {
        "reboot_between_scans": rng.random() < cfg.reboot_between_scans_frac,
    }
    return agent, extras


def finish_device(cfg: TopologyConfig, rng: random.Random, alloc: DeviceAllocator,
                  device_type: DeviceType, vendor: str,
                  asys: AutonomousSystem, interfaces: list[Interface],
                  agent: SnmpAgent, snmp_open: bool, dhcp_pool: bool,
                  extras: dict, open_tcp: bool) -> Device:
    device_id = alloc.next_device_id()

    sequential = rng.random() < cfg.sequential_ip_id_frac
    ip_id_rate = (
        math.exp(rng.uniform(math.log(cfg.ip_id_rate_low), math.log(cfg.ip_id_rate_high)))
        if sequential
        else 0.0
    )
    if device_type is DeviceType.ROUTER:
        ports = (22, 23) if open_tcp else ()
    elif device_type is DeviceType.SERVER:
        ports = (22, 80, 443) if open_tcp else ()
    else:
        ports = (80, 7547) if open_tcp else ()

    os_family = {
        "Cisco": "IOS", "Juniper": "JunOS", "Huawei": "VRP", "H3C": "Comware",
        "Net-SNMP": "Linux", "MikroTik": "RouterOS", "Brocade": "NetIron",
    }.get(vendor, "embedded")

    from repro.net.addresses import is_routable_ipv4
    from repro.snmp.engine_id import EngineIdFormat

    engine_id = agent.engine_id
    is_nat = (
        engine_id.format is EngineIdFormat.IPV4
        and engine_id.ip is not None
        and not is_routable_ipv4(engine_id.ip)
    )
    device = Device(
        device_id=device_id,
        device_type=device_type,
        vendor=vendor,
        asn=asys.asn,
        region=asys.region,
        interfaces=interfaces,
        agent=agent,
        snmp_open=snmp_open,
        dhcp_pool=dhcp_pool,
        open_tcp_ports=ports,
        ip_id_rate=ip_id_rate,
        ip_id_random=not sequential and rng.random() < 0.6,
        os_family=os_family,
        nat_gateway=is_nat,
    )
    device.reboot_between_scans = extras["reboot_between_scans"]  # type: ignore[attr-defined]
    return device


@keyword_only_compat("config", "registry")
class TopologyGenerator:
    """Deterministic topology builder.

    Arguments are keyword-only; the positional
    ``TopologyGenerator(config, registry)`` form is deprecated but
    still accepted.
    """

    def __init__(self, *, config: "TopologyConfig | None" = None,
                 registry: "OuiRegistry | None" = None) -> None:
        self.config = config or TopologyConfig()
        self.registry = registry or default_registry()
        self._rng = random.Random(self.config.seed)
        self._alloc = _SequentialAllocator(config=self.config, registry=self.registry)
        self._shared: "SharedPopulations | None" = None

    # -- public API ---------------------------------------------------------

    def build(self) -> Topology:
        """Generate the full topology."""
        cfg = self.config
        if cfg.layout == "streamed":
            return self._build_streamed()
        ases = self._build_ases()
        as_list = list(ases.values())
        router_counts = self._router_counts_per_as(as_list)
        devices: dict[int, Device] = {}

        shared = self._shared_populations()

        for asys, n_routers in zip(as_list, router_counts):
            asys.router_open_rate = self._open_rate_for(n_routers)
            primary, dominance = self._as_vendor_profile(asys.region, n_routers)
            for __ in range(n_routers):
                device = derive_router(cfg, self._rng, self._alloc, shared,
                                       asys, primary, dominance)
                devices[device.device_id] = device
                asys.device_ids.append(device.device_id)

        self._scatter_endhosts(as_list, router_counts, devices, DeviceType.SERVER, cfg.n_servers)
        self._scatter_endhosts(as_list, router_counts, devices, DeviceType.CPE, cfg.n_cpe)
        n_lbs = round(cfg.n_servers * cfg.lb_frac_of_servers)
        self._scatter_load_balancers(as_list, router_counts, devices, n_lbs)

        return Topology(ases=ases, devices=devices, seed=cfg.seed,
                        epoch=timeline.REFERENCE_TIME)

    def _build_streamed(self) -> Topology:
        """Eagerly materialize the streamed layout.

        Same per-slot derivation as :class:`repro.topology.lazy.LazyTopology`
        — the differential test suites assert the two are byte-identical.
        """
        from repro.topology.lazy import StreamPlan, build_as_objects, derive_device

        cfg = self.config
        plan = StreamPlan(config=cfg)
        shared = self._shared_populations()
        ases = build_as_objects(plan)
        devices: dict[int, Device] = {}
        for slot in plan.iter_slots():
            device = derive_device(cfg, self.registry, plan, slot, shared, ases)
            devices[device.device_id] = device
            ases[slot.asn].device_ids.append(device.device_id)
        topology = Topology(ases=ases, devices=devices, seed=cfg.seed,
                            epoch=timeline.REFERENCE_TIME, layout="streamed")
        topology.stream_plan = plan  # type: ignore[attr-defined]
        topology.stream_config = cfg  # type: ignore[attr-defined]
        return topology

    def _shared_populations(self) -> SharedPopulations:
        if self._shared is None:
            self._shared = derive_shared_populations(self.config)
        return self._shared

    # -- AS construction --------------------------------------------------------

    def _build_ases(self) -> dict[int, AutonomousSystem]:
        cfg = self.config
        rng = self._rng
        regions = list(REGION_AS_WEIGHTS)
        weights = [REGION_AS_WEIGHTS[r] for r in regions]
        ases: dict[int, AutonomousSystem] = {}
        for index in range(cfg.n_ases):
            asn = 64500 + index
            region = rng.choices(regions, weights=weights)[0]
            first = _USABLE_FIRST_OCTETS[index // 256 % len(_USABLE_FIRST_OCTETS)]
            second = index % 256
            v4 = ipaddress.ip_network(f"{first}.{second}.0.0/16")
            v6 = ipaddress.ip_network((int(ipaddress.IPv6Address("2a00::"))
                                       + (index << 96), 32))
            style = rng.choices(_RDNS_STYLES, weights=(0.35, 0.30, 0.15, 0.20))[0]
            asys = AutonomousSystem(
                asn=asn,
                region=region,
                ipv4_prefix=v4,
                ipv6_prefix=v6,
                name=f"AS{asn}",
                rdns_suffix=f"net{asn}.example",
            )
            asys.rdns_style = style
            ases[asn] = asys
        return ases

    #: Mild per-region AS-size multiplier reconciling the regional router
    #: totals of Figure 15 with the region AS-count weights (AF/OC hold few
    #: routers spread over comparatively many networks).
    _REGION_SIZE_FACTOR = {
        Region.EU: 1.10, Region.NA: 1.05, Region.AS: 1.05,
        Region.SA: 1.10, Region.AF: 0.35, Region.OC: 0.33,
    }

    def _router_counts_per_as(self, as_list: list[AutonomousSystem]) -> list[int]:
        """Power-law router counts per AS.

        Calibrated to the paper's §6.4.1 tail fractions (18% of networks
        hold 5+ routers, 6.8% hold 20+, 1.7% hold 100+): a Pareto with
        ``alpha ~= 0.8`` and ``x_m ~= 0.6``, truncated, then rescaled so the
        counts sum to the configured router total.
        """
        cfg = self.config
        rng = self._rng
        alpha = cfg.router_per_as_alpha
        high = max(20.0, cfg.n_routers * 0.03)
        low = 0.6
        raw: list[float] = []
        for asys in as_list:
            u = rng.random()
            x = (low ** -alpha - u * (low ** -alpha - high ** -alpha)) ** (-1.0 / alpha)
            raw.append(x * self._REGION_SIZE_FACTOR[asys.region])
        scale = cfg.n_routers / sum(raw)
        counts = [max(1, round(x * scale)) for x in raw]
        # Trim or pad the largest AS so the total lands on target.
        delta = cfg.n_routers - sum(counts)
        counts[max(range(len(counts)), key=counts.__getitem__)] += delta
        return counts

    def _open_rate_for(self, n_routers: int) -> float:
        """AS-level SNMP exposure policy, inversely tied to network size:
        backbones segregate management traffic, small shops often do not.
        This produces Figure 10's wide coverage spread while keeping the
        overall responsive fraction near 16%."""
        cfg = self.config
        mixture = (
            cfg.large_as_open_rates
            if n_routers >= cfg.large_as_threshold
            else cfg.as_router_open_rates
        )
        rates = [r for r, __ in mixture]
        weights = [w for __, w in mixture]
        return self._rng.choices(rates, weights=weights)[0]

    #: Vendors eligible to dominate a very large network (Figure 16: every
    #: top-10 AS is run on Cisco or Huawei, one partly on UNIX routers).
    _MAJOR_VENDORS = ("Cisco", "Huawei", "Net-SNMP")

    def _as_vendor_profile(self, region: Region, n_routers: int) -> tuple[str, float]:
        """Primary vendor and dominance level for one AS.

        Small networks draw their primary vendor from the full regional
        market share; large networks (the Figure 16 population) only from
        the major vendors — niche vendors do not run 5k-router backbones.
        """
        cfg = self.config
        share = dict(cfg.router_vendor_share[region])
        if n_routers >= max(20, cfg.router_per_as_max // 3):
            share = {v: share.get(v, 0.0) for v in self._MAJOR_VENDORS}
        vendors = [v for v, w in share.items() if w > 0]
        weights = [share[v] for v in vendors]
        primary = self._rng.choices(vendors, weights=weights)[0]
        if self._rng.random() < cfg.single_vendor_as_frac:
            return primary, 1.0
        dominance = self._rng.betavariate(cfg.dominance_beta_a, cfg.dominance_beta_b)
        return primary, min(1.0, max(0.3, dominance))

    # -- servers / CPE ----------------------------------------------------------------

    def _scatter_endhosts(
        self,
        as_list: list[AutonomousSystem],
        router_counts: list[int],
        devices: dict[int, Device],
        device_type: DeviceType,
        total: int,
    ) -> None:
        cfg = self.config
        rng = self._rng
        weights = [rc + 2.0 for rc in router_counts]
        share = cfg.server_vendor_share if device_type is DeviceType.SERVER else cfg.cpe_vendor_share
        vendors = list(share)
        vendor_weights = [share[v] for v in vendors]
        chosen_as = rng.choices(range(len(as_list)), weights=weights, k=total)
        shared = self._shared_populations()
        for as_index in chosen_as:
            asys = as_list[as_index]
            vendor = rng.choices(vendors, weights=vendor_weights)[0]
            device = derive_endhost(cfg, rng, self._alloc, shared, asys,
                                    device_type, vendor)
            devices[device.device_id] = device
            asys.device_ids.append(device.device_id)

    def _scatter_load_balancers(
        self,
        as_list: list[AutonomousSystem],
        router_counts: list[int],
        devices: dict[int, Device],
        total: int,
    ) -> None:
        """Create VIPs fronting pools of Net-SNMP backends (§9 extension)."""
        cfg = self.config
        rng = self._rng
        weights = [rc + 2.0 for rc in router_counts]
        for as_index in rng.choices(range(len(as_list)), weights=weights, k=total):
            asys = as_list[as_index]
            device = derive_load_balancer(cfg, rng, self._alloc, asys)
            devices[device.device_id] = device
            asys.device_ids.append(device.device_id)


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's algorithm for small lambda; normal approximation above."""
    if lam <= 0:
        return 0
    if lam > 30:
        return max(0, int(rng.gauss(lam, math.sqrt(lam)) + 0.5))
    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def build_topology(config: "TopologyConfig | None" = None) -> Topology:
    """One-call convenience wrapper."""
    return TopologyGenerator(config=config).build()
