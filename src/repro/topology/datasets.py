"""Third-party dataset views over the simulated topology.

The paper tags router IPs using CAIDA's ITDK, RIPE Atlas traceroute hops
and the IPv6 Hitlist (Table 2), and compares its alias sets with the
Router Names rDNS dataset (§5.2).  We derive the equivalent views from
ground truth, with realistic incompleteness:

* **ITDK** — a large sample of router interfaces (MIDAR/Speedtrap-seen);
* **RIPE Atlas** — a much smaller traceroute-hop sample;
* **IPv6 Hitlist** — v6 addresses of all device classes (routers *and*
  the CPE churn population, which the paper notes inflates it);
* **rDNS zone** — PTR records for a fraction of router interfaces,
  following each AS's naming convention.  Some conventions encode a
  router name (usable by the Router Names technique), some do not.

Sampling is seeded from the topology seed, so views are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.addresses import IPAddress
from repro.topology.config import TopologyConfig
from repro.topology.model import DeviceType, Topology


@dataclass(frozen=True)
class RouterDatasets:
    """Address sets mirroring Table 2's third-party datasets.

    ``hitlist_targets_v6`` is the broad IPv6 scan-target list (the paper's
    364M non-aliased hitlist addresses); ``hitlist_v6`` is the narrower
    router-tagging view — addresses observed as routed hops in hitlist
    traceroutes, which include some (but far from all) residential CPE.
    """

    itdk_v4: frozenset[IPAddress]
    itdk_v6: frozenset[IPAddress]
    ripe_v4: frozenset[IPAddress]
    ripe_v6: frozenset[IPAddress]
    hitlist_v6: frozenset[IPAddress]
    hitlist_targets_v6: frozenset[IPAddress]

    @property
    def union_v4(self) -> frozenset[IPAddress]:
        """The union router dataset for IPv4 (ITDK + RIPE)."""
        return self.itdk_v4 | self.ripe_v4

    @property
    def union_v6(self) -> frozenset[IPAddress]:
        """The union router dataset for IPv6 (ITDK + RIPE + hitlist hops)."""
        return self.itdk_v6 | self.ripe_v6 | self.hitlist_v6

    def is_router_ip(self, address: IPAddress) -> bool:
        """Router-tagging test used throughout the evaluation."""
        if address.version == 4:
            return address in self.union_v4
        return address in self.union_v6


def build_router_datasets(topology: Topology, config: TopologyConfig) -> RouterDatasets:
    """Derive the dataset views.

    ITDK and the hitlist are sampled from ground truth; the RIPE Atlas
    view is, by default, *measured*: simulated traceroutes from a set of
    vantage networks reveal intermediate router interfaces (silent hops
    and unused paths make the view incomplete, as in reality).
    """
    rng = random.Random(topology.seed ^ 0x17DC)
    itdk_v4: set[IPAddress] = set()
    itdk_v6: set[IPAddress] = set()
    ripe_v4: set[IPAddress] = set()
    ripe_v6: set[IPAddress] = set()
    hitlist_hops: set[IPAddress] = set()
    hitlist_targets: set[IPAddress] = set()

    use_traces = config.ripe_from_traceroutes
    for device in topology.devices.values():
        is_router = device.device_type is DeviceType.ROUTER
        for interface in device.interfaces:
            if is_router:
                if interface.version == 4:
                    if rng.random() < config.itdk_router_frac:
                        itdk_v4.add(interface.address)
                    if not use_traces and rng.random() < config.ripe_router_frac:
                        ripe_v4.add(interface.address)
                else:
                    if rng.random() < config.itdk_router_frac * 0.5:
                        itdk_v6.add(interface.address)
                    if not use_traces and rng.random() < config.ripe_router_frac:
                        ripe_v6.add(interface.address)
                    if rng.random() < config.hitlist_router_frac:
                        hitlist_hops.add(interface.address)
                        hitlist_targets.add(interface.address)
                    elif rng.random() < config.hitlist_router_frac:
                        hitlist_targets.add(interface.address)
            elif interface.version == 6:
                is_cpe = device.device_type is DeviceType.CPE
                target_frac = (
                    config.hitlist_cpe_frac if is_cpe else config.hitlist_server_frac
                )
                if rng.random() < target_frac:
                    hitlist_targets.add(interface.address)
                    # Only occasionally does an end host show up as a
                    # routed hop (residential gateways in IPv6, §3.4).
                    if is_cpe and rng.random() < config.hitlist_routed_cpe_frac:
                        hitlist_hops.add(interface.address)

    if use_traces:
        traced_v4, traced_v6 = _ripe_from_traceroutes(topology, config, rng)
        ripe_v4 |= traced_v4
        ripe_v6 |= traced_v6

    return RouterDatasets(
        itdk_v4=frozenset(itdk_v4),
        itdk_v6=frozenset(itdk_v6),
        ripe_v4=frozenset(ripe_v4),
        ripe_v6=frozenset(ripe_v6),
        hitlist_v6=frozenset(hitlist_hops),
        hitlist_targets_v6=frozenset(hitlist_targets),
    )


def _ripe_from_traceroutes(
    topology: Topology, config: TopologyConfig, rng: random.Random
) -> "tuple[set[IPAddress], set[IPAddress]]":
    """Run the simulated Atlas campaign and split hops by family."""
    from repro.topology.traceroute import TracerouteEngine

    engine = TracerouteEngine(topology)
    vantage_asns = sorted(topology.ases)
    rng.shuffle(vantage_asns)
    vantage_asns = vantage_asns[: max(1, config.ripe_vantage_count)]
    targets = [
        address
        for address in topology.all_addresses(4) + topology.all_addresses(6)
        if rng.random() < config.ripe_target_frac
    ]
    revealed = engine.atlas_campaign(vantage_asns, targets)
    v4 = {a for a in revealed if a.version == 4}
    v6 = {a for a in revealed if a.version == 6}
    return v4, v6


# -- rDNS zone ------------------------------------------------------------------


@dataclass
class RdnsZone:
    """PTR records for router interfaces plus per-AS convention metadata."""

    records: dict[IPAddress, str] = field(default_factory=dict)
    #: AS suffix -> naming style ("iface-router", "router-iface", "flat",
    #: "opaque"); only the first two encode an extractable router name.
    suffix_styles: dict[str, str] = field(default_factory=dict)

    def ptr(self, address: IPAddress) -> "str | None":
        return self.records.get(address)

    def __len__(self) -> int:
        return len(self.records)


def build_rdns_zone(topology: Topology, config: TopologyConfig) -> RdnsZone:
    """Generate PTR records for router interfaces per each AS's style."""
    rng = random.Random(topology.seed ^ 0x0D25)
    zone = RdnsZone()
    for asys in topology.ases.values():
        zone.suffix_styles[asys.rdns_suffix] = asys.rdns_style
        router_index = 0
        for device_id in asys.device_ids:
            device = topology.devices[device_id]
            if device.device_type is not DeviceType.ROUTER:
                continue
            router_index += 1
            router_name = f"r{router_index:04d}"
            for iface_index, interface in enumerate(device.interfaces):
                if rng.random() >= config.rdns_ptr_frac:
                    continue
                zone.records[interface.address] = _hostname(
                    asys.rdns_style, asys.rdns_suffix, router_name,
                    iface_index, interface.address, rng,
                )
    return zone


def _hostname(style: str, suffix: str, router_name: str, iface_index: int,
              address: IPAddress, rng: random.Random) -> str:
    if style == "iface-router":
        return f"et-{iface_index}.{router_name}.{suffix}"
    if style == "router-iface":
        return f"{router_name}-eth{iface_index}.{suffix}"
    if style == "flat":
        dashed = str(address).replace(".", "-").replace(":", "-")
        return f"host-{dashed}.{suffix}"
    # "opaque": no structure at all.
    return f"x{rng.randrange(1 << 32):08x}.{suffix}"
