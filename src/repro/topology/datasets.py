"""Third-party dataset views over the simulated topology.

The paper tags router IPs using CAIDA's ITDK, RIPE Atlas traceroute hops
and the IPv6 Hitlist (Table 2), and compares its alias sets with the
Router Names rDNS dataset (§5.2).  We derive the equivalent views from
ground truth, with realistic incompleteness:

* **ITDK** — a large sample of router interfaces (MIDAR/Speedtrap-seen);
* **RIPE Atlas** — a much smaller traceroute-hop sample;
* **IPv6 Hitlist** — v6 addresses of all device classes (routers *and*
  the CPE churn population, which the paper notes inflates it);
* **rDNS zone** — PTR records for a fraction of router interfaces,
  following each AS's naming convention.  Some conventions encode a
  router name (usable by the Router Names technique), some do not.

Sampling is seeded from the topology seed, so views are reproducible.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Callable, Iterator

from repro.net.addresses import IPAddress
from repro.topology.config import TopologyConfig
from repro.topology.model import DeviceType, Topology

if TYPE_CHECKING:
    from pathlib import Path

    from repro.topology.lazy import DeviceSlot, SlotMembership, StreamPlan
    from repro.topology.model import Device


@dataclass(frozen=True)
class RouterDatasets:
    """Address sets mirroring Table 2's third-party datasets.

    ``hitlist_targets_v6`` is the broad IPv6 scan-target list (the paper's
    364M non-aliased hitlist addresses); ``hitlist_v6`` is the narrower
    router-tagging view — addresses observed as routed hops in hitlist
    traceroutes, which include some (but far from all) residential CPE.

    The RIPE Atlas view is deferred: under ``ripe_from_traceroutes`` it
    costs a simulated global traceroute campaign, and the scan phase
    only ever reads the hitlist (v6 target list) — so ``ripe_loader``
    runs on first access of ``ripe_v4``/``ripe_v6``, off the campaign
    wall.  The loader resumes a captured RNG state, so the deferred sets
    are value-identical to the eagerly built ones.
    """

    itdk_v4: frozenset[IPAddress]
    itdk_v6: frozenset[IPAddress]
    hitlist_v6: frozenset[IPAddress]
    hitlist_targets_v6: frozenset[IPAddress]
    ripe_loader: "Callable[[], tuple[frozenset[IPAddress], frozenset[IPAddress]]]" = field(
        repr=False, compare=False
    )

    @cached_property
    def _ripe(self) -> "tuple[frozenset[IPAddress], frozenset[IPAddress]]":
        return self.ripe_loader()

    @property
    def ripe_v4(self) -> frozenset[IPAddress]:
        return self._ripe[0]

    @property
    def ripe_v6(self) -> frozenset[IPAddress]:
        return self._ripe[1]

    @cached_property
    def union_v4(self) -> frozenset[IPAddress]:
        """The union router dataset for IPv4 (ITDK + RIPE)."""
        return self.itdk_v4 | self.ripe_v4

    @cached_property
    def union_v6(self) -> frozenset[IPAddress]:
        """The union router dataset for IPv6 (ITDK + RIPE + hitlist hops)."""
        return self.itdk_v6 | self.ripe_v6 | self.hitlist_v6

    def is_router_ip(self, address: IPAddress) -> bool:
        """Router-tagging test used throughout the evaluation."""
        if address.version == 4:
            return address in self.union_v4
        return address in self.union_v6


def build_router_datasets(topology: Topology, config: TopologyConfig) -> RouterDatasets:
    """Derive the dataset views.

    ITDK and the hitlist are sampled from ground truth; the RIPE Atlas
    view is, by default, *measured*: simulated traceroutes from a set of
    vantage networks reveal intermediate router interfaces (silent hops
    and unused paths make the view incomplete, as in reality).
    """
    rng = random.Random(topology.seed ^ 0x17DC)
    itdk_v4: set[IPAddress] = set()
    itdk_v6: set[IPAddress] = set()
    ripe_v4: set[IPAddress] = set()
    ripe_v6: set[IPAddress] = set()
    hitlist_hops: set[IPAddress] = set()
    hitlist_targets: set[IPAddress] = set()

    use_traces = config.ripe_from_traceroutes
    for device in topology.devices.values():
        is_router = device.device_type is DeviceType.ROUTER
        for interface in device.interfaces:
            if is_router:
                if interface.version == 4:
                    if rng.random() < config.itdk_router_frac:
                        itdk_v4.add(interface.address)
                    if not use_traces and rng.random() < config.ripe_router_frac:
                        ripe_v4.add(interface.address)
                else:
                    if rng.random() < config.itdk_router_frac * 0.5:
                        itdk_v6.add(interface.address)
                    if not use_traces and rng.random() < config.ripe_router_frac:
                        ripe_v6.add(interface.address)
                    if rng.random() < config.hitlist_router_frac:
                        hitlist_hops.add(interface.address)
                        hitlist_targets.add(interface.address)
                    elif rng.random() < config.hitlist_router_frac:
                        hitlist_targets.add(interface.address)
            elif interface.version == 6:
                is_cpe = device.device_type is DeviceType.CPE
                target_frac = (
                    config.hitlist_cpe_frac if is_cpe else config.hitlist_server_frac
                )
                if rng.random() < target_frac:
                    hitlist_targets.add(interface.address)
                    # Only occasionally does an end host show up as a
                    # routed hop (residential gateways in IPv6, §3.4).
                    if is_cpe and rng.random() < config.hitlist_routed_cpe_frac:
                        hitlist_hops.add(interface.address)

    if use_traces:
        # Defer the simulated Atlas campaign to first RIPE access: the
        # captured RNG state resumes exactly where the device sweep left
        # off, so the traced sets are identical to an eager run's — the
        # campaign wall just no longer pays for a view only the analysis
        # phase reads.  Churn and reboots never touch the structural
        # topology (interfaces, ASes, forwarding), so running the
        # traceroutes later sees the same world.
        rng_state = rng.getstate()

        def ripe_loader() -> "tuple[frozenset[IPAddress], frozenset[IPAddress]]":
            # Seedless construction is deliberate: setstate() replaces
            # the entire generator state on the next line.
            resumed = random.Random()  # repro-lint: disable=DET001
            resumed.setstate(rng_state)
            traced_v4, traced_v6 = _ripe_from_traceroutes(
                topology, config, resumed
            )
            return (
                frozenset(ripe_v4 | traced_v4),
                frozenset(ripe_v6 | traced_v6),
            )
    else:
        frozen_ripe = (frozenset(ripe_v4), frozenset(ripe_v6))

        def ripe_loader() -> "tuple[frozenset[IPAddress], frozenset[IPAddress]]":
            return frozen_ripe

    return RouterDatasets(
        itdk_v4=frozenset(itdk_v4),
        itdk_v6=frozenset(itdk_v6),
        hitlist_v6=frozenset(hitlist_hops),
        hitlist_targets_v6=frozenset(hitlist_targets),
        ripe_loader=ripe_loader,
    )


def _ripe_from_traceroutes(
    topology: Topology, config: TopologyConfig, rng: random.Random
) -> "tuple[set[IPAddress], set[IPAddress]]":
    """Run the simulated Atlas campaign and split hops by family."""
    from repro.topology.traceroute import TracerouteEngine

    engine = TracerouteEngine(topology)
    vantage_asns = sorted(topology.ases)
    rng.shuffle(vantage_asns)
    vantage_asns = vantage_asns[: max(1, config.ripe_vantage_count)]
    targets = [
        address
        for address in topology.all_addresses(4) + topology.all_addresses(6)
        if rng.random() < config.ripe_target_frac
    ]
    revealed = engine.atlas_campaign(vantage_asns, targets)
    v4 = {a for a in revealed if a.version == 4}
    v6 = {a for a in revealed if a.version == 6}
    return v4, v6


# -- rDNS zone ------------------------------------------------------------------


@dataclass
class RdnsZone:
    """PTR records for router interfaces plus per-AS convention metadata."""

    records: dict[IPAddress, str] = field(default_factory=dict)
    #: AS suffix -> naming style ("iface-router", "router-iface", "flat",
    #: "opaque"); only the first two encode an extractable router name.
    suffix_styles: dict[str, str] = field(default_factory=dict)

    def ptr(self, address: IPAddress) -> "str | None":
        return self.records.get(address)

    def __len__(self) -> int:
        return len(self.records)


def build_rdns_zone(topology: Topology, config: TopologyConfig) -> RdnsZone:
    """Generate PTR records for router interfaces per each AS's style."""
    rng = random.Random(topology.seed ^ 0x0D25)
    zone = RdnsZone()
    for asys in topology.ases.values():
        zone.suffix_styles[asys.rdns_suffix] = asys.rdns_style
        router_index = 0
        for device_id in asys.device_ids:
            device = topology.devices[device_id]
            if device.device_type is not DeviceType.ROUTER:
                continue
            router_index += 1
            router_name = f"r{router_index:04d}"
            for iface_index, interface in enumerate(device.interfaces):
                if rng.random() >= config.rdns_ptr_frac:
                    continue
                zone.records[interface.address] = _hostname(
                    asys.rdns_style, asys.rdns_suffix, router_name,
                    iface_index, interface.address, rng,
                )
    return zone


def _hostname(style: str, suffix: str, router_name: str, iface_index: int,
              address: IPAddress, rng: random.Random) -> str:
    if style == "iface-router":
        return f"et-{iface_index}.{router_name}.{suffix}"
    if style == "router-iface":
        return f"{router_name}-eth{iface_index}.{suffix}"
    if style == "flat":
        dashed = str(address).replace(".", "-").replace(":", "-")
        return f"host-{dashed}.{suffix}"
    # "opaque": no structure at all.
    return f"x{rng.randrange(1 << 32):08x}.{suffix}"


# -- streamed dataset views ------------------------------------------------------


class StreamedRouterDatasets:
    """Per-address dataset membership for streamed and lazy topologies.

    :func:`build_router_datasets` threads one RNG through every device in
    creation order, which would force a full materialization.  Here every
    membership decision is a pure function of ``(seed, kind, address)``
    (a :func:`repro.topology.lazy.mix`-keyed roll), so the ITDK / RIPE /
    hitlist views answer point queries and stream the IPv6 target list
    without ever holding the world.  Lazy and eagerly-streamed campaigns
    share this class, which is what keeps their target lists — and thus
    their scan results — byte-identical.

    ``config.ripe_from_traceroutes`` is ignored on this path: the
    simulated Atlas campaign needs global forwarding state, so streamed
    datasets always use the sampled RIPE view.
    """

    def __init__(
        self,
        *,
        seed: int,
        config: TopologyConfig,
        plan: "StreamPlan",
        device_for: "Callable[[DeviceSlot], Device]",
        membership_for: "Callable[[DeviceSlot], object] | None" = None,
    ) -> None:
        self._seed = seed
        self._config = config
        self._plan = plan
        self._device_for = device_for
        # Dataset membership only reads device_type and interface
        # addresses, so a lazy topology passes its membership_at here and
        # every query answers without materializing a device.
        self._record_for = membership_for if membership_for is not None else device_for

    # -- per-address rolls ---------------------------------------------------

    def _roll(self, kind: str, address: IPAddress) -> float:
        from repro.topology.lazy import mix

        return random.Random(mix(self._seed, "ds", kind, int(address))).random()

    def _router_v6_hitlist(self, address: IPAddress) -> tuple[bool, bool]:
        """``(routed hop, scan target)`` membership of a router v6 address."""
        frac = self._config.hitlist_router_frac
        if self._roll("hl-hop", address) < frac:
            return True, True
        return False, self._roll("hl-tgt", address) < frac

    def _endhost_v6_hitlist(
        self, device: "Device | SlotMembership", address: IPAddress
    ) -> tuple[bool, bool]:
        is_cpe = device.device_type is DeviceType.CPE
        frac = (
            self._config.hitlist_cpe_frac
            if is_cpe
            else self._config.hitlist_server_frac
        )
        if self._roll("hl-end", address) >= frac:
            return False, False
        hop = is_cpe and (
            self._roll("hl-routed-cpe", address)
            < self._config.hitlist_routed_cpe_frac
        )
        return hop, True

    def _owned_device(self, address: IPAddress) -> "Device | SlotMembership | None":
        slot = self._plan.locate(address)
        if slot is None:
            return None
        device = self._record_for(slot)
        for interface in device.interfaces:
            if interface.address == address:
                return device
        return None

    # -- queries -------------------------------------------------------------

    def is_router_ip(self, address: IPAddress) -> bool:
        """Router-tagging test, query-by-query (``RouterDatasets`` parity)."""
        device = self._owned_device(address)
        if device is None:
            return False
        cfg = self._config
        if device.device_type is DeviceType.ROUTER:
            if address.version == 4:
                return (
                    self._roll("itdk", address) < cfg.itdk_router_frac
                    or self._roll("ripe", address) < cfg.ripe_router_frac
                )
            return (
                self._roll("itdk", address) < cfg.itdk_router_frac * 0.5
                or self._roll("ripe", address) < cfg.ripe_router_frac
                or self._router_v6_hitlist(address)[0]
            )
        if address.version != 6:
            return False
        return self._endhost_v6_hitlist(device, address)[0]

    def _hitlist_v6(self, device: "Device | SlotMembership",
                    address: IPAddress) -> bool:
        if device.device_type is DeviceType.ROUTER:
            return self._router_v6_hitlist(address)[1]
        return self._endhost_v6_hitlist(device, address)[1]

    def in_hitlist_targets_v6(self, address: IPAddress) -> bool:
        """Whether one v6 address is on the broad scan-target list."""
        if address.version != 6:
            return False
        device = self._owned_device(address)
        if device is None:
            return False
        return self._hitlist_v6(device, address)

    # -- streaming -----------------------------------------------------------

    def iter_hitlist_targets_v6(self) -> Iterator[IPAddress]:
        """The IPv6 scan-target list in ascending address order.

        Slots are visited in plan order (each AS owns one /32, each slot
        one /64, so plan order *is* address order) and each device's
        selected addresses are sorted locally — a fully sorted global
        stream that only ever holds one device.
        """
        record_for = self._record_for
        for slot in self._plan.iter_slots():
            device = record_for(slot)
            selected = [
                interface.address
                for interface in device.interfaces
                if interface.version == 6
                and self._hitlist_v6(device, interface.address)
            ]
            selected.sort(key=int)
            yield from selected


# -- ITDK-style topology-description files ---------------------------------------


class TopologyFileError(ValueError):
    """A topology-description file is malformed or inconsistent."""


#: Vendors assigned to file-described nodes that carry no ``node.vendor``
#: directive, picked per node from a seeded RNG.
_FILE_DEFAULT_VENDORS = ("Cisco", "Juniper", "Huawei", "MikroTik")


def load_topology_file(path: "str | Path", *, seed: int = 2021) -> Topology:
    """Ingest an ITDK-style topology description as a simulated Internet.

    The format follows CAIDA's ITDK node files, with inline directives
    for the metadata ITDK ships in sibling files::

        # comment
        node N1: 192.0.10.1 2a00:10::1
        node.AS N1: 64500
        node.vendor N1: Cisco

    Every ``node`` becomes a router whose SNMP agent (engine ID, uptime,
    boots) derives deterministically from ``(seed, node id)``; nodes
    without a ``node.AS`` directive land in AS 64500.  Malformed lines,
    duplicate node ids, duplicate addresses and directives for unknown
    nodes raise :class:`TopologyFileError` with ``path:line:`` context.
    The resulting :class:`Topology` has ``layout="file"`` and runs
    through the classic (materialized) campaign path.
    """
    nodes: dict[int, list[IPAddress]] = {}
    owner: dict[IPAddress, int] = {}
    node_as: dict[int, int] = {}
    node_vendor: dict[int, str] = {}
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            keyword, __, rest = line.partition(" ")
            if keyword == "node":
                node_id = _parse_node_ref(path, lineno, rest, expect_colon=True)
                if node_id in nodes:
                    raise TopologyFileError(
                        f"{path}:{lineno}: duplicate node N{node_id}"
                    )
                addresses = _parse_addresses(path, lineno, rest)
                for address in addresses:
                    if address in owner:
                        raise TopologyFileError(
                            f"{path}:{lineno}: address {address} already "
                            f"assigned to N{owner[address]}"
                        )
                    owner[address] = node_id
                nodes[node_id] = addresses
            elif keyword == "node.AS":
                node_id, value = _parse_directive(path, lineno, rest)
                if node_id not in nodes:
                    raise TopologyFileError(
                        f"{path}:{lineno}: node.AS for unknown node N{node_id}"
                    )
                try:
                    node_as[node_id] = int(value)
                except ValueError:
                    raise TopologyFileError(
                        f"{path}:{lineno}: invalid AS number {value!r}"
                    ) from None
            elif keyword == "node.vendor":
                node_id, value = _parse_directive(path, lineno, rest)
                if node_id not in nodes:
                    raise TopologyFileError(
                        f"{path}:{lineno}: node.vendor for unknown node "
                        f"N{node_id}"
                    )
                node_vendor[node_id] = value
            else:
                raise TopologyFileError(
                    f"{path}:{lineno}: unrecognized line {line!r} (expected "
                    f"'node N<id>: <addr> ...', 'node.AS N<id>: <asn>' or "
                    f"'node.vendor N<id>: <name>')"
                )
    if not nodes:
        raise TopologyFileError(f"{path}: no node lines found")
    return _build_file_topology(nodes, owner, node_as, node_vendor, seed)


def dump_topology_file(topology: Topology, path: str) -> None:
    """Write a topology back out as an ingestible description file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro topology description (ITDK node format)\n")
        for device_id in sorted(topology.devices):
            device = topology.devices[device_id]
            addresses = " ".join(str(a) for a in device.addresses)
            handle.write(f"node N{device_id}: {addresses}\n")
            handle.write(f"node.AS N{device_id}: {device.asn}\n")
            handle.write(f"node.vendor N{device_id}: {device.vendor}\n")


def _parse_node_ref(
    path: str, lineno: int, rest: str, *, expect_colon: bool
) -> int:
    ref = rest.split(":", 1)[0].strip() if expect_colon else rest.strip()
    if ":" not in rest and expect_colon:
        raise TopologyFileError(
            f"{path}:{lineno}: missing ':' after node id in {rest!r}"
        )
    if not ref.startswith("N") or not ref[1:].isdigit():
        raise TopologyFileError(
            f"{path}:{lineno}: invalid node id {ref!r} (expected N<number>)"
        )
    return int(ref[1:])


def _parse_addresses(path: str, lineno: int, rest: str) -> list[IPAddress]:
    __, ___, tail = rest.partition(":")
    tokens = tail.split()
    if not tokens:
        raise TopologyFileError(f"{path}:{lineno}: node carries no addresses")
    addresses: list[IPAddress] = []
    for token in tokens:
        try:
            addresses.append(ipaddress.ip_address(token))
        except ValueError:
            raise TopologyFileError(
                f"{path}:{lineno}: invalid address {token!r}"
            ) from None
    return addresses


def _parse_directive(path: str, lineno: int, rest: str) -> tuple[int, str]:
    ref, colon, value = rest.partition(":")
    if not colon or not value.strip():
        raise TopologyFileError(
            f"{path}:{lineno}: directive needs 'N<id>: <value>', got {rest!r}"
        )
    node_id = _parse_node_ref(path, lineno, ref.strip(), expect_colon=False)
    return node_id, value.strip()


def _build_file_topology(
    nodes: dict[int, list[IPAddress]],
    owner: dict[IPAddress, int],
    node_as: dict[int, int],
    node_vendor: dict[int, str],
    seed: int,
) -> Topology:
    from repro.oui.registry import default_registry
    from repro.topology import timeline
    from repro.topology.generator import (
        NIC_SUBSTITUTES,
        derive_agent,
        derive_engine_id,
        derive_shared_populations,
    )
    from repro.topology.lazy import mix
    from repro.topology.model import (
        AutonomousSystem,
        Device,
        Interface,
        Region,
    )

    cfg = TopologyConfig(seed=seed)
    regions = list(Region)
    registry = default_registry()
    shared = derive_shared_populations(cfg)
    ases: dict[int, AutonomousSystem] = {}
    devices: dict[int, Device] = {}
    for node_id in sorted(nodes):
        addresses = nodes[node_id]
        asn = node_as.get(node_id, 64500)
        rng = random.Random(mix(seed, "file-node", node_id))
        vendor = node_vendor.get(
            node_id, _FILE_DEFAULT_VENDORS[rng.randrange(len(_FILE_DEFAULT_VENDORS))]
        )
        if asn not in ases:
            as_rng = random.Random(mix(seed, "file-as", asn))
            v4 = next((a for a in addresses if a.version == 4), None)
            v6 = next((a for a in addresses if a.version == 6), None)
            ases[asn] = AutonomousSystem(
                asn=asn,
                region=regions[as_rng.randrange(len(regions))],
                ipv4_prefix=(
                    ipaddress.ip_network((int(v4) & ~0xFFFF, 16))
                    if v4 is not None
                    else ipaddress.ip_network("0.0.0.0/0")
                ),
                ipv6_prefix=(
                    ipaddress.ip_network((int(v6) >> 96 << 96, 32))
                    if v6 is not None
                    else ipaddress.ip_network("::/0")
                ),
            )
        # Agent state rides the generator's vendor-driven derivation so
        # file worlds carry the same engine-ID format / uptime / boots
        # mix the paper measures (Figures 5-6 stay meaningful); every
        # draw comes from the per-node seeded stream, so a node's agent
        # is still a pure function of ``(seed, node id)``.
        nic_choices = NIC_SUBSTITUTES.get(vendor)
        nic_vendor = (
            nic_choices[rng.randrange(len(nic_choices))]
            if nic_choices
            else vendor
        )
        mac = registry.make_mac(
            nic_vendor, rng.randrange(4), rng.randrange(1 << 20)
        )
        interfaces = [
            Interface(address=a, mac=mac.successor(i))
            for i, a in enumerate(addresses)
        ]
        engine_id = derive_engine_id(
            cfg, rng, shared, vendor, DeviceType.ROUTER, mac, interfaces
        )
        agent, __extras = derive_agent(
            cfg, rng, vendor, DeviceType.ROUTER, engine_id,
            skew_sigma=cfg.router_skew_sigma,
        )
        devices[node_id] = Device(
            device_id=node_id,
            device_type=DeviceType.ROUTER,
            vendor=vendor,
            asn=asn,
            region=ases[asn].region,
            interfaces=interfaces,
            agent=agent,
        )
        ases[asn].device_ids.append(node_id)
    return Topology(
        ases=ases,
        devices=devices,
        seed=seed,
        epoch=timeline.REFERENCE_TIME,
        layout="file",
    )
