"""Minimal cryptographic primitives for SNMPv3 privacy.

The paper's §2.1 summary of SNMPv3 — "strong user-based authentication,
integrity, replay protection, and encryption" — needs a symmetric cipher
for the last item.  The standard library offers HMAC/MD5/SHA but no block
cipher, so :mod:`repro.crypto.aes` implements AES-128 from scratch
(validated against the FIPS-197 and NIST SP 800-38A test vectors) plus
the CFB-128 mode RFC 3826 uses for the User-based Security Model.
"""

from repro.crypto.aes import Aes128, cfb128_decrypt, cfb128_encrypt

__all__ = ["Aes128", "cfb128_decrypt", "cfb128_encrypt"]
