"""AES-128 and CFB-128 mode, implemented from scratch (FIPS-197).

Only encryption of single blocks is required: CFB mode uses the forward
cipher for both encryption and decryption.  The implementation favours
clarity over speed — SNMPv3 messages are tiny — and is validated against
the FIPS-197 Appendix C vector and the NIST SP 800-38A CFB128 vectors in
``tests/crypto``.
"""

from __future__ import annotations

_BLOCK = 16
_ROUNDS = 10  # AES-128

# -- S-box ----------------------------------------------------------------------

def _build_sbox() -> bytes:
    """Construct the AES S-box from first principles (GF(2^8) inversion
    followed by the affine transform) rather than pasting a table."""
    # Multiplicative inverses via exp/log tables over the AES polynomial.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator 0x03
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transformation.
        result = 0x63
        for bit in range(8):
            parity = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
            ) & 1
            result ^= parity << bit
        # result initialised with 0x63 already XORed bitwise: combine.
        sbox[value] = result
    return bytes(sbox)


_SBOX = _build_sbox()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


class Aes128:
    """The AES-128 forward cipher."""

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError(f"AES-128 needs a 16-byte key, got {len(key)}")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list[bytes]:
        words = [key[i : i + 4] for i in range(0, 16, 4)]
        for round_index in range(_ROUNDS):
            prev = words[-1]
            # RotWord + SubWord + Rcon.
            rotated = prev[1:] + prev[:1]
            substituted = bytes(_SBOX[b] for b in rotated)
            first = bytes(
                [substituted[0] ^ _RCON[round_index]] + list(substituted[1:])
            )
            base = len(words) - 4
            w0 = bytes(a ^ b for a, b in zip(words[base], first))
            w1 = bytes(a ^ b for a, b in zip(words[base + 1], w0))
            w2 = bytes(a ^ b for a, b in zip(words[base + 2], w1))
            w3 = bytes(a ^ b for a, b in zip(words[base + 3], w2))
            words.extend([w0, w1, w2, w3])
        return [b"".join(words[i : i + 4]) for i in range(0, len(words), 4)]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != _BLOCK:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        state = bytes(a ^ b for a, b in zip(block, self._round_keys[0]))
        for round_index in range(1, _ROUNDS):
            state = _sub_bytes(state)
            state = _shift_rows(state)
            state = _mix_columns(state)
            state = bytes(a ^ b for a, b in zip(state, self._round_keys[round_index]))
        state = _sub_bytes(state)
        state = _shift_rows(state)
        return bytes(a ^ b for a, b in zip(state, self._round_keys[_ROUNDS]))


def _sub_bytes(state: bytes) -> bytes:
    return bytes(_SBOX[b] for b in state)


def _shift_rows(state: bytes) -> bytes:
    # State is column-major: byte index = 4*col + row.
    out = bytearray(16)
    for col in range(4):
        for row in range(4):
            out[4 * col + row] = state[4 * ((col + row) % 4) + row]
    return bytes(out)


def _mix_columns(state: bytes) -> bytes:
    out = bytearray(16)
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        out[4 * col + 0] = _xtime(a[0]) ^ (_xtime(a[1]) ^ a[1]) ^ a[2] ^ a[3]
        out[4 * col + 1] = a[0] ^ _xtime(a[1]) ^ (_xtime(a[2]) ^ a[2]) ^ a[3]
        out[4 * col + 2] = a[0] ^ a[1] ^ _xtime(a[2]) ^ (_xtime(a[3]) ^ a[3])
        out[4 * col + 3] = (_xtime(a[0]) ^ a[0]) ^ a[1] ^ a[2] ^ _xtime(a[3])
    return bytes(out)


# -- CFB-128 mode ----------------------------------------------------------------------


def cfb128_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """CFB mode with 128-bit feedback (the RFC 3826 configuration).

    The final segment may be shorter than a block; SNMP does not pad.
    """
    if len(iv) != _BLOCK:
        raise ValueError(f"CFB-128 needs a 16-byte IV, got {len(iv)}")
    cipher = Aes128(key)
    out = bytearray()
    feedback = iv
    for offset in range(0, len(plaintext), _BLOCK):
        keystream = cipher.encrypt_block(feedback)
        segment = plaintext[offset : offset + _BLOCK]
        encrypted = bytes(p ^ k for p, k in zip(segment, keystream))
        out.extend(encrypted)
        feedback = encrypted if len(encrypted) == _BLOCK else feedback
    return bytes(out)


def cfb128_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`cfb128_encrypt` (uses the forward cipher)."""
    if len(iv) != _BLOCK:
        raise ValueError(f"CFB-128 needs a 16-byte IV, got {len(iv)}")
    cipher = Aes128(key)
    out = bytearray()
    feedback = iv
    for offset in range(0, len(ciphertext), _BLOCK):
        keystream = cipher.encrypt_block(feedback)
        segment = ciphertext[offset : offset + _BLOCK]
        out.extend(c ^ k for c, k in zip(segment, keystream))
        feedback = segment if len(segment) == _BLOCK else feedback
    return bytes(out)
