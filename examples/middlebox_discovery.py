#!/usr/bin/env python3
"""Future work, implemented: NAT and load-balancer inference (§9).

The paper closes by suggesting SNMPv3 could "infer NAT and load
balancers in the wild".  This scenario runs both inferences over a
simulated campaign:

* **NAT gateways** are mined from discovery responses whose engine ID is
  IPv4-format but embeds a private (RFC 1918) address — responses the
  paper's own filtering pipeline throws away;
* **load balancers** are found by burst re-probing: several discovery
  probes within seconds, from several source addresses.  An engine-ID
  flip inside the burst cannot be DHCP churn — it means multiple SNMP
  engines share the address.  Source-IP-affinity pools demonstrate the
  single-vantage blind spot.

Ground truth from the simulator scores both detectors.
"""

from repro import ExperimentContext, TopologyConfig
from repro.experiments.extensions import middlebox_experiment
from repro.snmp.loadbalancer import BalancingPolicy
from repro.topology.model import DeviceType


def main() -> None:
    config = TopologyConfig.paper_scale(divisor=300)
    print("building simulated Internet and running the campaign...")
    ctx = ExperimentContext.create(config)

    true_lbs = [
        d for d in ctx.topology.devices.values()
        if d.device_type is DeviceType.LOAD_BALANCER
    ]
    true_nats = [d for d in ctx.topology.devices.values() if d.nat_gateway]
    rr = sum(1 for d in true_lbs if d.agent_pool.policy is BalancingPolicy.ROUND_ROBIN)
    print(f"\nground truth: {len(true_lbs)} load-balanced VIPs "
          f"({rr} round-robin, {len(true_lbs) - rr} source-hash), "
          f"{len(true_nats)} NAT gateways")

    result = middlebox_experiment(ctx)
    report = result.report

    print(f"\nNAT inference (mined from {result.observations_mined} responses):")
    print(f"  found {result.nats_found} gateways  "
          f"precision={report.nat_precision:.2f} recall={report.nat_recall:.2f}")
    for verdict in report.nats[:5]:
        print(f"  {verdict.address}  manages LAN {verdict.embedded_address}")

    print(f"\nload-balancer inference ({result.lb_candidates_probed} bursted targets):")
    print(f"  found {result.lbs_found} VIPs  "
          f"precision={report.lb_precision:.2f} recall={report.lb_recall:.2f}")
    for verdict in report.load_balancers[:5]:
        print(f"  {verdict.address}  {verdict.distinct_engine_ids} engines behind "
              f"({verdict.probes_answered} probes answered)")
    if report.lb_recall < 1.0:
        print("  (missed pools use source-IP affinity — invisible without "
              "more probing vantage points)")


if __name__ == "__main__":
    main()
