#!/usr/bin/env python3
"""Quickstart: scan a small simulated Internet and fingerprint devices.

Runs the paper's whole method end to end on a ~5k-device topology:

1. generate the simulated Internet,
2. launch the two-scan IPv4/IPv6 SNMPv3 campaigns,
3. filter responses (§4.4),
4. resolve aliases including dual-stack devices (§5),
5. fingerprint vendors (§6),

and prints the headline numbers.  Takes a couple of seconds.
"""

from collections import Counter

from repro import ExperimentContext, TopologyConfig


def main() -> None:
    config = TopologyConfig.tiny(seed=2021)
    print(f"generating simulated Internet ({config.n_ases} ASes, "
          f"{config.n_routers} routers, ~{config.n_servers + config.n_cpe} end hosts)...")
    ctx = ExperimentContext.create(config)

    scan1, scan2 = ctx.campaign.scan_pair(4)
    print(f"\nIPv4 scans: {scan1.targets_probed} targets probed, "
          f"{scan1.responsive_count} / {scan2.responsive_count} responsive")
    print(f"after filtering: {len(ctx.valid_v4)} IPv4 and "
          f"{len(ctx.valid_v6)} IPv6 records with valid engine ID + time")

    dual = ctx.alias_dual
    split = dual.split_by_protocol()
    print(f"\nalias resolution: {dual.count} devices "
          f"({dual.non_singleton_count} with multiple IPs)")
    print(f"  IPv4-only {len(split['v4'])}, IPv6-only {len(split['v6'])}, "
          f"dual-stack {len(split['dual'])}")

    vendors = Counter(verdict.vendor for __, verdict in ctx.device_vendors)
    print("\ntop vendors (all devices):")
    for vendor, count in vendors.most_common(8):
        print(f"  {vendor:<14} {count}")

    routers = Counter(verdict.vendor for __, verdict in ctx.router_vendors)
    print(f"\nrouters identified: {ctx.router_sets.count}")
    for vendor, count in routers.most_common(5):
        print(f"  {vendor:<14} {count}")


if __name__ == "__main__":
    main()
