#!/usr/bin/env python3
"""Quickstart: scan a small simulated Internet and fingerprint devices.

Runs the paper's whole method end to end through the stable
:mod:`repro.api` facade:

1. generate the simulated Internet,
2. launch the two-scan IPv4/IPv6 SNMPv3 campaigns on the sharded engine,
3. filter responses (§4.4),
4. resolve aliases including dual-stack devices (§5),
5. fingerprint vendors (§6),

and prints the headline numbers.  Takes a couple of seconds.
"""

from repro.api import Session


def main() -> None:
    session = Session(scale=1000, seed=2021, workers=1)
    config = session.config
    print(f"generating simulated Internet ({config.n_ases} ASes, "
          f"{config.n_routers} routers, ~{config.n_servers + config.n_cpe} end hosts)...")

    session.scan().filter().aliases()

    scan1, scan2 = session.campaign.scan_pair(4)
    print(f"\nIPv4 scans: {scan1.targets_probed} targets probed, "
          f"{scan1.responsive_count} / {scan2.responsive_count} responsive")
    for metrics in session.metrics.values():
        print(f"  {metrics.summary()}")
    print(f"after filtering: {len(session.valid_v4)} IPv4 and "
          f"{len(session.valid_v6)} IPv6 records with valid engine ID + time")

    devices = session.alias_sets
    split = devices.split_by_protocol()
    print(f"\nalias resolution: {devices.count} devices "
          f"({devices.non_singleton_count} with multiple IPs)")
    print(f"  IPv4-only {len(split['v4'])}, IPv6-only {len(split['v6'])}, "
          f"dual-stack {len(split['dual'])}")

    print("\ntop vendors (all devices):")
    for vendor, count in session.vendor_census()[:8]:
        print(f"  {vendor:<14} {count}")


if __name__ == "__main__":
    main()
