#!/usr/bin/env python3
"""Defending against SNMPv3 fingerprinting: the paper's §8 advice, measured.

Applies each of the paper's recommendations to the simulated Internet and
re-runs the attacker's scan:

* **ACLs / segregated management** removes the device from the attacker's
  view entirely;
* **explicit SNMPv3 configuration** silences the devices that only
  answered because a v2c community implicitly enabled v3;
* **random (non-MAC) engine IDs** keep the protocol working — discovery,
  key localization, alias resolution all still function — while blinding
  vendor fingerprinting and cross-protocol MAC correlation.

The second half shows what full protection looks like at the protocol
level: an authPriv exchange (HMAC-SHA1-96 + AES-128-CFB) where an
on-path observer sees only ciphertext — yet discovery still leaks the
engine ID, because the protocol cannot work otherwise.
"""

from repro.asn1.oid import Oid
from repro.experiments.remediation import remediation_experiment
from repro.snmp.agent import SnmpAgent, UsmUser
from repro.snmp.client import SnmpClient
from repro.snmp.constants import OID_SYS_DESCR
from repro.snmp.engine_id import EngineId
from repro.snmp.mib import build_system_mib
from repro.snmp.usm import AuthProtocol
from repro.topology.config import TopologyConfig


def main() -> None:
    print("measuring each mitigation at 100% adoption...")
    experiment = remediation_experiment(TopologyConfig.paper_scale(divisor=500))
    print(experiment.render())

    print("\nsame, at a realistic 40% adoption:")
    partial = remediation_experiment(
        TopologyConfig.paper_scale(divisor=500), adoption=0.4,
        mitigations=("none", "all"),
    )
    print(partial.render())

    print("\n--- full protocol protection (authPriv) ---")
    user = UsmUser(b"netops", AuthProtocol.HMAC_SHA1_96, "auth-passphrase",
                   priv_password="priv-passphrase")
    agent = SnmpAgent(
        engine_id=EngineId.from_octets(9, b"\x5f\x1d\x88\x03\xc2\x9a\x41\x7e"),
        boot_time=0.0, engine_boots=1, users=(user,),
        mib=build_system_mib("hardened router", "r1", Oid("1.3.6.1.4.1.9.1.1"),
                             lambda: 0.0),
    )
    client = SnmpClient(agent=agent)
    value = client.get_v3_priv(user, OID_SYS_DESCR, now=100.0)
    print(f"authPriv GET over AES-128-CFB: {value.decode()}")

    discovery = client.discover(now=100.0)
    eid = EngineId(discovery.engine_id)
    print(f"discovery still answers (engine ID {eid}, format {eid.format.value})")
    print("-> random Octets format: no MAC, no vendor OUI to fingerprint")


if __name__ == "__main__":
    main()
