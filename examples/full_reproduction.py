#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Usage::

    python examples/full_reproduction.py [--scale DIVISOR] [--seed SEED] [--quick]

``--scale`` divides the paper's Internet-wide population sizes (default
100: ~46k devices, ~3.5k routers, 250 ASes; runs in well under a minute).
``--quick`` skips the comparator techniques (MIDAR, Speedtrap, Router
Names, Nmap) for a faster pass.  Output mirrors EXPERIMENTS.md.
"""

import argparse
import time

from repro import ExperimentContext, TopologyConfig
from repro.experiments.report import render_full_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=100.0,
                        help="scale divisor vs the paper's Internet (default 100)")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--quick", action="store_true",
                        help="skip comparator techniques")
    parser.add_argument("--extensions", action="store_true",
                        help="include the beyond-the-paper extension sections")
    args = parser.parse_args()

    config = TopologyConfig.paper_scale(divisor=args.scale, seed=args.seed)
    started = time.time()
    print(f"building + scanning (scale 1/{args.scale:g}, seed {args.seed})...")
    ctx = ExperimentContext.create(config)
    print(f"measurement complete in {time.time() - started:.1f}s")
    print(render_full_report(ctx, include_comparators=not args.quick,
                             include_extensions=args.extensions))


if __name__ == "__main__":
    main()
