#!/usr/bin/env python3
"""Compare alias-resolution techniques against ground truth.

Runs four techniques over the same simulated Internet — the paper's
SNMPv3 method, MIDAR-style IP-ID resolution, Speedtrap-style IPv6
fragment-ID resolution, and Router Names rDNS grouping — and scores each
against the simulator's ground truth (pairwise precision/recall), then
shows the §5.2/§5.3 overlap comparison.  This is the experiment the
real paper *cannot* run, since the Internet has no ground truth; the
simulator makes the accuracy claims checkable.
"""

from repro import ExperimentContext, TopologyConfig, evaluate_against_truth
from repro.alias import MidarResolver, RouterNamesResolver, SpeedtrapResolver, compare_alias_sets
from repro.topology.datasets import build_rdns_zone


def score(name, sets, truth):
    evaluation = evaluate_against_truth(sets, truth)
    print(f"  {name:<14} sets={sets.count:<6} non-singleton={sets.non_singleton_count:<5}"
          f" precision={evaluation.precision:.3f} recall={evaluation.recall:.3f}"
          f" f1={evaluation.f1:.3f}")
    return evaluation


def main() -> None:
    config = TopologyConfig.paper_scale(divisor=300)
    print("building simulated Internet and running scans...")
    ctx = ExperimentContext.create(config)
    truth_v4 = ctx.topology.true_alias_sets(4)
    truth_v6 = ctx.topology.true_alias_sets(6)
    truth_all = ctx.topology.true_alias_sets()

    print("\nIPv4 techniques (scored against ground truth):")
    score("SNMPv3", ctx.alias_v4, truth_v4)
    midar = MidarResolver(topology=ctx.topology).resolve(sorted(ctx.datasets.union_v4, key=int))
    score("MIDAR", midar, truth_v4)

    print("\nIPv6 techniques:")
    score("SNMPv3", ctx.alias_v6, truth_v6)
    speedtrap = SpeedtrapResolver(topology=ctx.topology).resolve(
        sorted(ctx.datasets.itdk_v6 | ctx.datasets.ripe_v6, key=int))
    score("Speedtrap", speedtrap, truth_v6)

    print("\nDual-stack techniques:")
    score("SNMPv3", ctx.alias_dual, truth_all)
    zone = build_rdns_zone(ctx.topology, config)
    router_names = RouterNamesResolver(zone).resolve(ctx.topology)
    score("RouterNames", router_names, truth_all)

    print("\noverlap: SNMPv3 vs MIDAR (the §5.3 comparison)")
    report = compare_alias_sets(ctx.alias_v4, midar)
    print(f"  exact matches: {report.exact_matches}")
    print(f"  partial overlaps: {report.partial_overlaps_a}")
    print(f"  addresses only SNMPv3 sees: {report.only_a_addresses}")
    print(f"  addresses only MIDAR sees: {report.only_b_addresses}")
    print(f"  -> complementary: {report.complementary}")


if __name__ == "__main__":
    main()
