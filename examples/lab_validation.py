#!/usr/bin/env python3
"""Lab validation (§6.2.1): SNMPv3 leaks on bench routers.

Reproduces the paper's controlled experiment on Cisco IOS 15.2, Cisco
IOS XR 6.0.1 and Juniper Junos 17.3 lab routers:

* out of the box the router answers neither SNMPv2c nor SNMPv3;
* one line of configuration — ``snmp-server community pass123 RO`` —
  enables v2c *and silently enables SNMPv3 discovery*;
* a v3 query with an unknown user is rejected, but the rejection Report
  carries a MAC-based engine ID identifying the vendor;
* the same engine ID is returned whichever interface IP is queried, and
  its MAC belongs to the *first* interface, not the numerically
  smallest one — contradicting the RFC's guidance.

The script also demonstrates the deeper USM context: why knowing the
engine ID is the precondition for any authenticated exchange.
"""

from repro.experiments.lab import default_lab, run_lab_experiment
from repro.snmp.agent import UsmUser
from repro.snmp.client import SnmpClient
from repro.snmp.constants import OID_SYS_DESCR
from repro.snmp.usm import AuthProtocol, localized_key_from_password


def main() -> None:
    for router in default_lab():
        print(f"=== {router.name} ===")
        report = run_lab_experiment(router)
        print(f"  answers before any SNMP config:   {report.answers_before_config}")
        print(f"  v2c GET after community config:   {report.v2c_works_after_config}")
        print(f"  v3 discovery implicitly enabled:  {report.v3_discovery_after_config}")
        print(f"  engine ID embeds a MAC address:   {report.engine_id_is_mac}"
              f" (OUI vendor: {report.engine_mac_vendor})")
        print(f"  same engine ID on all interfaces: {report.same_engine_id_on_all_interfaces}")
        print(f"  engine MAC is first interface:    {report.engine_mac_is_first_interface}")
        print(f"  engine MAC is smallest MAC:       {report.engine_mac_is_smallest}"
              f"  <- contradicts RFC 3411 guidance")

        # Demonstrate key localization: an authenticated GET only works
        # because discovery handed us the engine ID first.
        user = UsmUser(b"admin", AuthProtocol.HMAC_SHA1_96, "s3cret-passphrase")
        router.agent.users[user.name] = user
        client = SnmpClient(agent=router.agent)
        discovery = client.discover(now=100.0)
        key = localized_key_from_password(user.password, discovery.engine_id,
                                          user.auth_protocol)
        print(f"  localized auth key (needs engine ID!): {key.hex()[:16]}...")
        value = client.get_v3_auth(user, OID_SYS_DESCR, now=100.0)
        print(f"  authenticated sysDescr: {value.decode()}")
        print()


if __name__ == "__main__":
    main()
