#!/usr/bin/env python3
"""Router vendor census: market share, homogeneity and patch hygiene.

The §6.4/§6.5 operator-facing analysis: who builds the Internet's
routers, how homogeneous are individual networks (vendor dominance — a
proxy for single-vendor vulnerability blast radius), and how stale are
deployed devices (time since last reboot as a patch-level indicator).
"""

from collections import Counter

from repro import ExperimentContext, TopologyConfig
from repro.analysis.dominance import as_vendor_profiles, dominance_values
from repro.experiments.figures_vendor import figure13, figure13_by_vendor, figure15, figure16


def main() -> None:
    config = TopologyConfig.paper_scale(divisor=150)
    print("building simulated Internet and running scans...")
    ctx = ExperimentContext.create(config)

    print(f"\n{ctx.router_sets.count} routers fingerprinted across "
          f"{len(ctx.router_vendor_by_as)} networks\n")

    print("global market share:")
    counts = Counter(v.vendor for __, v in ctx.router_vendors)
    total = sum(counts.values())
    for vendor, count in counts.most_common(8):
        print(f"  {vendor:<14} {count:>6}  {count / total:6.1%}")

    print("\nregional market share (Figure 15):")
    f15 = figure15(ctx)
    for region in sorted(f15.shares, key=lambda r: -f15.totals.get(r, 0)):
        shares = f15.shares[region]
        line = ", ".join(f"{v} {shares[v]:.0%}" for v in
                         ("Cisco", "Huawei", "Net-SNMP", "Juniper", "Other"))
        print(f"  {region.value} ({f15.totals[region]:>5} routers): {line}")

    print("\ntop networks by router count (Figure 16):")
    for row in figure16(ctx, n=5):
        mix = ", ".join(f"{v} {s:.0%}" for v, s in row.vendor_shares.items() if s > 0.01)
        print(f"  {row.region.value}-{row.asn} ({row.router_count} routers): {mix}")

    print("\nvendor dominance (Figure 17): blast radius of a single-vendor CVE")
    profiles = as_vendor_profiles(ctx.router_vendor_by_as)
    for min_routers in (2, 5, 10):
        ecdf = dominance_values(profiles, min_routers=min_routers)
        if ecdf.count:
            print(f"  ASes with {min_routers}+ routers (n={ecdf.count}): "
                  f"{ecdf.fraction_at_least(0.7):.0%} have one vendor supplying >=70%")

    print("\npatch hygiene (Figure 13):")
    print(f"  {figure13(ctx).headline()}")

    print("\npatch hygiene per vendor (uptime > 1 year = likely unpatched):")
    for vendor, stats in sorted(
        figure13_by_vendor(ctx).items(),
        key=lambda kv: -kv[1].frac_uptime_over_one_year,
    ):
        print(f"  {vendor:<14} n={stats.count:<5} stale>{365}d: "
              f"{stats.frac_uptime_over_one_year:5.0%}   median uptime "
              f"{stats.median_uptime_days:5.0f}d")


if __name__ == "__main__":
    main()
