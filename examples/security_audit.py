#!/usr/bin/env python3
"""Security-audit view: what an attacker (or auditor) learns from SNMPv3.

The §8 discussion from the defender's seat.  For one simulated network,
this script shows everything an unauthenticated Internet-side observer
extracts with a single UDP packet per address:

* which devices exist (alias sets collapse the address plan);
* their vendors (target CVE selection);
* their uptime (unpatched boxes);
* which IPs amplify (one request triggering many identical replies —
  a reflection-attack primitive);
* the brute-force angle: with the engine ID in hand, USM password
  guessing becomes an offline dictionary attack.
"""

import time
from collections import Counter

from repro import ExperimentContext, TopologyConfig
from repro.snmp.usm import AuthProtocol, localized_key_from_password
from repro.topology import timeline


def main() -> None:
    config = TopologyConfig.paper_scale(divisor=200)
    print("scanning the simulated Internet...")
    ctx = ExperimentContext.create(config)

    # Pick the network with the most fingerprinted routers.
    target_asn = max(ctx.router_vendor_by_as, key=lambda a: len(ctx.router_vendor_by_as[a]))
    asys = ctx.topology.ases[target_asn]
    print(f"\nauditing {asys.name} ({asys.region.value}, prefix {asys.ipv4_prefix})")

    exposed = [
        (group, ctx.vendor_of_set(group))
        for group in ctx.alias_dual.sets
        if ctx.as_of_set(group) == target_asn
    ]
    print(f"  devices exposed via SNMPv3: {len(exposed)}")
    vendor_counts = Counter(v.vendor for __, v in exposed)
    print(f"  vendor breakdown: {dict(vendor_counts.most_common(5))}")

    stale = 0
    for group, __ in exposed:
        record = next(
            (ctx.record_by_address[a] for a in group if a in ctx.record_by_address), None
        )
        if record is not None:
            uptime_days = (timeline.REFERENCE_TIME - record.last_reboot_time) / 86400
            if uptime_days > 365:
                stale += 1
    print(f"  devices running >1 year without reboot (likely unpatched): {stale}")

    scan1, __ = ctx.campaign.scan_pair(4)
    amplifiers = sorted(scan1.multi_responders.items(), key=lambda kv: -kv[1])[:5]
    print(f"\namplifying responders (one probe -> many replies): "
          f"{len(scan1.multi_responders)} total")
    for address, count in amplifiers:
        print(f"  {address}  replied {count}x")

    # The offline brute-force angle (§8): key localization is the slow
    # step, and it only depends on (password guess, engine ID) — both of
    # which the attacker now has offline.
    engine_id = next(iter(ctx.valid_v4)).engine_id.raw
    print("\noffline dictionary attack against one disclosed engine ID:")
    guesses = ["password", "admin123", "snmpv3-secret", "correct horse"]
    started = time.perf_counter()
    for guess in guesses:
        localized_key_from_password(guess, engine_id, AuthProtocol.HMAC_SHA1_96)
    per_guess = (time.perf_counter() - started) / len(guesses)
    print(f"  {per_guess * 1000:.1f} ms per guess, fully offline — no further "
          f"packets to the target needed")


if __name__ == "__main__":
    main()
