#!/usr/bin/env python3
"""Dual-stack discovery without a single IPv6 SNMP response.

The paper's dual-stack aliasing needs the device to answer SNMPv3 on
both address families.  This scenario composes two identifier leaks the
paper discusses separately:

* the **MAC inside the engine ID** (one IPv4 SNMPv3 probe), and
* the **MAC inside EUI-64 IPv6 addresses** (no probe at all — SLAAC
  advertises it in the address),

to pair IPv4 and IPv6 addresses of the same hardware even when the IPv6
side never speaks SNMP.  Every inferred pair is checked against the
simulator's ground truth, and the comparison shows how many pairs plain
SNMPv3 dual-stack matching could not see.
"""

from repro import ExperimentContext, TopologyConfig
from repro.alias.mac_correlation import MacCorrelator, evaluate_correlation
from repro.net.eui64 import mac_from_ipv6


def main() -> None:
    config = TopologyConfig.paper_scale(divisor=200)
    print("running the IPv4 campaign (the only SNMP traffic needed)...")
    ctx = ExperimentContext.create(config)

    v6_targets = sorted(ctx.datasets.hitlist_targets_v6, key=int)
    eui64 = [a for a in v6_targets if mac_from_ipv6(a) is not None]
    print(f"\nIPv6 hitlist: {len(v6_targets)} addresses, "
          f"{len(eui64)} EUI-64 ({len(eui64) / len(v6_targets):.0%}) — each one "
          f"advertises its MAC")

    correlator = MacCorrelator()
    matches = correlator.correlate(ctx.valid_v4, v6_targets)
    evaluation = evaluate_correlation(ctx.topology, matches, ctx.valid_v4, v6_targets)
    print(f"\nMAC-correlated dual-stack pairs: {evaluation.matches}")
    print(f"  precision {evaluation.precision:.2f}, recall "
          f"{evaluation.recall:.2f} over {evaluation.matchable_devices} "
          f"matchable devices")

    snmp_pairs = set()
    for group in ctx.alias_dual.split_by_protocol()["dual"]:
        for a4 in (a for a in group if a.version == 4):
            for a6 in (a for a in group if a.version == 6):
                snmp_pairs.add((a4, a6))
    novel = [m for m in matches if (m.v4_address, m.v6_address) not in snmp_pairs]
    print(f"  pairs invisible to SNMPv3 dual-stack matching: {len(novel)}")

    for match in matches[:5]:
        print(f"  {match.v4_address}  <->  {match.v6_address}"
              f"   (MAC {match.engine_mac})")

    print("\nwhy the fuzzy variant is wrong (consecutive factory MACs):")
    fuzzy = MacCorrelator(neighborhood=4).correlate(ctx.valid_v4, v6_targets)
    fuzzy_eval = evaluate_correlation(ctx.topology, fuzzy, ctx.valid_v4, v6_targets)
    print(f"  neighbourhood=4: {fuzzy_eval.matches} pairs at precision "
          f"{fuzzy_eval.precision:.2f}")


if __name__ == "__main__":
    main()
