"""Legacy shim so `pip install -e .` works without the `wheel` package.

The offline environment lacks `wheel`, which modern PEP 517 editable
installs require; `setup.py develop` does not.  All real metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
