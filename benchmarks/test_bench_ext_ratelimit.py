"""EXT — §7.2 comparator: ICMP rate-limit alias resolution on a sampled
candidate set (the technique costs thousands of probes per pair, which
is why it cannot run Internet-wide — unlike the single-packet SNMPv3
method)."""

from repro.alias.ratelimit import IcmpRateLimitOracle, RateLimitResolver
from repro.alias.sets import evaluate_against_truth


def run(ctx):
    oracle = IcmpRateLimitOracle(topology=ctx.topology)
    resolver = RateLimitResolver(oracle)
    routers = [d for d in ctx.topology.routers() if len(d.ipv4_interfaces) >= 2]
    candidates = []
    for device in routers[:6]:
        candidates.extend(i.address for i in device.ipv4_interfaces[:3])
    sets = resolver.resolve(candidates, start=0.0)
    return sets, candidates


def test_bench_ext_ratelimit(benchmark, ctx):
    sets, candidates = benchmark.pedantic(run, args=(ctx,), rounds=2, iterations=1)
    ev = evaluate_against_truth(sets, ctx.topology.true_alias_sets(4))
    print(f"\ncandidates: {len(candidates)}, alias sets: {sets.count} "
          f"({sets.non_singleton_count} non-singleton)")
    print(f"precision {ev.precision:.2f}, recall {ev.recall:.2f}")
    assert ev.precision > 0.9
