"""EXT — §6.3 monitoring: engine-ID persistence over follow-up campaigns."""

from repro.experiments.extensions import longitudinal_experiment


def test_bench_ext_longitudinal(benchmark, ctx):
    result = benchmark.pedantic(
        longitudinal_experiment, args=(ctx,), kwargs={"offsets_days": (30.0, 180.0)},
        rounds=2, iterations=1,
    )
    print()
    for s in result.snapshots:
        print(f"{s.label}: responsive {s.responsive}, engine-ID persistence "
              f"{s.persistence_fraction:.3f}, median uptime {s.median_uptime_days:.0f}d")
    assert all(s.persistence_fraction > 0.99 for s in result.snapshots)
