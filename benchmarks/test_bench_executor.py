"""Performance — legacy serial engine vs the sharded streaming executor.

Runs the full four-scan campaign once per engine on identical topologies
and compares wall time, verifies the executor's worker-count determinism
contract (1-worker and 4-worker runs byte-identical), and records the
numbers in ``BENCH_executor.json`` at the repo root.

``EXECUTOR_BENCH_QUICK=1`` restricts the sweep to the 1/300-scale
topology (the CI configuration); the full run adds 1/100 scale.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.scanner.campaign import SCAN_LABELS, ScanCampaign
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_executor.json"
SEED = 2021

QUICK = os.environ.get("EXECUTOR_BENCH_QUICK") == "1"
DIVISORS = (300.0,) if QUICK else (300.0, 100.0)

_results: dict = {}


def _run_campaign(divisor: float, **campaign_kwargs):
    """Fresh topology + campaign; returns (result, scan wall time)."""
    cfg = TopologyConfig.paper_scale(divisor=divisor, seed=SEED)
    topo = build_topology(cfg)
    campaign = ScanCampaign(topology=topo, config=cfg, **campaign_kwargs)
    started = time.perf_counter()
    result = campaign.run()
    return result, time.perf_counter() - started


def _scan_fingerprint(scan):
    return (
        scan.observations,
        scan.multi_responders,
        scan.targets_probed,
        scan.probe_bytes_sent,
        scan.reply_bytes_received,
    )


@pytest.mark.parametrize("divisor", DIVISORS)
def test_bench_executor_vs_legacy(divisor):
    legacy, t_legacy = _run_campaign(divisor)
    serial, t_serial = _run_campaign(divisor, workers=1)
    sharded, t_sharded = _run_campaign(divisor, workers=4)

    # Determinism contract: worker count never changes results.
    for label in SCAN_LABELS:
        assert _scan_fingerprint(serial.scans[label]) == \
            _scan_fingerprint(sharded.scans[label]), label

    # Same probe counts as the legacy engine (different RNG streams, so
    # observation contents legitimately differ between engines).
    probes = sum(s.targets_probed for s in legacy.scans.values())
    assert probes == sum(s.targets_probed for s in serial.scans.values())

    # The sharded engine's serial path must beat the legacy scanner.
    assert t_serial < t_legacy, (
        f"executor serial path slower than legacy at 1/{divisor:g}: "
        f"{t_serial:.2f}s vs {t_legacy:.2f}s"
    )

    key = f"divisor_{divisor:g}"
    cores = os.cpu_count() or 1
    _results[key] = {
        "targets_probed": probes,
        "responsive_v4_1": legacy.scans["v4-1"].responsive_count,
        "legacy_seconds": round(t_legacy, 3),
        "executor_serial_seconds": round(t_serial, 3),
        "executor_workers4_seconds": round(t_sharded, 3),
        "serial_speedup_vs_legacy": round(t_legacy / t_serial, 3),
        "probes_per_second_serial": round(probes / t_serial),
        "workers4_deterministic": True,
        # Honesty flag: a 4-worker wall time measured on fewer than 4
        # cores says nothing about parallel speedup — workers time-slice.
        "workers4_underprovisioned": cores < 4,
    }
    print(f"\n1/{divisor:g} scale: {probes} probes | "
          f"legacy {t_legacy:.2f}s, executor w1 {t_serial:.2f}s "
          f"({t_legacy / t_serial:.2f}x), executor w4 {t_sharded:.2f}s")

    payload = {
        "benchmark": "sharded-executor-vs-legacy-scan-engine",
        "seed": SEED,
        "quick": QUICK,
        "cpu_count": os.cpu_count(),
        "results": dict(sorted(_results.items())),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
