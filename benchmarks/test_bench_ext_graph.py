"""EXT — router-level topology recovery: collapse the traceroute
interface graph with SNMPv3 aliases and measure how close the result
lands to the ground-truth router graph (alias resolution's raison
d'etre, and what ITDK does with MIDAR)."""

from repro.topology.graph import (
    collapse_with_aliases,
    graph_statistics,
    interface_graph,
    true_router_graph,
)


def run(ctx):
    graph = interface_graph(ctx.topology)
    inferred = collapse_with_aliases(graph, ctx.alias_v4)
    truth = true_router_graph(ctx.topology, graph)
    return graph, inferred, truth


def test_bench_ext_graph(benchmark, ctx):
    graph, inferred, truth = benchmark.pedantic(run, args=(ctx,), rounds=2, iterations=1)
    stats = graph_statistics(graph, inferred)
    oracle = graph_statistics(graph, truth)
    print(f"\ninterface view: {stats.interface_nodes} nodes, "
          f"{stats.interface_edges} edges")
    print(f"SNMPv3-collapsed: {stats.router_nodes} nodes "
          f"({stats.node_reduction:.1%} duplicates removed)")
    print(f"ground truth: {oracle.router_nodes} nodes "
          f"({oracle.node_reduction:.1%} duplicates)")
    assert truth.number_of_nodes() <= inferred.number_of_nodes() <= graph.number_of_nodes()
    assert stats.node_reduction > 0.0
