"""F19 — Figure 19 (Appendix B): uniqueness of the (last reboot, engine
boots) tuple."""

from repro.experiments import figures_engine as fe


def test_bench_fig19(benchmark, ctx):
    f19 = benchmark(fe.figure19, ctx)
    print(f"\nIPv4: {f19.unique_fraction_v4:.1%} of IPs have a tuple seen "
          f"with one engine ID (paper: 97.2%)")
    print(f"IPv6: {f19.unique_fraction_v6:.1%} (paper: 99.8%)")
    assert f19.unique_fraction_v4 > 0.95
    assert f19.unique_fraction_v6 > 0.95
