"""Performance — constant-memory streaming campaigns at scale.

Runs the streaming (lazy-topology) campaign at increasing target counts
and records throughput plus peak RSS in ``BENCH_scale.json`` at the repo
root.  The claim under test is the PR's tentpole: memory is a function
of the residency window, not of the address space — a 10x larger
campaign may not cost 10x the memory.

Each measurement runs in a fresh subprocess so ``ru_maxrss`` (a
process-lifetime high-water mark) reflects that campaign alone.  The
campaign streams through ``run_streaming()`` and discards observation
batches after counting them, exactly like the CLI export path — the
point is that nothing is ever materialized.

Assertions:

* peak RSS across a ~10x target growth stays sub-linear (< 1.5x);
* the lazy world's resident-device high-water stays O(max_resident),
  orders of magnitude under the device count;
* adjacent tiers' end-to-end pps stay within ``TIER_PPS_GAP_CEILING`` —
  the historical 21k→13k sag between the 93k and 930k tiers is an
  asserted regression gate now, not a footnote;
* quick mode adds an absolute RSS ceiling (the CI gate).

Honesty rules: end-to-end ``pps`` (campaign wall, including planning,
derivation and ingest edges) and ``pps_scan_phase`` (sum of shard wall
clocks — the probe loop alone) are recorded separately, so the scan
phase can never advertise a rate the whole campaign does not deliver.
The non-probe edge seconds (plan/derive/ingest) are recorded per tier.

``SCALE_BENCH_QUICK=1`` (the CI configuration) measures ~93k and ~930k
targets; the full run adds a ~9.3M-target campaign.
``SCALE_BENCH_GAP_SCALE`` relaxes the tier-gap ceiling on hosts whose
throttling behaviour differs from the reference machine.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_scale.json"
SEED = 2021

QUICK = os.environ.get("SCALE_BENCH_QUICK") == "1"
#: divisor -> nominal label.  IPv4 target count scales as ~3.7M/divisor.
TIERS = {400.0: "93k", 40.0: "930k"} if QUICK else {
    400.0: "93k", 40.0: "930k", 4.0: "9.3M",
}
#: Sub-linear growth gate: a 10x campaign may cost < 1.5x the memory.
RSS_GROWTH_CEILING = 1.5
#: Absolute quick-mode ceiling (MB) — generous vs the ~150 MB observed,
#: tight vs the GBs a materialized 930k-target world would need.
QUICK_RSS_CEILING_MB = 512
#: Throughput flatness gate: a 10x bigger lazy campaign keeps at least
#: 1/1.25 of the smaller tier's end-to-end pps (the derivation and
#: eviction edges must stay amortized, not per-probe).
TIER_PPS_GAP_CEILING = 1.25 * float(
    os.environ.get("SCALE_BENCH_GAP_SCALE", "1.0")
)

_CHILD = r"""
import json, resource, sys, time
from repro.scanner.campaign import ScanCampaign
from repro.scanner.executor import ExecutionOptions
from repro.topology.config import TopologyConfig
from repro.topology.lazy import LazyTopology

divisor, seed = float(sys.argv[1]), int(sys.argv[2])
config = TopologyConfig.streamed(divisor=divisor, seed=seed)
topology = LazyTopology(config=config)
campaign = ScanCampaign(
    topology=topology, config=config, options=ExecutionOptions()
)
probes = observations = 0
scan_seconds = plan_seconds = derive_seconds = ingest_seconds = 0.0
started = time.perf_counter()
for stream in campaign.run_streaming():
    for batch in stream.batches():
        observations += len(batch)
    metrics = stream.execution.metrics
    probes += metrics.probes_sent
    scan_seconds += metrics.wall_time
    plan_seconds += metrics.plan_time
    derive_seconds += metrics.derive_time
    ingest_seconds += metrics.ingest_time
elapsed = time.perf_counter() - started
print(json.dumps({
    "targets_probed": probes,
    "observations": observations,
    "seconds": elapsed,
    "scan_seconds": scan_seconds,
    "plan_seconds": plan_seconds,
    "derive_seconds": derive_seconds,
    "ingest_seconds": ingest_seconds,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "device_count": topology.device_count,
    "peak_resident_devices": topology.peak_resident,
    "derivations": topology.derivations,
    "membership_derivations": topology.membership_derivations,
    "max_resident": topology.max_resident,
}))
"""


def _measure(divisor: float) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(divisor), str(SEED)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout)


def test_bench_scale_streaming_rss_flatness():
    results = {}
    # Two passes per tier, interleaved (small, big, big, small): host
    # throughput drifts on shared machines, and a tier gap computed from
    # one run of each tier mostly measures which tier hit the slow
    # window.  Best-of-two with mirrored order decorrelates the drift.
    tiers = sorted(TIERS.items(), reverse=True)
    runs: dict[float, list[dict]] = {divisor: [] for divisor, __ in tiers}
    for divisor, __ in tiers + tiers[::-1]:
        runs[divisor].append(_measure(divisor))
    for divisor, label in tiers:
        stats = min(runs[divisor], key=lambda s: s["seconds"])
        stats["divisor"] = divisor
        stats["runs"] = len(runs[divisor])
        stats["pps_runs"] = [
            round(r["targets_probed"] / r["seconds"]) for r in runs[divisor]
        ]
        stats["pps"] = round(stats["targets_probed"] / stats["seconds"])
        stats["pps_scan_phase"] = round(
            stats["targets_probed"] / stats["scan_seconds"]
        )
        for field in ("seconds", "scan_seconds", "plan_seconds",
                      "derive_seconds", "ingest_seconds"):
            stats[field] = round(stats[field], 3)
        stats["peak_rss_mb"] = round(stats["peak_rss_kb"] / 1024.0, 1)
        results[label] = stats
        print(f"\n~{label} targets (1/{divisor:g}): "
              f"{stats['targets_probed']} probes in {stats['seconds']}s "
              f"({stats['pps']} pps end-to-end, "
              f"{stats['pps_scan_phase']} pps scan-phase), "
              f"peak RSS {stats['peak_rss_mb']} MB, "
              f"resident {stats['peak_resident_devices']}"
              f"/{stats['device_count']} devices "
              f"(best of {stats['runs']})")

        # Residency stays O(max_resident): the topology window plus the
        # campaign handler cache, never the world.
        assert stats["peak_resident_devices"] <= 2 * stats["max_resident"]
        if stats["device_count"] > 2 * stats["max_resident"]:
            assert stats["peak_resident_devices"] < stats["device_count"]

    # The headline: RSS stays flat while targets grow ~10x per tier.
    ordered = [results[TIERS[d]] for d in sorted(TIERS, reverse=True)]
    for small, big in zip(ordered, ordered[1:]):
        growth = big["targets_probed"] / small["targets_probed"]
        rss_ratio = big["peak_rss_kb"] / small["peak_rss_kb"]
        assert growth > 5, "tiers must differ enough to prove anything"
        assert rss_ratio < RSS_GROWTH_CEILING, (
            f"peak RSS grew {rss_ratio:.2f}x over a {growth:.1f}x "
            f"target growth — streaming is no longer constant-memory"
        )
        # And so does throughput: derivation/eviction costs must stay
        # amortized, or bigger campaigns quietly pay per-probe edges.
        # Each ratio pairs runs from the same mirrored pass (temporally
        # adjacent), then the min over passes is asserted: a real
        # regression is in the code and shows up in every scheduling
        # window, so it survives the min, while a host fast/slow
        # transition straddling one pass only inflates that pass.
        pps_gap = min(
            (s["targets_probed"] / s["seconds"])
            / (b["targets_probed"] / b["seconds"])
            for s, b in zip(runs[small["divisor"]], runs[big["divisor"]])
        )
        big["pps_gap_vs_smaller_tier"] = round(pps_gap, 3)
        assert pps_gap <= TIER_PPS_GAP_CEILING, (
            f"end-to-end pps sagged {pps_gap:.2f}x from "
            f"{small['targets_probed']} to {big['targets_probed']} targets "
            f"(ceiling {TIER_PPS_GAP_CEILING:.2f}x)"
        )

    if QUICK:
        for stats in ordered:
            assert stats["peak_rss_mb"] <= QUICK_RSS_CEILING_MB, (
                f"peak RSS {stats['peak_rss_mb']} MB exceeds the "
                f"{QUICK_RSS_CEILING_MB} MB CI ceiling"
            )

    payload = {
        "benchmark": "streaming-campaign-scale",
        "seed": SEED,
        "quick": QUICK,
        "cpu_count": os.cpu_count() or 1,
        "rss_growth_ceiling": RSS_GROWTH_CEILING,
        "tier_pps_gap_ceiling": TIER_PPS_GAP_CEILING,
        "results": results,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
