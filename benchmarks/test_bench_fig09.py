"""F9 — Figure 9: number of IPs per alias set (v4 / v6 / routers)."""

from repro.experiments import figures_alias as fa


def test_bench_fig09(benchmark, ctx):
    f9 = benchmark(fa.figure9, ctx)
    print("\n" + f9.ipv4_sets.render("IPs per IPv4 alias set", [1, 2, 5, 10, 50]))
    print(f9.router_sets.render("IPs per router alias set", [1, 2, 5, 10, 50]))
    assert f9.router_sets_are_larger  # paper: router sets hold many more IPs
