"""F14 — Figure 14: number of router vendors per AS."""

from repro.experiments import figures_vendor as fv


def test_bench_fig14(benchmark, ctx):
    f14 = benchmark(fv.figure14, ctx)
    print()
    for threshold, ecdf in f14.ecdf_by_min_routers.items():
        print(f"ASes with {threshold}+ routers (n={ecdf.count}): "
              f"single-vendor {ecdf.at(1.0):.0%}, >5 vendors {ecdf.fraction_above(5):.0%}")
    if 5 in f14.ecdf_by_min_routers:
        assert 0.15 < f14.single_vendor_fraction(5) < 0.75  # paper: 40%
        assert f14.ecdf_by_min_routers[5].fraction_above(5) < 0.15  # paper: <10%
