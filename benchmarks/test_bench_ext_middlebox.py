"""EXT — §9 future work: NAT and load-balancer inference.

Mines NAT gateways from discarded engine IDs and burst-probes triaged
targets for engine-ID flips, scoring both against ground truth."""

from repro.experiments.extensions import middlebox_experiment


def test_bench_ext_middlebox(benchmark, ctx):
    result = benchmark.pedantic(middlebox_experiment, args=(ctx,), rounds=2, iterations=1)
    r = result.report
    print(f"\nNAT gateways: {result.nats_found} found "
          f"(precision {r.nat_precision:.2f}, recall {r.nat_recall:.2f})")
    print(f"load balancers: {result.lbs_found} found of "
          f"{result.lb_candidates_probed} bursted "
          f"(precision {r.lb_precision:.2f}, recall {r.lb_recall:.2f})")
    assert r.nat_precision == 1.0
    assert r.lb_precision == 1.0
    assert result.nats_found > 0
