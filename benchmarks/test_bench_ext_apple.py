"""EXT — §7.2 comparator: APPLE path-length pruning composed with MIDAR.

Measures how many candidate pairs the distance-vector sieve removes
before the expensive monotonic-bounds testing, at zero recall cost on
true alias pairs."""

from repro.alias.apple import PathLengthPruner


def run(ctx):
    pruner = PathLengthPruner(ctx.topology)
    routers = [d for d in ctx.topology.routers() if d.ipv4_interfaces][:60]
    addresses = [d.ipv4_interfaces[0].address for d in routers]
    cross_pairs = [
        (addresses[i], addresses[j])
        for i in range(len(addresses))
        for j in range(i + 1, len(addresses))
    ]
    true_pairs = []
    for device in routers:
        v4 = [i.address for i in device.ipv4_interfaces]
        true_pairs.extend(zip(v4, v4[1:]))
    kept_cross, pruned_cross = pruner.prune_pairs(cross_pairs)
    kept_true, pruned_true = pruner.prune_pairs(true_pairs)
    return len(cross_pairs), pruned_cross, len(true_pairs), pruned_true


def test_bench_ext_apple(benchmark, ctx):
    total, pruned, true_total, true_pruned = benchmark.pedantic(
        run, args=(ctx,), rounds=2, iterations=1
    )
    print(f"\ncross-device pairs: {total}, pruned {pruned} ({pruned / total:.0%})")
    print(f"true alias pairs: {true_total}, pruned {true_pruned} (must be 0)")
    assert true_pruned == 0          # pruning never costs recall
    assert pruned > 0.05 * total     # and it saves real work
