"""§5.3 — comparison with MIDAR and Speedtrap.

Benchmarks the MIDAR-style resolver over the union IPv4 router dataset
(estimation + sieve + pairwise monotonic-bounds tests) and prints the
comparison against the SNMPv3 sets."""

from repro.alias.compare import compare_alias_sets
from repro.alias.midar import MidarResolver


def test_bench_sec53(benchmark, ctx, speedtrap_sets):
    candidates = sorted(ctx.datasets.union_v4, key=int)
    midar = benchmark(MidarResolver(topology=ctx.topology).resolve, candidates)
    print(f"\nMIDAR: {midar.count} sets, {midar.non_singleton_count} non-singleton "
          f"({midar.mean_non_singleton_size:.1f} IPs/set)")
    print(f"Speedtrap: {speedtrap_sets.count} sets, "
          f"{speedtrap_sets.non_singleton_count} non-singleton")
    print(f"SNMPv3 IPv4: {ctx.alias_v4.non_singleton_count} non-singleton")
    report = compare_alias_sets(ctx.alias_v4, midar)
    print(f"exact {report.exact_matches}, partial {report.partial_overlaps_a}, "
          f"complementary {report.complementary}")
    # Paper: MIDAR's sets are overwhelmingly singletons; views complement.
    assert midar.non_singleton_count < 0.2 * midar.count
    assert report.complementary
