"""F6 — Figure 6: relative Hamming weight of Octets vs non-conforming
engine IDs (randomness analysis)."""

from repro.analysis.hamming import histogram
from repro.experiments import figures_engine as fe


def test_bench_fig06(benchmark, ctx):
    f6 = benchmark(fe.figure6, ctx)
    print(f"\nOctets: n={len(f6.octets_weights)} mean={f6.octets_mean:.3f}")
    print(f"Non-conforming: n={len(f6.non_conforming_weights)} "
          f"mean={f6.non_conforming_mean:.3f} skew={f6.non_conforming_skewness:+.2f}")
    for center, frac in histogram(f6.non_conforming_weights, bins=10):
        print(f"  {center:.2f}: {'#' * int(frac * 60)}")
    assert abs(f6.octets_mean - 0.5) < 0.05       # paper: centered at 0.5
    assert f6.non_conforming_skewness > 0          # paper: positive skew
