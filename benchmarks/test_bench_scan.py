"""Performance — a full four-scan campaign over a small Internet.

Unlike the table/figure benches (which reuse the session campaign), this
one measures the end-to-end measurement cost: topology build + four
rate-limited scans + interim churn/reboot events."""


from repro.scanner.campaign import ScanCampaign
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology


def run_campaign():
    cfg = TopologyConfig.tiny(seed=99)
    topo = build_topology(cfg)
    return ScanCampaign(topology=topo, config=cfg).run()


def test_bench_full_campaign(benchmark):
    result = benchmark.pedantic(run_campaign, rounds=3, iterations=1)
    scan = result.scans["v4-1"]
    print(f"\nv4-1: {scan.targets_probed} probed, {scan.responsive_count} responsive, "
          f"{scan.probe_bytes_sent} bytes out, {scan.reply_bytes_received} bytes in")
    assert scan.responsive_count > 0
