"""Performance — the §4.4 filtering pipeline over the IPv4 scan pair."""

from repro.pipeline.filters import FilterPipeline


def test_bench_pipeline(benchmark, ctx):
    scan1, scan2 = ctx.campaign.scan_pair(4)
    result = benchmark(FilterPipeline().run, scan1, scan2)
    print(f"\ninput {result.stats.input_first}/{result.stats.input_second} -> "
          f"valid-eid {result.stats.valid_engine_id_count} -> "
          f"valid {result.stats.valid_count}")
    removed = {k: v for k, v in result.stats.removed.items() if v}
    print("removed:", removed)
    assert result.stats.valid_count > 0
