"""EXT — §7.1 comparator: banner grabbing vs SNMPv3 fingerprinting.

Banner classification needs a listening TCP service that volunteers
vendor information; on router populations both conditions mostly fail."""

from repro.fingerprint.banner import BannerGrabber, BannerOutcome


def run(ctx):
    grabber = BannerGrabber(ctx.topology)
    router_ips = []
    for group, __ in ctx.router_vendors:
        v4 = sorted((a for a in group if a.version == 4), key=int)
        if v4:
            router_ips.append(v4[0])
    return grabber.survey(router_ips), len(router_ips)


def test_bench_ext_banner(benchmark, ctx):
    histogram, sampled = benchmark(run, ctx)
    print(f"\nsampled router IPs: {sampled}")
    for outcome, count in histogram.items():
        print(f"  {outcome.value}: {count}")
    identified = histogram[BannerOutcome.IDENTIFIED]
    no_service = histogram[BannerOutcome.NO_SERVICE]
    assert no_service > identified   # SNMPv3 identified all of these
