"""T1 — Table 1: SNMPv3 measurement-campaign overview.

Regenerates the paper's Table 1 rows (responsive IPs, unique engine IDs,
valid engine ID, valid engine ID + time, per scan) from the session's
campaign and benchmarks the tabulation.
"""

from repro.experiments import tables


def test_bench_table1(benchmark, ctx):
    table = benchmark(tables.table1, ctx)
    print("\n" + table.render())
    v4 = table.rows[2]
    assert v4.valid_engine_id_time_ips <= v4.valid_engine_id_ips <= v4.responsive_ips
    assert v4.responsive_ips > table.rows[0].responsive_ips  # v4 >> v6
