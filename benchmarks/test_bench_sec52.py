"""§5.2 — comparison with the Router Names (rDNS regex) dataset."""

from repro.experiments import figures_alias as fa


def test_bench_sec52(benchmark, ctx):
    s52 = benchmark(fa.section52, ctx)
    o = s52.overlap
    print(f"\nRouter Names: {s52.router_names.count} sets "
          f"({s52.router_names.non_singleton_count} non-singleton)")
    print(f"dual-stack non-singleton: SNMPv3 {s52.snmpv3_dual_non_singleton} "
          f"vs Router Names {s52.router_names_dual_non_singleton}")
    print(f"exact matches {o.exact_matches}, partial {o.partial_overlaps_a}, "
          f"exclusive addresses: SNMPv3 {o.only_a_addresses} / rDNS {o.only_b_addresses}")
    # Paper: SNMPv3 identifies 2.5x the dual-stack sets; only 9 exact
    # matches; the two views are complementary.
    assert s52.snmpv3_dual_non_singleton > s52.router_names_dual_non_singleton
    assert o.exact_matches < o.partial_overlaps_a
    assert o.complementary
