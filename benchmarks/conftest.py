"""Shared fixtures for the benchmark harness.

One paper-scale measurement run (1/100 of the paper's Internet: ~46k
devices, ~3.5k routers, 250 ASes) is executed once per session; each
benchmark then regenerates its table or figure from the cached context —
mirroring how the paper derives the whole evaluation from one scan
campaign — and prints the rows/series the paper reports.
"""

import pytest

from repro.experiments import ExperimentContext
from repro.topology.config import TopologyConfig

PAPER_DIVISOR = 100.0
SEED = 2021


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext.create(
        TopologyConfig.paper_scale(divisor=PAPER_DIVISOR, seed=SEED)
    )


@pytest.fixture(scope="session")
def midar_sets(ctx):
    from repro.alias.midar import MidarResolver

    return MidarResolver(topology=ctx.topology).resolve(sorted(ctx.datasets.union_v4, key=int))


@pytest.fixture(scope="session")
def speedtrap_sets(ctx):
    from repro.alias.speedtrap import SpeedtrapResolver

    return SpeedtrapResolver(topology=ctx.topology).resolve(
        sorted(ctx.datasets.itdk_v6 | ctx.datasets.ripe_v6, key=int)
    )
