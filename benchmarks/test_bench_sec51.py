"""§5.1 — alias resolution headline numbers, incl. dual-stack joining.

Benchmarks the paper's chosen resolver over the valid IPv4 records (the
heaviest single grouping operation) and prints the §5.1 summary."""

from repro.alias.snmpv3 import resolve_aliases
from repro.experiments import figures_alias as fa


def test_bench_sec51(benchmark, ctx):
    sets = benchmark(resolve_aliases, ctx.valid_v4)
    s51 = fa.section51(ctx)
    print(f"\nIPv4: {s51.v4.sets} sets, {s51.v4.non_singletons} non-singleton, "
          f"{s51.v4.ips_in_non_singletons} IPs grouped "
          f"({s51.v4.grouped_fraction:.0%}), {s51.v4.mean_non_singleton_size:.1f} IPs/set")
    print(f"IPv6: {s51.v6.sets} sets, {s51.v6.non_singletons} non-singleton")
    print(f"joint: {s51.v4_only_sets} v4-only, {s51.v6_only_sets} v6-only, "
          f"{s51.dual_sets} dual-stack (avg {s51.dual_mean_size:.1f} addrs)")
    assert sets.count == s51.v4.sets
    assert s51.v4.grouped_fraction > 0.3   # paper: 70% of IPs grouped
    assert s51.dual_sets > 0
