"""Ablation — one-scan vs two-scan matching.

The paper runs two scans per family and matches on both; a single scan
is cheaper but admits false merges when distinct devices reboot into the
same (engine ID, boots, reboot-bin) bucket."""

from repro.alias.sets import evaluate_against_truth
from repro.alias.snmpv3 import Snmpv3AliasResolver


def compare(ctx):
    truth = ctx.topology.true_alias_sets(4)
    first = Snmpv3AliasResolver(use_both_scans=False).resolve(ctx.valid_v4)
    both = Snmpv3AliasResolver(use_both_scans=True).resolve(ctx.valid_v4)
    return (
        (first, evaluate_against_truth(first, truth)),
        (both, evaluate_against_truth(both, truth)),
    )


def test_bench_ablation_scans(benchmark, ctx):
    (first, ev_first), (both, ev_both) = benchmark(compare, ctx)
    print(f"\nfirst-only: sets={first.count} precision={ev_first.precision:.4f} "
          f"recall={ev_first.recall:.4f}")
    print(f"both-scans: sets={both.count} precision={ev_both.precision:.4f} "
          f"recall={ev_both.recall:.4f}")
    assert ev_both.precision >= ev_first.precision
    assert both.count >= first.count  # stricter key can only split
