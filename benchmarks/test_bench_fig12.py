"""F12 — Figure 12: router vendor popularity."""

from repro.experiments import figures_vendor as fv


def test_bench_fig12(benchmark, ctx):
    f12 = benchmark(fv.figure12, ctx)
    print()
    for vendor, count in f12.top(10):
        print(f"{vendor:<14} {count:>7}")
    top = f12.top(10)
    assert top[0][0] == "Cisco"              # paper: Cisco ~240k of 347k
    assert top[1][0] == "Huawei"             # paper: Huawei ~52k
    assert top[0][1] > 2 * top[1][1]
    majors = sum(f12.count(v) for v in ("Cisco", "Huawei", "Juniper", "H3C", "Net-SNMP"))
    assert majors / sum(f12.counts.values()) > 0.75  # paper: >95% majors
