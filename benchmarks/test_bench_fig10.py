"""F10 — Figure 10: SNMPv3 coverage of router IPs per AS."""

from repro.experiments import figures_vendor as fv


def test_bench_fig10(benchmark, ctx):
    f10 = benchmark(fv.figure10, ctx)
    print(f"\noverall coverage: {f10.coverage.overall:.1%}")
    for threshold, ecdf in f10.ecdfs().items():
        print(f"ASes with {threshold}+ dataset IPs (n={ecdf.count}): "
              f"<10%: {ecdf.at(0.0999):.0%}  >80%: {ecdf.fraction_above(0.8):.0%}")
    assert 0.08 < f10.coverage.overall < 0.30  # paper: 16% overall
    ecdf = f10.coverage.ecdf(2)
    assert ecdf.at(0.0999) > 0.2               # many networks barely covered
    assert ecdf.fraction_above(0.8) > 0.02     # some networks wide open
