"""§6.2.3 — Nmap comparison: fingerprint one IP per identified router.

Paper: 22.2k of 26.4k routers yield no Nmap result (no open TCP port);
matches agree with the SNMPv3 verdict; Nmap costs orders of magnitude
more probes than the single SNMPv3 packet."""

from repro.experiments import figures_vendor as fv


def test_bench_sec62(benchmark, ctx):
    s62 = benchmark(fv.section62, ctx)
    print(f"\nsampled router IPs: {s62.sampled}")
    print(f"no result: {s62.no_result} ({s62.no_result_fraction:.0%}; paper 84%)")
    print(f"matches: {s62.matches} ({s62.agreeing_matches} agree with SNMPv3)")
    print(f"guesses: {s62.guesses} ({s62.disagreeing_guesses} disagree)")
    print(f"probes: Nmap {s62.nmap_probes_total} vs SNMPv3 {s62.snmpv3_probes_total}")
    assert s62.no_result_fraction > 0.6
    assert s62.nmap_probes_total > 5 * s62.snmpv3_probes_total
