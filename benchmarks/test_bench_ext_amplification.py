"""EXT — §8 quantified: reflection/amplification potential of the
responder population (bandwidth and packet amplification factors)."""

from repro.analysis.amplification import analyze_amplification


def test_bench_ext_amplification(benchmark, ctx):
    scan1, __ = ctx.campaign.scan_pair(4)
    report = benchmark(analyze_amplification, scan1)
    print("\n" + report.headline())
    print(f"PAF p99: {report.paf_ecdf.quantile(0.99):.0f}, "
          f"BAF p99: {report.baf_ecdf.quantile(0.99):.1f}")
    assert report.mean_baf > 1.0      # replies bigger than probes
    assert report.worst_paf >= 10     # the buggy amplifier tail exists
