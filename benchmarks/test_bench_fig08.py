"""F8 — Figure 8: |delta last reboot| between the scans of a pair."""

from repro.experiments import figures_engine as fe


def test_bench_fig08(benchmark, ctx):
    f8 = benchmark(fe.figure8, ctx)
    for label, ecdf in (("IPv4 all", f8.all_v4), ("IPv4 routers", f8.routers_v4),
                        ("IPv6 all", f8.all_v6), ("IPv6 routers", f8.routers_v6)):
        print(f"\n{label:<13} <=10s {ecdf.at(10):.1%}  <=120s {ecdf.at(120):.1%}")
    assert f8.routers_v4.at(10) > 0.9            # routers consistent at the knee
    assert f8.all_v6.at(10) > f8.all_v4.at(10)   # v6 tighter than v4
    assert f8.all_v4.at(120) > f8.all_v4.at(10)  # v4 long tail
