"""EXT — §8: offline USM dictionary attack, and why a leaked engine-ID
corpus is worse than one leak: the 1 MB password stretch amortizes
across every engine, leaving only a cheap localization per target."""

from repro.net.mac import MacAddress
from repro.snmp.bruteforce import CapturedMessage, UsmBruteForcer, forge_authenticated_get
from repro.snmp.engine_id import EngineId

PASSWORD = "winter-maintenance-7"
DICTIONARY = [f"guess-{i:04d}" for i in range(30)] + [PASSWORD]


def capture_for(mac_suffix: int) -> CapturedMessage:
    engine_id = EngineId.from_mac(9, MacAddress(0x00000CBB0000 + mac_suffix))
    wire = forge_authenticated_get(
        engine_id=engine_id.raw, engine_boots=3, engine_time=12345,
        user_name=b"noc", password=PASSWORD,
    )
    return CapturedMessage.from_wire(wire)


def crack_corpus(captures):
    forcer = UsmBruteForcer()
    results = forcer.crack_many(captures, DICTIONARY)
    return results, forcer.cache_size


def test_bench_ext_bruteforce(benchmark):
    captures = [capture_for(i) for i in range(8)]
    results, cache_size = benchmark.pedantic(
        crack_corpus, args=(captures,), rounds=2, iterations=1
    )
    cracked = sum(1 for r in results.values() if r.cracked)
    print(f"\nengines attacked: {len(captures)}, cracked: {cracked}")
    print(f"dictionary size: {len(DICTIONARY)}, stretches computed: "
          f"{cache_size} (amortized across all engines)")
    assert cracked == len(captures)
    assert cache_size == len(DICTIONARY)  # one stretch per guess, total
