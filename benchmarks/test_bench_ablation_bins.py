"""Ablation — last-reboot bin width vs alias accuracy.

DESIGN.md calls out the 20-second bin (2x the 10-second filter knee) as a
design choice; this bench sweeps the width and scores each against
ground truth.  Narrow bins split true aliases (recall drops); very wide
bins eventually merge distinct devices sharing an engine ID."""

from repro.alias.sets import evaluate_against_truth
from repro.alias.snmpv3 import Snmpv3AliasResolver
from repro.pipeline.records import ValidRecord


class _WidthResolver(Snmpv3AliasResolver):
    """The production resolver with a parameterized bin width."""

    def __init__(self, width: float):
        super().__init__()
        object.__setattr__(self, "width", width)

    def group_key(self, record: ValidRecord) -> tuple:
        return (
            record.engine_id.raw,
            record.engine_boots,
            int(record.last_reboot_first // self.width),
            int(record.last_reboot_second // self.width),
        )


def sweep(ctx):
    results = {}
    truth = ctx.topology.true_alias_sets(4)
    for width in (5.0, 10.0, 20.0, 40.0, 120.0):
        sets = _WidthResolver(width).resolve(ctx.valid_v4)
        results[width] = (sets, evaluate_against_truth(sets, truth))
    return results


def test_bench_ablation_bins(benchmark, ctx):
    results = benchmark(sweep, ctx)
    print()
    for width, (sets, ev) in results.items():
        print(f"bin {width:>5.0f}s: sets={sets.count:<6} ns={sets.non_singleton_count:<5}"
              f" precision={ev.precision:.4f} recall={ev.recall:.4f}")
    p20 = results[20.0][1]
    assert p20.precision > 0.99
    assert results[20.0][1].recall >= results[5.0][1].recall
