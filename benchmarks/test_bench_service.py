"""Performance — the query service under live ingest + compaction.

Races concurrent reader threads against a writer session that keeps
ingesting campaign rounds and compacting the store, and records the
numbers in ``BENCH_service.json`` at the repo root:

* sustained queries per second across all readers while the writer runs;
* cache hit ratio and p50/p99 request latency over the same window;
* the snapshot-isolation contract, asserted hard: every ``integrity``
  sample recounts one pinned generation's rows against its manifest
  (zero torn reads), every reader's observed generations are monotonic,
  and the window covers at least two compaction cycles.

``SERVICE_BENCH_QUICK=1`` shrinks the world and the round count (the CI
configuration); the full run uses a 1/500-scale topology.
"""

import json
import os
import threading
import time
from pathlib import Path

from repro.api import Session
from repro.service.query import QueryService

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_service.json"
SEED = 2021

QUICK = os.environ.get("SERVICE_BENCH_QUICK") == "1"
DIVISOR = 2000.0 if QUICK else 500.0
WRITER_ROUNDS = 4 if QUICK else 6
READERS = 4
#: CI floor: readers of a cached store clear this by orders of magnitude;
#: the floor guards against serialization bugs (e.g. every request
#: re-reading segments) rather than machine speed.
MIN_QUERIES_PER_SECOND = 50.0


def test_bench_service(tmp_path):
    root = tmp_path / "obs"
    session = Session(scale=DIVISOR, seed=SEED, store=root)
    session.run_campaign(round_id=1)

    service = QueryService(store=root, cache_entries=64)
    target = str(
        next(iter(service.store.observations())).observation.address
    )
    mixed = (
        ("rounds", None),
        ("device-count", None),
        ("integrity", None),
        ("vendor-census", None),
        ("history", target),
        ("timeline-summary", None),
        ("integrity", None),
        ("stats", None),
    )

    stop = threading.Event()
    failures: list[str] = []
    latencies: list[list[float]] = [[] for _ in range(READERS)]
    generations: list[list[int]] = [[] for _ in range(READERS)]
    counts = [0] * READERS
    integrity_samples = [0] * READERS

    def read(worker: int) -> None:
        step = 0
        while not stop.is_set():
            endpoint, argument = mixed[(worker + step) % len(mixed)]
            step += 1
            try:
                response = service.request(endpoint, argument)
            except Exception as error:  # noqa: BLE001 - collected
                failures.append(f"{endpoint}: {type(error).__name__}: {error}")
                return
            counts[worker] += 1
            latencies[worker].append(response.latency)
            generations[worker].append(response.generation)
            if endpoint == "integrity":
                integrity_samples[worker] += 1
                if response.value["consistent"] is not True:
                    failures.append(f"torn read: {response.value}")
                    return

    threads = [
        threading.Thread(target=read, args=(n,)) for n in range(READERS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    compactions = 0
    try:
        for round_id in range(2, 2 + WRITER_ROUNDS):
            session.run_campaign(round_id=round_id)
            if round_id % 2 == 0:
                service.store.__class__(root=root).compact()
                compactions += 1
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=60.0)
    elapsed = time.perf_counter() - started

    # -- the contract ------------------------------------------------------
    assert not failures, failures[:5]
    assert compactions >= 2, "window must cover >= 2 compaction cycles"
    total_queries = sum(counts)
    total_integrity = sum(integrity_samples)
    assert total_integrity > 0, "no integrity sample completed"
    for worker, seen in enumerate(generations):
        assert seen == sorted(seen), f"reader {worker} generation regressed"
    final_rounds = service.request("rounds").value
    assert final_rounds == list(range(1, 2 + WRITER_ROUNDS))

    # -- the numbers -------------------------------------------------------
    queries_per_second = total_queries / elapsed
    assert queries_per_second >= MIN_QUERIES_PER_SECOND, (
        f"sustained {queries_per_second:.0f} qps under ingest is below "
        f"the {MIN_QUERIES_PER_SECOND:.0f} qps floor"
    )
    flat = sorted(sample for window in latencies for sample in window)
    p50 = flat[int(0.50 * len(flat))]
    p99 = flat[min(len(flat) - 1, int(0.99 * len(flat)))]
    summary = service.metrics_summary()

    payload = {
        "benchmark": "service-concurrent-query",
        "seed": SEED,
        "quick": QUICK,
        "scale_divisor": DIVISOR,
        "readers": READERS,
        "writer_rounds": WRITER_ROUNDS,
        "compactions": compactions,
        "window_seconds": round(elapsed, 3),
        "queries": total_queries,
        "queries_per_second": round(queries_per_second, 1),
        "integrity_samples": total_integrity,
        "torn_reads": 0,
        "cache_hit_ratio": summary["hit_ratio"],
        "p50_latency_ms": round(p50 * 1e3, 3),
        "p99_latency_ms": round(p99 * 1e3, 3),
        "shed": summary["shed"],
        "final_generation": service.generation,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nservice bench 1/{DIVISOR:g}: {total_queries} queries in "
          f"{elapsed:.1f}s under live ingest ({queries_per_second:.0f} qps) | "
          f"hit ratio {summary['hit_ratio']:.2f} | "
          f"p50 {p50 * 1e3:.2f}ms p99 {p99 * 1e3:.2f}ms | "
          f"{total_integrity} integrity samples, 0 torn | "
          f"{compactions} compactions")
