"""§8 — response amplification: IPs answering one probe many times."""

from repro.experiments import figures_vendor as fv


def test_bench_sec8(benchmark, ctx):
    s8 = benchmark(fv.section8, ctx)
    print(f"\nresponsive IPv4 addresses: {s8.responsive_ips}")
    print(f"multi-response IPs: {s8.multi_response_ips} "
          f"({s8.multi_response_fraction:.2%}; paper ~0.6%)")
    print(f"max identical replies to one probe: {s8.max_responses_single_ip}")
    assert s8.multi_response_ips > 0
    assert s8.multi_response_fraction < 0.05
    assert s8.max_responses_single_ip >= 10
