"""Performance — end-to-end campaign wall time, with identity gates.

``BENCH_pipeline.json`` proved the staged pipeline's scan-phase win;
this benchmark tracks what the user actually waits for: the whole
campaign, planning, derivation and ingest edges included.  Numbers land
in ``BENCH_campaign.json`` at the repo root:

* campaign-wall throughput of the eager sharded campaign at 1/300
  scale, asserted ``>= 3x`` the committed pre-pipeline baseline
  (``BENCH_parallel.json``'s ``probes_per_second_serial`` — the same
  baseline the pipeline bench uses, so the two ratios are comparable);
* the per-scan non-probe edge seconds (plan/derive/ingest) that used to
  hide inside the campaign-vs-scan-phase gap;
* the lazy-vs-eager streamed gap at the ~93k-target tier, asserted
  under ``LAZY_EAGER_GAP_CEILING`` on an end-to-end basis (topology
  build + campaign wall — the time a user actually waits).  The eager
  world front-loads every derivation into its build; comparing
  campaign seconds alone would hand it that work for free.  Campaign-
  only pps is still recorded for both worlds, unasserted;
* the lazy tier gap: end-to-end pps at ~930k targets must stay within
  ``TIER_GAP_CEILING`` of the ~93k tier (the 21k→13k sag, gated).

Identity is part of the contract, not a separate suite: the legacy
loop, the batch pipeline, the multi-worker run, and the lazy and eager
streamed worlds must all produce byte-identical scans before any
throughput number is recorded.

Honesty rules: ``cpu_count`` is recorded; every timed leg runs in a
fresh subprocess so no run is taxed by a predecessor's heap; gap
ratios pair temporally adjacent runs and assert the min over two
mirrored passes, so a host scheduling transition cannot masquerade as
a regression; serial timings are best-of-N
(shared hosts throttle intermittently) with every rep recorded; the
multi-worker run contributes an identity gate always but a timing claim
never (this benchmark asserts serial floors only, so it is safe on a
one-core runner).  ``CAMPAIGN_BENCH_QUICK=1`` (the CI configuration)
drops to two serial reps; ``CAMPAIGN_BENCH_FLOOR_SCALE`` scales the
absolute floors down for non-reference hosts, same precedent as the
pipeline bench.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_campaign.json"
SEED = 2021

QUICK = os.environ.get("CAMPAIGN_BENCH_QUICK") == "1"
SERIAL_REPS = 4 if QUICK else 6
#: Small-tier streamed legs aggregate this many back-to-back campaigns
#: per subprocess so their measurement window lasts tens of seconds,
#: like the big tier's single campaign.  A ~5 s run sits entirely
#: inside one of the host's fast or slow scheduling windows; a ~65 s
#: run averages over them — ratios of the two measure the host's duty
#: cycle, not the code (observed: identical small campaigns swinging
#: 26k-43k pps while big-tier runs held 30k steady).
SMALL_TIER_AGG_REPS = 8 if QUICK else 12

#: Pre-pipeline serial throughput at 1/300 scale, frozen from the last
#: per-probe-loop run of BENCH_parallel.json (campaign wall clock on the
#: reference host) — identical to BENCH_pipeline's committed baseline.
BASELINE_PPS = 15909.0
DIVISOR = 300.0
WALL_RATIO_FLOOR = 3.0
FLOOR_SCALE = float(os.environ.get("CAMPAIGN_BENCH_FLOOR_SCALE", "1.0"))

#: Streamed tiers: divisor -> nominal IPv4 target count.
SMALL_TIER, BIG_TIER = 400.0, 40.0
TIER_LABELS = {SMALL_TIER: "93k", BIG_TIER: "930k"}
#: The lazy world may run at most this factor slower than the eager
#: streamed world end-to-end (build + campaign: lazy amortizes the
#: derivations the eager build pays up front, but each on-demand
#: derivation carries cache/eviction overhead an eager sweep does
#: not), and the big tier at most this factor slower than the small
#: one.  Both scale with CAMPAIGN_BENCH_FLOOR_SCALE inverted — a
#: slower host widens gaps it cannot cause.  The lazy-eager ceiling is
#: a regression gate, not a tight bound: the measured gap is ~1.4x
#: window-matched but the two legs sample the host minutes apart, and
#: scheduling drift alone moves the ratio by ~±0.2x.
LAZY_EAGER_GAP_CEILING = 2.0 / FLOOR_SCALE
TIER_GAP_CEILING = 1.25 / FLOOR_SCALE

_results: dict = {}


#: Eager campaign legs run in fresh subprocesses for the same reason
#: the streamed legs do (below): a timed rep sharing a process with the
#: legacy run measures that run's leftover heap, not the pipeline.
#: Identity travels as a sha256 over the order-normalized scan content,
#: which is exactly what the old in-process dict comparison checked.
_EAGER_CHILD = r"""
import hashlib, json, sys, time
from repro.scanner.campaign import SCAN_LABELS, ScanCampaign
from repro.scanner.executor import ExecutionOptions
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology

divisor, seed = float(sys.argv[1]), int(sys.argv[2])
pipeline, workers = sys.argv[3] == "pipeline", int(sys.argv[4])
cfg = TopologyConfig.paper_scale(divisor=divisor, seed=seed)
topo = build_topology(cfg)
campaign = ScanCampaign(
    topology=topo, config=cfg,
    options=ExecutionOptions(workers=workers, pipeline=pipeline),
)
started = time.perf_counter()
result = campaign.run()
wall = time.perf_counter() - started
digest = hashlib.sha256()
for label in SCAN_LABELS:
    scan = result.scans[label]
    digest.update(label.encode())
    for key in sorted(scan.observations, key=str):
        obs = scan.observations[key]
        digest.update(repr((
            str(obs.address), obs.recv_time,
            None if obs.engine_id is None else obs.engine_id.raw,
            obs.engine_boots, obs.engine_time,
            obs.response_count, obs.wire_bytes,
        )).encode())
    digest.update(repr((
        scan.targets_probed, scan.probe_bytes_sent,
        scan.reply_bytes_received,
        sorted((str(a), n) for a, n in scan.multi_responders.items()),
    )).encode())
probes = sum(m.probes_sent for m in result.metrics.values())
print(json.dumps({
    "fingerprint": digest.hexdigest(),
    "targets_probed": probes,
    "wall_seconds": round(wall, 3),
    "pps": round(probes / wall),
    "edges_seconds": {
        "plan": round(sum(m.plan_time for m in result.metrics.values()), 4),
        "derive": round(
            sum(m.derive_time for m in result.metrics.values()), 4
        ),
        "ingest": round(
            sum(m.ingest_time for m in result.metrics.values()), 4
        ),
    },
}))
"""


def _run_child(child: str, argv: "list[str]") -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", child, *argv],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout)


def _eager_run(*, pipeline: bool, workers: int) -> dict:
    """Fresh eager campaign at 1/300, one subprocess per run."""
    return _run_child(_EAGER_CHILD, [
        str(DIVISOR), str(SEED),
        "pipeline" if pipeline else "legacy", str(workers),
    ])


#: Each streamed leg runs in a fresh subprocess, same precedent as the
#: scale bench: an in-process sequence lets one leg's heap (the eager
#: small world, prior lazy caches) tax the allocation-heavy probe loop
#: of the next, and the tier gap then measures heap history instead of
#: scaling behaviour.
_STREAMED_CHILD = r"""
import gc, hashlib, json, sys, time
from repro.scanner.campaign import ScanCampaign
from repro.scanner.executor import ExecutionOptions
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology
from repro.topology.lazy import LazyTopology

divisor, seed = float(sys.argv[1]), int(sys.argv[2])
lazy = sys.argv[3] == "lazy"
reps = int(sys.argv[4])
digest = hashlib.sha256()
probes = 0
build_seconds = campaign_seconds = 0.0
edges = {"plan": 0.0, "derive": 0.0, "ingest": 0.0}
for rep in range(reps):
    config = TopologyConfig.streamed(divisor=divisor, seed=seed)
    build_started = time.perf_counter()
    topology = (
        LazyTopology(config=config) if lazy else build_topology(config)
    )
    build_seconds += time.perf_counter() - build_started
    campaign = ScanCampaign(
        topology=topology, config=config, options=ExecutionOptions()
    )
    started = time.perf_counter()
    for stream in campaign.run_streaming():
        digest.update(stream.label.encode())
        for batch in stream.batches():
            for obs in batch:
                digest.update(repr((
                    str(obs.address), obs.recv_time,
                    None if obs.engine_id is None else obs.engine_id.raw,
                    obs.engine_boots, obs.engine_time,
                    obs.response_count, obs.wire_bytes,
                )).encode())
        metrics = stream.execution.metrics
        probes += metrics.probes_sent
        edges["plan"] += metrics.plan_time
        edges["derive"] += metrics.derive_time
        edges["ingest"] += metrics.ingest_time
    campaign_seconds += time.perf_counter() - started
    # Untimed: collecting the dead previous world is a harness
    # artifact of re-running campaigns in one process, not a cost any
    # single campaign pays.
    del config, topology, campaign, stream
    gc.collect()
print(json.dumps({
    "fingerprint": digest.hexdigest(),
    "agg_reps": reps,
    "targets_probed": probes,
    "build_seconds": round(build_seconds, 3),
    "campaign_seconds": round(campaign_seconds, 3),
    "pps_campaign": round(probes / campaign_seconds),
    "pps_end_to_end": round(probes / (build_seconds + campaign_seconds)),
    "edges_seconds": {k: round(v, 4) for k, v in edges.items()},
}))
"""


def _streamed_run(divisor: float, *, lazy: bool, reps: int = 1) -> dict:
    """Streamed campaign(s) in a fresh subprocess; fingerprint + timings."""
    return _run_child(_STREAMED_CHILD, [
        str(divisor), str(SEED), "lazy" if lazy else "eager", str(reps),
    ])


def _write_payload():
    payload = {
        "benchmark": "campaign-wall-and-lazy-gap",
        "seed": SEED,
        "quick": QUICK,
        "cpu_count": os.cpu_count() or 1,
        "baseline_source": (
            "BENCH_parallel.json probes_per_second_serial "
            "(pre-pipeline per-probe loop, campaign wall clock)"
        ),
        "baseline_pps_committed": BASELINE_PPS,
        "wall_ratio_floor": WALL_RATIO_FLOOR,
        "floor_scale": FLOOR_SCALE,
        "lazy_eager_gap_ceiling": round(LAZY_EAGER_GAP_CEILING, 3),
        "tier_gap_ceiling": round(TIER_GAP_CEILING, 3),
        "results": dict(sorted(_results.items())),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_bench_campaign_wall_throughput():
    legacy = _eager_run(pipeline=False, workers=1)
    reps = [
        _eager_run(pipeline=True, workers=1) for __ in range(SERIAL_REPS)
    ]
    multi = _eager_run(pipeline=True, workers=2)

    # Identity gates first — a fast wrong answer does not count.
    probes = legacy["targets_probed"]
    for rep_index, rep in enumerate(reps):
        assert rep["fingerprint"] == legacy["fingerprint"], (
            f"legacy-vs-batch rep{rep_index}"
        )
        assert rep["targets_probed"] == probes, rep_index
    assert multi["fingerprint"] == legacy["fingerprint"], (
        "serial-vs-multi-worker"
    )
    assert multi["targets_probed"] == probes

    best_rep = max(reps, key=lambda rep: rep["pps"])
    best = best_rep["pps"]
    ratio = best / BASELINE_PPS
    floor = WALL_RATIO_FLOOR * FLOOR_SCALE
    assert ratio >= floor, (
        f"campaign-wall throughput is {best:.0f} pps, {ratio:.2f}x the "
        f"committed {BASELINE_PPS:.0f} pps pre-pipeline baseline "
        f"(floor {floor:.2f}x)"
    )

    _results["campaign_wall"] = {
        "divisor": DIVISOR,
        "targets_probed": probes,
        "reps": SERIAL_REPS,
        "campaign_pps_reps": [rep["pps"] for rep in reps],
        "campaign_pps_best": best,
        "edges_seconds_best_rep": best_rep["edges_seconds"],
        "legacy_same_run_pps": legacy["pps"],
        "ratio_vs_baseline": round(ratio, 2),
        "asserted_floor": round(floor, 2),
        "identity": {
            "legacy_vs_batch": True,
            "serial_vs_multi_worker": True,
        },
        "multi_worker_wall_seconds": multi["wall_seconds"],
    }
    print(
        f"\ncampaign wall at 1/{DIVISOR:g}: {best:.0f} pps best of "
        f"{SERIAL_REPS} ({ratio:.2f}x baseline {BASELINE_PPS:.0f}), "
        f"legacy same-run {legacy['pps']:.0f} pps"
    )
    _write_payload()


def test_bench_campaign_lazy_gap():
    # Two passes per measurement, mirrored (A B C / C B A): host
    # throughput drifts on shared machines, and a ratio of two single
    # runs mostly measures which run hit the slow window.  Best-of-two
    # with mirrored order decorrelates the drift (same scheme as the
    # scale bench), and the small-tier legs aggregate
    # SMALL_TIER_AGG_REPS campaigns so every leg's measurement window
    # is tens of seconds — ratios then compare like with like.
    legs = [
        ("lazy_small", SMALL_TIER, True, SMALL_TIER_AGG_REPS),
        ("eager_small", SMALL_TIER, False, SMALL_TIER_AGG_REPS),
        ("lazy_big", BIG_TIER, True, 1),
    ]
    runs: dict = {name: [] for name, __, __lazy, __reps in legs}
    for name, divisor, lazy, reps in legs + legs[::-1]:
        runs[name].append(_streamed_run(divisor, lazy=lazy, reps=reps))
    picked = {}
    for name, reps in runs.items():
        # Identity across reps is free to check and must hold: the same
        # (seed, divisor, laziness) replays the same campaign.
        assert reps[0]["fingerprint"] == reps[1]["fingerprint"], name
        best = min(
            reps,
            key=lambda s: s["build_seconds"] + s["campaign_seconds"],
        )
        picked[name] = {
            **best,
            "runs": len(reps),
            "pps_end_to_end_runs": [r["pps_end_to_end"] for r in reps],
        }
    lazy_small, eager_small, lazy_big = (
        picked["lazy_small"], picked["eager_small"], picked["lazy_big"]
    )

    # Identity gate: the lazy and eager streamed worlds replay the same
    # campaign observation for observation.
    assert lazy_small["fingerprint"] == eager_small["fingerprint"], (
        "lazy-vs-eager streamed campaigns diverged at the "
        f"{TIER_LABELS[SMALL_TIER]} tier"
    )

    def paired_gap(slower: str, faster: str) -> float:
        # Each ratio is computed within one mirrored pass, i.e. from
        # temporally adjacent runs, then the min over passes is
        # asserted: a real regression is in the code and shows up in
        # every scheduling window, so it survives the min, while a
        # host fast/slow transition straddling one pass only inflates
        # that pass's ratio.
        return min(
            runs[faster][i]["pps_end_to_end"]
            / runs[slower][i]["pps_end_to_end"]
            for i in range(len(runs[faster]))
        )

    lazy_eager_gap = paired_gap("lazy_small", "eager_small")
    assert lazy_eager_gap <= LAZY_EAGER_GAP_CEILING, (
        f"lazy campaign runs {lazy_eager_gap:.2f}x slower than eager "
        f"end-to-end (ceiling {LAZY_EAGER_GAP_CEILING:.2f}x)"
    )

    tier_gap = paired_gap("lazy_big", "lazy_small")
    assert tier_gap <= TIER_GAP_CEILING, (
        f"lazy pps sagged {tier_gap:.2f}x from "
        f"{TIER_LABELS[SMALL_TIER]} to {TIER_LABELS[BIG_TIER]} targets "
        f"(ceiling {TIER_GAP_CEILING:.2f}x)"
    )

    _results["lazy_gap"] = {
        "small_tier": {"divisor": SMALL_TIER, "lazy": lazy_small,
                       "eager": eager_small},
        "big_tier": {"divisor": BIG_TIER, "lazy": lazy_big},
        "lazy_vs_eager_gap_end_to_end": round(lazy_eager_gap, 3),
        "tier_gap": round(tier_gap, 3),
        "identity": {"lazy_vs_eager": True},
    }
    print(
        f"\nlazy gap: {TIER_LABELS[SMALL_TIER]} lazy "
        f"{lazy_small['pps_end_to_end']} vs eager "
        f"{eager_small['pps_end_to_end']} pps end-to-end "
        f"(gap {lazy_eager_gap:.2f}x), {TIER_LABELS[BIG_TIER]} lazy "
        f"{lazy_big['pps_end_to_end']} pps (tier gap {tier_gap:.2f}x)"
    )
    _write_payload()
