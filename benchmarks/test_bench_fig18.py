"""F18 — Figure 18: vendor dominance per region (ASes with 10+ routers;
at our scale the threshold is 5+ to keep regions populated)."""

from repro.experiments import figures_vendor as fv


def test_bench_fig18(benchmark, ctx):
    f18 = benchmark(fv.figure18, ctx, min_routers=5)
    print()
    for region, ecdf in sorted(f18.items(), key=lambda kv: kv[0].value):
        print(f"{region.value}: n={ecdf.count} ASes, median dominance {ecdf.median:.2f}")
    assert f18, "no region had enough fingerprinted routers"
    for ecdf in f18.values():
        assert ecdf.median > 0.4
