"""F15 — Figure 15: router vendor popularity per continent."""

from repro.experiments import figures_vendor as fv
from repro.topology.model import Region


def test_bench_fig15(benchmark, ctx):
    f15 = benchmark(fv.figure15, ctx)
    print()
    for region in sorted(f15.shares, key=lambda r: -f15.totals.get(r, 0)):
        shares = f15.shares[region]
        print(f"{region.value} ({f15.totals[region]:>5}): " + "  ".join(
            f"{v} {shares.get(v, 0):.0%}"
            for v in ("Cisco", "Huawei", "Net-SNMP", "Juniper", "Other")))
    # Paper: Cisco dominant across regions; Huawei absent in NA, strong in AS.
    for region in (Region.EU, Region.NA):
        assert f15.shares[region]["Cisco"] == max(f15.shares[region].values())
    assert f15.share(Region.NA, "Huawei") < 0.02
    assert max(f15.share(Region.AS, "Huawei"), f15.share(Region.EU, "Huawei")) > 0.08
