"""F17 — Figure 17: vendor dominance per AS."""

from repro.experiments import figures_vendor as fv


def test_bench_fig17(benchmark, ctx):
    f17 = benchmark(fv.figure17, ctx)
    print()
    for threshold, ecdf in f17.ecdf_by_min_routers.items():
        print(f"ASes with {threshold}+ routers (n={ecdf.count}): "
              f"dominance >=0.7 for {ecdf.fraction_at_least(0.7):.0%}")
    assert f17.high_dominance_fraction(2, 0.7) > 0.6  # paper: >80% at >=0.7
