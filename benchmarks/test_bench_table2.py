"""T2 — Table 2: router datasets (ITDK / RIPE Atlas / IPv6 Hitlist) and
their overlap with SNMPv3-responsive addresses."""

from repro.experiments import tables


def test_bench_table2(benchmark, ctx):
    table = benchmark(tables.table2, ctx)
    print("\n" + table.render())
    assert table.row("ITDK").ipv4_addresses > table.row("RIPE Atlas").ipv4_addresses
    assert 0 < table.row("Union").ipv4_snmpv3 < table.row("Union").ipv4_addresses
