"""F7 — Figure 7: last-reboot distribution of the top-3 engine IDs.

The most-shared engine IDs (firmware-bug populations) must span years of
last-reboot values — the evidence they are NOT single devices."""

from repro.experiments import figures_engine as fe


def test_bench_fig07(benchmark, ctx):
    f7 = benchmark(fe.figure7, ctx)
    for family, top in (("IPv4", f7.top_v4), ("IPv6", f7.top_v6)):
        for rank, (raw, ecdf) in enumerate(top, 1):
            print(f"\n{family} #{rank} 0x{raw.hex()[:22]}..: {ecdf.count} IPs, "
                  f"span {f7.reboot_span_years(ecdf):.1f} years")
    spanning = sum(
        1 for __, e in f7.top_v4 + f7.top_v6 if f7.reboot_span_years(e) > 1.0
    )
    assert spanning >= 4  # paper: 5 of 6 span multiple years
