"""F4 — Figure 4: ECDF of the number of IPs per engine ID."""

from repro.experiments import figures_engine as fe


def test_bench_fig04(benchmark, ctx):
    f4 = benchmark(fe.figure4, ctx)
    print("\n" + f4.ecdf_v4.render("IPs per engine ID (IPv4)", [1, 2, 5, 10, 100]))
    print(f4.ecdf_v6.render("IPs per engine ID (IPv6)", [1, 2, 5, 10, 100]))
    assert f4.singleton_fraction_v4 > 0.8       # paper: >80% singleton (v4)
    assert f4.singleton_fraction_v6 > 0.5       # paper: >half (v6)
    assert f4.max_ips_single_engine_id_v4 > 50  # heavy tail (bug population)
