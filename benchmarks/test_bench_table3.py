"""T3 — Table 3 (Appendix A): the eight alias-resolution variants.

Benchmarks the full eight-variant sweep over the valid IPv4 records and
prints the table; the paper's chosen variant (Divide by 20, both scans)
must group at least as many IPs as exact matching."""

from repro.experiments import tables


def test_bench_table3(benchmark, ctx):
    table = benchmark(tables.table3, ctx)
    print("\n" + table.render())
    assert table.row("Divide by 20 both").ips_in_non_singletons >= \
        table.row("Exact both").ips_in_non_singletons
    assert table.row("Exact both").alias_sets >= table.row("Divide by 20 both").alias_sets
