"""F5 — Figure 5: engine-ID format distribution per address family."""

from repro.experiments import figures_engine as fe
from repro.snmp.engine_id import EngineIdFormat


def test_bench_fig05(benchmark, ctx):
    f5 = benchmark(fe.figure5, ctx)
    print("\n" + f5.render())
    assert f5.share(4, EngineIdFormat.MAC) > 0.4   # paper: ~60% MAC
    assert f5.share(6, EngineIdFormat.MAC) > 0.4
    assert f5.share(6, EngineIdFormat.IPV4) > 0.10  # paper: >15% IPv4-format in v6
