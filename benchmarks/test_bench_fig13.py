"""F13 — Figure 13: time since last reboot of identified routers."""

from repro.experiments import figures_vendor as fv


def test_bench_fig13(benchmark, ctx):
    stats = benchmark(fv.figure13, ctx)
    print("\n" + stats.headline())
    print(f"median uptime: {stats.median_uptime_days:.0f} days over {stats.count} routers")
    assert stats.frac_uptime_over_one_year < 0.40   # paper: <25%
    assert stats.frac_rebooted_this_year > 0.40     # paper: >50%
    assert 0.08 < stats.frac_rebooted_last_month < 0.40  # paper: ~20%
