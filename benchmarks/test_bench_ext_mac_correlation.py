"""EXT — SNMPv3 x EUI-64 cross-correlation: dual-stack aliases without
any IPv6 SNMP response, plus the exact-vs-neighbourhood ablation."""

from repro.alias.mac_correlation import MacCorrelator, evaluate_correlation


def run(ctx):
    v6_targets = sorted(ctx.datasets.hitlist_targets_v6, key=int)
    results = {}
    for neighborhood in (0, 4):
        matches = MacCorrelator(neighborhood=neighborhood).correlate(
            ctx.valid_v4, v6_targets
        )
        results[neighborhood] = evaluate_correlation(
            ctx.topology, matches, ctx.valid_v4, v6_targets
        )
    return results


def test_bench_ext_mac_correlation(benchmark, ctx):
    results = benchmark.pedantic(run, args=(ctx,), rounds=2, iterations=1)
    exact = results[0]
    fuzzy = results[4]
    print(f"\nEUI-64 addresses among v6 targets: {exact.eui64_v6_addresses}")
    print(f"exact matching: {exact.matches} pairs, precision {exact.precision:.2f}, "
          f"recall {exact.recall:.2f} over {exact.matchable_devices} matchable devices")
    print(f"neighbourhood=4: {fuzzy.matches} pairs, precision {fuzzy.precision:.2f} "
          f"(factory-consecutive MACs are different devices)")
    assert exact.precision == 1.0
    assert exact.matchable_devices > 0
    assert fuzzy.precision < exact.precision
