"""§5.4 — combined de-alias coverage of union router IPv4 addresses.

Paper: MIDAR alone 11.7%, SNMPv3 alone 14.8%, combined up to 23%."""

from repro.experiments import figures_alias as fa


def test_bench_sec54(benchmark, ctx, midar_sets):
    s54 = benchmark(fa.section54, ctx, midar_sets)
    c = s54.coverage
    print(f"\nrouter IPs: {c.total_router_ips}")
    print(f"SNMPv3-responsive: {s54.snmpv3_responsive_fraction:.1%} (paper: 16%)")
    print(f"de-aliased by MIDAR: {c.midar_fraction:.1%} (paper: 11.7%)")
    print(f"de-aliased by SNMPv3: {c.snmpv3_fraction:.1%} (paper: 14.8%)")
    print(f"combined: {c.combined_fraction:.1%} (paper: ~23%)")
    assert c.combined_fraction > c.midar_fraction
    assert c.combined_fraction > c.snmpv3_fraction
    assert 0.05 < c.combined_fraction < 0.45
