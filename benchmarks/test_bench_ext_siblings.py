"""EXT — §7.3 comparator: TCP-timestamp sibling detection vs SNMPv3
dual-stack aliasing.

The prior technique needs an open TCP port on both families, so it
centers on servers; SNMPv3 reaches the closed routers it cannot."""

from repro.alias.siblings import SiblingDetector, TcpTimestampOracle
from repro.topology.model import DeviceType


def run(ctx):
    detector = SiblingDetector(oracle=TcpTimestampOracle(ctx.topology))
    routers = untestable_routers = 0
    servers = sibling_hits = tested_servers = 0
    for device in ctx.topology.devices.values():
        if not device.is_dual_stack:
            continue
        pair = (device.ipv4_interfaces[0].address, device.ipv6_interfaces[0].address)
        verdict = detector.classify_pair(*pair)
        if device.device_type is DeviceType.ROUTER:
            routers += 1
            untestable_routers += verdict is None
        elif device.device_type is DeviceType.SERVER:
            servers += 1
            if verdict is not None:
                tested_servers += 1
                sibling_hits += verdict.is_sibling
    return routers, untestable_routers, servers, tested_servers, sibling_hits


def test_bench_ext_siblings(benchmark, ctx):
    routers, untestable, servers, tested, hits = benchmark.pedantic(
        run, args=(ctx,), rounds=2, iterations=1
    )
    print(f"\ndual-stack routers: {routers}, untestable by TCP timestamps: "
          f"{untestable} ({untestable / max(1, routers):.0%})")
    print(f"dual-stack servers: {servers}, tested {tested}, "
          f"classified sibling {hits}")
    snmp_dual = len(ctx.alias_dual.split_by_protocol()["dual"])
    print(f"SNMPv3 dual-stack sets (incl. routers): {snmp_dual}")
    assert untestable / max(1, routers) > 0.5   # routers are TCP-closed
    assert tested == 0 or hits / tested > 0.85  # but the method works on servers
