"""F16 — Figure 16: vendor mix of the top-10 networks by router count."""

from repro.experiments import figures_vendor as fv


def test_bench_fig16(benchmark, ctx):
    rows = benchmark(fv.figure16, ctx)
    print()
    for row in rows:
        mix = ", ".join(f"{v} {s:.0%}" for v, s in row.vendor_shares.items() if s > 0.01)
        print(f"{row.region.value}-{row.asn} ({row.router_count:>4} routers): {mix}")
    assert len(rows) == 10
    cisco_dominant = sum(1 for r in rows if r.dominant_vendor == "Cisco")
    assert cisco_dominant >= 5  # paper: 6 of 10
    assert all(r.router_count >= rows[-1].router_count for r in rows)
