"""LAB — §6.2.1: the controlled bench-router experiment."""

from repro.experiments.lab import default_lab, run_lab_experiment


def run_all():
    return [run_lab_experiment(router) for router in default_lab()]


def test_bench_lab(benchmark):
    reports = benchmark(run_all)
    print()
    for report in reports:
        print(f"{report.router}: v2c={report.v2c_works_after_config} "
              f"v3-implicit={report.v3_discovery_after_config} "
              f"mac-vendor={report.engine_mac_vendor} "
              f"first-iface={report.engine_mac_is_first_interface} "
              f"smallest-mac={report.engine_mac_is_smallest}")
    assert all(r.v3_discovery_after_config for r in reports)
    assert all(not r.answers_before_config for r in reports)
    assert all(r.engine_mac_is_first_interface and not r.engine_mac_is_smallest
               for r in reports)
