"""EXT — §8 recommendations, measured: what each mitigation costs the
attacker's view (responsive devices, MAC-fingerprintable vendors,
resolvable aliases)."""

from repro.experiments.remediation import remediation_experiment
from repro.topology.config import TopologyConfig


def run():
    return remediation_experiment(TopologyConfig.paper_scale(divisor=400, seed=2021))


def test_bench_ext_remediation(benchmark):
    experiment = benchmark.pedantic(run, rounds=2, iterations=1)
    print("\n" + experiment.render())
    baseline = experiment.outcomes["none"]
    assert experiment.outcomes["acl"].responsive_ips == 0
    assert experiment.outcomes["random-engine-id"].mac_identified_vendors == 0
    assert experiment.outcomes["explicit-v3"].reduction_vs(baseline) > 0.05
