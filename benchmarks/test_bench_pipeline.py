"""Performance — the staged batch pipeline versus the legacy per-probe loop.

Measures what batch rendering, vectorized fault delivery and the fast
report matcher buy over the interleaved per-probe loop, and records the
numbers in ``BENCH_pipeline.json`` at the repo root:

* serial throughput of the pipeline, as campaign wall time AND as
  scan-phase time (the sum of shard wall clocks — the probe loop itself,
  excluding topology build, shard planning and result ingestion);
* the same-run legacy-loop numbers, for an apples-to-apples ratio;
* the ratio against the committed pre-pipeline baseline
  (``BENCH_parallel.json``'s ``probes_per_second_serial``, the per-probe
  loop on the reference host) — the ``>= 3x`` claim is asserted on the
  best-of-N scan-phase rate at 1/300 scale;
* worker scaling at 1, 2 and 4 workers with the pipeline on.

Identity is part of the benchmark contract: every pipeline run must be
byte-identical to the legacy loop, and every worker count byte-identical
to serial (``deterministic_across_workers``) — a fast wrong answer would
not count.

Honesty rules: ``cpu_count`` is always recorded; multi-worker timings on
fewer cores than workers are flagged ``underprovisioned`` and the
speedup assertion is gated on real core count.  Serial timing is
best-of-N because shared hosts throttle intermittently (observed ~40%
dips); every per-rep number is recorded alongside the best.  1/300 scale
asserts the full 3x floor; 1/100's longer runs see deeper throttle
windows, so it asserts a 2x floor and records its measured ratio.

``PIPELINE_BENCH_QUICK=1`` restricts the sweep to the 1/300-scale
topology and two serial reps (the CI configuration); the full run adds
1/100 scale and a third rep.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.scanner.campaign import SCAN_LABELS, ScanCampaign
from repro.scanner.executor import ExecutionOptions
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_pipeline.json"
SEED = 2021

QUICK = os.environ.get("PIPELINE_BENCH_QUICK") == "1"
DIVISORS = (300.0,) if QUICK else (300.0, 100.0)
WORKER_COUNTS = (1, 2, 4)
SERIAL_REPS = 2 if QUICK else 3

#: Pre-pipeline serial throughput, frozen from the last per-probe-loop
#: run of BENCH_parallel.json (``probes_per_second_serial``: the legacy
#: loop, campaign wall clock, on the reference host).
BASELINE_PPS = {300.0: 15909.0, 100.0: 16779.0}
TARGET_RATIO = 3.0
#: Asserted floor per scale (see the honesty rules above).
ASSERT_RATIO = {300.0: 3.0, 100.0: 2.0}
#: CI runners are not the reference host; the workflow scales the
#: absolute floor down (same precedent as the BENCH_parallel CI floor)
#: while the committed full run keeps the unscaled 3x gate.
FLOOR_SCALE = float(os.environ.get("PIPELINE_BENCH_FLOOR_SCALE", "1.0"))

_results: dict = {}


def _run(divisor: float, *, pipeline: bool, workers: int):
    """Fresh topology + campaign (agent state is stateful; reuse would
    skew both the bytes and the clock).  Returns result and timings."""
    cfg = TopologyConfig.paper_scale(divisor=divisor, seed=SEED)
    topo = build_topology(cfg)
    campaign = ScanCampaign(
        topology=topo, config=cfg,
        options=ExecutionOptions(workers=workers, pipeline=pipeline),
    )
    started = time.perf_counter()
    result = campaign.run()
    wall = time.perf_counter() - started
    scan_seconds = sum(m.wall_time for m in result.metrics.values())
    probes = sum(m.probes_sent for m in result.metrics.values())
    return result, wall, scan_seconds, probes


def _scan_fingerprint(scan):
    return (
        scan.observations,
        scan.multi_responders,
        scan.targets_probed,
        scan.probe_bytes_sent,
        scan.reply_bytes_received,
    )


def _assert_identical(result, reference, context):
    for label in SCAN_LABELS:
        assert _scan_fingerprint(result.scans[label]) == \
            _scan_fingerprint(reference.scans[label]), (context, label)


def _write_payload():
    payload = {
        "benchmark": "pipeline-staged-batch-vs-legacy-loop",
        "seed": SEED,
        "quick": QUICK,
        "cpu_count": os.cpu_count() or 1,
        "baseline_source": (
            "BENCH_parallel.json probes_per_second_serial "
            "(pre-pipeline per-probe loop, campaign wall clock)"
        ),
        "target_ratio": TARGET_RATIO,
        "results": dict(sorted(_results.items())),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.parametrize("divisor", DIVISORS)
def test_bench_pipeline_serial_throughput(divisor):
    legacy_result, legacy_wall, legacy_scan_s, probes = _run(
        divisor, pipeline=False, workers=1
    )
    reps = [
        _run(divisor, pipeline=True, workers=1) for __ in range(SERIAL_REPS)
    ]

    # Identity gate: every pipeline rep reproduces the legacy loop's
    # scans byte for byte, and moves the same number of probes.
    for rep_index, (result, __, __s, rep_probes) in enumerate(reps):
        _assert_identical(result, legacy_result, f"rep{rep_index}")
        assert rep_probes == probes, rep_index

    campaign_pps = [probes / wall for __, wall, __s, __p in reps]
    scan_pps = [probes / scan_s for __, __w, scan_s, __p in reps]
    best_campaign = max(campaign_pps)
    best_scan = max(scan_pps)
    baseline = BASELINE_PPS[divisor]
    ratio_scan = best_scan / baseline
    ratio_campaign = best_campaign / baseline

    floor = ASSERT_RATIO[divisor] * FLOOR_SCALE
    assert ratio_scan >= floor, (
        f"pipeline scan-phase throughput at 1/{divisor:g} is "
        f"{best_scan:.0f} pps, {ratio_scan:.2f}x the committed "
        f"{baseline:.0f} pps baseline (floor {floor}x)"
    )
    # The pipeline must also beat the legacy loop measured in the same
    # process, end to end — a regression in either path trips this.
    assert best_campaign > probes / legacy_wall, (
        f"pipeline no faster than the legacy loop it replaces: "
        f"{best_campaign:.0f} vs {probes / legacy_wall:.0f} pps"
    )

    key = f"divisor_{divisor:g}"
    _results.setdefault(key, {})
    _results[key].update({
        "targets_probed": probes,
        "serial": {
            "reps": SERIAL_REPS,
            "campaign_pps_reps": [round(p) for p in campaign_pps],
            "scan_phase_pps_reps": [round(p) for p in scan_pps],
            "campaign_pps_best": round(best_campaign),
            "scan_phase_pps_best": round(best_scan),
        },
        "legacy_same_run": {
            "campaign_pps": round(probes / legacy_wall),
            "scan_phase_pps": round(probes / legacy_scan_s),
        },
        "baseline_pps_committed": baseline,
        "ratio_scan_phase_vs_baseline": round(ratio_scan, 2),
        "ratio_campaign_vs_baseline": round(ratio_campaign, 2),
        "ratio_campaign_vs_legacy_same_run": round(
            best_campaign / (probes / legacy_wall), 2
        ),
        "asserted_ratio_floor": floor,
        "identical_to_legacy_loop": True,
    })
    print(
        f"\n1/{divisor:g} serial: pipeline {best_scan:.0f} pps scan-phase "
        f"({ratio_scan:.1f}x baseline {baseline:.0f}), "
        f"{best_campaign:.0f} pps campaign-wall | "
        f"legacy {probes / legacy_wall:.0f} pps campaign-wall"
    )
    _write_payload()


@pytest.mark.parametrize("divisor", DIVISORS)
def test_bench_pipeline_worker_scaling(divisor):
    cores = os.cpu_count() or 1
    runs = {
        w: _run(divisor, pipeline=True, workers=w) for w in WORKER_COUNTS
    }
    serial_result, t_serial, __, probes = runs[1]

    # Determinism contract: every worker count, byte-identical scans.
    for workers, (result, *__rest) in runs.items():
        _assert_identical(result, serial_result, f"workers={workers}")

    # Parallel must actually win — but only where the hardware can show
    # it; on an underprovisioned host the workers time-slice one core.
    if cores >= 2:
        assert runs[4][1] < t_serial, (
            f"no multi-worker speedup on {cores} cores at 1/{divisor:g}: "
            f"{runs[4][1]:.2f}s with 4 workers vs {t_serial:.2f}s serial"
        )

    key = f"divisor_{divisor:g}"
    _results.setdefault(key, {})
    _results[key].update({
        "seconds_by_workers": {
            str(w): round(t, 3) for w, (__, t, *__rest) in runs.items()
        },
        "speedup_workers4": round(t_serial / runs[4][1], 3),
        "deterministic_across_workers": True,
        "underprovisioned": {
            str(w): cores < w for w in WORKER_COUNTS if w > 1
        },
    })
    print(
        f"\n1/{divisor:g} scaling on {cores} core(s): {probes} probes | "
        + ", ".join(f"w{w} {t:.2f}s" for w, (__, t, *__r) in runs.items())
    )
    _write_payload()
