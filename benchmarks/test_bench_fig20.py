"""F20 — Figure 20 (Appendix C): routers per AS per region."""

from repro.experiments import figures_vendor as fv
from repro.topology.model import Region


def test_bench_fig20(benchmark, ctx):
    f20 = benchmark(fv.figure20, ctx)
    print()
    for region, ecdf in sorted(f20.items(), key=lambda kv: kv[0].value):
        print(f"{region.value}: n={ecdf.count} ASes, median {ecdf.median:.0f}, "
              f"p90 {ecdf.quantile(0.9):.0f}, max {max(ecdf.values):.0f}")
    assert Region.EU in f20 and Region.NA in f20
    # Heavy-tailed in the big regions; the largest networks sit in EU/NA.
    for region in (Region.EU, Region.NA):
        assert max(f20[region].values) >= 3 * f20[region].median
