"""Ablation — leave-one-out over the §4.4 filters.

Skipping a filter admits more records; this bench quantifies what each
filter buys in alias precision (and what it costs in volume)."""

from repro.alias.snmpv3 import resolve_aliases
from repro.alias.sets import evaluate_against_truth
from repro.pipeline.filters import FilterPipeline


ABLATABLE = (
    "promiscuous-engine-id",
    "zero-time-or-boots",
    "inconsistent-boots",
    "inconsistent-reboot-time",
)


def sweep(ctx):
    truth = ctx.topology.true_alias_sets(4)
    scan1, scan2 = ctx.campaign.scan_pair(4)
    rows = {}
    baseline = FilterPipeline().run(scan1, scan2)
    sets = resolve_aliases(baseline.valid)
    rows["(none skipped)"] = (len(baseline.valid), evaluate_against_truth(sets, truth))
    for name in ABLATABLE:
        result = FilterPipeline(skip={name}).run(scan1, scan2)
        sets = resolve_aliases(result.valid)
        rows[name] = (len(result.valid), evaluate_against_truth(sets, truth))
    return rows


def test_bench_ablation_filters(benchmark, ctx):
    rows = benchmark(sweep, ctx)
    print()
    baseline_precision = rows["(none skipped)"][1].precision
    for name, (valid, ev) in rows.items():
        print(f"skip {name:<26} valid={valid:<7} precision={ev.precision:.4f} "
              f"recall={ev.recall:.4f}")
    assert baseline_precision > 0.99
    # Every ablation admits at least as many records as the full pipeline.
    assert all(valid >= rows["(none skipped)"][0] for valid, __ in rows.values())
