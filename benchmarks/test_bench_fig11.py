"""F11 — Figure 11: vendor popularity over all de-aliased devices."""

from repro.experiments import figures_vendor as fv


def test_bench_fig11(benchmark, ctx):
    f11 = benchmark(fv.figure11, ctx)
    print()
    for vendor, count in f11.top(10):
        by_proto = f11.by_protocol.get(vendor, {})
        print(f"{vendor:<14} {count:>7}  (v4 {by_proto.get('v4', 0)}, "
              f"v6 {by_proto.get('v6', 0)}, dual {by_proto.get('dual', 0)})")
    print(f"top-10 share: {f11.top_n_share(10):.0%}")
    top = [v for v, __ in f11.top(10)]
    assert set(top[:2]) == {"Net-SNMP", "Cisco"}     # paper's two leaders
    assert {"Broadcom", "Thomson", "Netgear"} <= set(top)
    assert f11.top_n_share(10) > 0.8                  # paper: top-10 >= 80%
