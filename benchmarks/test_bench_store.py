"""Performance — the persistent store: ingest rate, query latency, size.

Runs a multi-round campaign into a fresh store and records the numbers
in ``BENCH_store.json`` at the repo root:

* ingest throughput (observations per second, batch path);
* point-query latency (``history`` of one address, footer-index served)
  and timeline-query latency (full summary over every folded round),
  both measured before and after compaction;
* storage density: segment bytes per observation versus the JSONL
  export of the same rounds, asserting the >= 3x reduction the
  columnar format is there to provide.

``STORE_BENCH_QUICK=1`` restricts the sweep to a 1/1000-scale topology
and two rounds (the CI configuration); the full run uses 1/300 scale
and three rounds.
"""

import json
import os
import time
from pathlib import Path

from repro.io.exports import export_scan_jsonl
from repro.scanner.campaign import ScanCampaign
from repro.store import Store, StoreQuery
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_store.json"
SEED = 2021

QUICK = os.environ.get("STORE_BENCH_QUICK") == "1"
DIVISOR = 1000.0 if QUICK else 300.0
ROUNDS = 2 if QUICK else 3
QUERY_REPEATS = 25


def _timed(fn, repeats=1):
    started = time.perf_counter()
    for __ in range(repeats):
        result = fn()
    return result, (time.perf_counter() - started) / repeats


def test_bench_store(tmp_path):
    cfg = TopologyConfig.paper_scale(divisor=DIVISOR, seed=SEED)
    topo = build_topology(cfg)
    store = Store(root=tmp_path / "obs")

    # -- ingest ------------------------------------------------------------
    rows = 0
    ingest_seconds = 0.0
    results = []
    for __ in range(ROUNDS):
        # One campaign object per round against the same topology: agent
        # reboot/churn state persists, so rounds genuinely differ.
        result = ScanCampaign(topology=topo, config=cfg).run()
        results.append(result)
        started = time.perf_counter()
        stats = store.ingest_campaign(result)
        ingest_seconds += time.perf_counter() - started
        rows += sum(s.rows for s in stats)
    assert rows > 0

    # -- storage density vs JSONL ------------------------------------------
    jsonl_bytes = 0
    for index, result in enumerate(results):
        for label, scan in result.scans.items():
            path = tmp_path / f"r{index}-{label}.jsonl"
            export_scan_jsonl(scan, path)
            jsonl_bytes += path.stat().st_size
    segment_bytes = store.stats()["segment_bytes"]
    assert segment_bytes * 3 <= jsonl_bytes, (
        f"segment format not >=3x smaller than JSONL: "
        f"{segment_bytes} vs {jsonl_bytes} bytes"
    )

    # -- query latency, before and after compaction ------------------------
    target = next(iter(store.observations())).observation.address
    query = StoreQuery(store=store)

    history, t_point = _timed(lambda: query.history(target), QUERY_REPEATS)
    assert history
    summary, t_timeline = _timed(query.timeline_summary, QUERY_REPEATS)
    assert summary["rounds"] == list(range(1, ROUNDS + 1))

    __, t_compact = _timed(store.compact)
    history_after, t_point_after = _timed(
        lambda: query.history(target), QUERY_REPEATS
    )
    assert history_after == history
    __, t_timeline_after = _timed(query.timeline_summary, QUERY_REPEATS)

    payload = {
        "benchmark": "store-ingest-query-density",
        "seed": SEED,
        "quick": QUICK,
        "scale_divisor": DIVISOR,
        "rounds": ROUNDS,
        "observations": rows,
        "ingest_seconds": round(ingest_seconds, 3),
        "ingest_observations_per_second": round(rows / ingest_seconds),
        "point_query_seconds": round(t_point, 6),
        "point_query_seconds_after_compact": round(t_point_after, 6),
        "timeline_query_seconds": round(t_timeline, 6),
        "timeline_query_seconds_after_compact": round(t_timeline_after, 6),
        "compact_seconds": round(t_compact, 3),
        "segment_bytes": segment_bytes,
        "jsonl_bytes": jsonl_bytes,
        "segment_bytes_per_observation": round(segment_bytes / rows, 1),
        "jsonl_bytes_per_observation": round(jsonl_bytes / rows, 1),
        "density_vs_jsonl": round(jsonl_bytes / segment_bytes, 2),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nstore bench 1/{DIVISOR:g} x{ROUNDS} rounds: {rows} rows | "
          f"ingest {rows / ingest_seconds:.0f} rows/s | "
          f"point {t_point * 1e6:.0f}us, timeline {t_timeline * 1e3:.1f}ms | "
          f"{segment_bytes / rows:.0f} B/row vs JSONL "
          f"{jsonl_bytes / rows:.0f} B/row ({jsonl_bytes / segment_bytes:.1f}x)")
