"""Performance — the parallel scan path: pool reuse, compact IPC, scaling.

Measures what the persistent worker pool and the columnar wire format
actually buy, and records the numbers in ``BENCH_parallel.json`` at the
repo root:

* campaign wall time at 1, 2 and 4 workers (one pool fork per campaign);
* IPC bytes per observation for the columnar format versus per-instance
  pickling (the old ``pool.imap`` cost), asserting the >= 3x reduction;
* serial throughput (``probes_per_second_serial`` — the CI regression
  floor reads this);
* determinism: every worker count produces byte-identical scans.

Honesty rules: ``cpu_count`` is always recorded, and any multi-worker
timing taken on fewer cores than workers is flagged
``underprovisioned`` — on such hosts workers time-slice one core and the
wall-time comparison is meaningless, so the parallel<=serial assertion
is gated on real core count.

``PARALLEL_BENCH_QUICK=1`` restricts the sweep to the 1/300-scale
topology (the CI configuration); the full run adds 1/100 scale.
"""

import json
import os
import pickle
import time
from pathlib import Path

import pytest

from repro.scanner.campaign import SCAN_LABELS, ScanCampaign
from repro.scanner.executor import ExecutionOptions
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_parallel.json"
SEED = 2021

QUICK = os.environ.get("PARALLEL_BENCH_QUICK") == "1"
DIVISORS = (300.0,) if QUICK else (300.0, 100.0)
WORKER_COUNTS = (1, 2, 4)

_results: dict = {}


def _run_campaign(divisor: float, workers: int):
    """Fresh topology + campaign; returns (result, scan wall time)."""
    cfg = TopologyConfig.paper_scale(divisor=divisor, seed=SEED)
    topo = build_topology(cfg)
    campaign = ScanCampaign(
        topology=topo, config=cfg, options=ExecutionOptions(workers=workers)
    )
    started = time.perf_counter()
    result = campaign.run()
    return result, time.perf_counter() - started


def _scan_fingerprint(scan):
    return (
        scan.observations,
        scan.multi_responders,
        scan.targets_probed,
        scan.probe_bytes_sent,
        scan.reply_bytes_received,
    )


@pytest.mark.parametrize("divisor", DIVISORS)
def test_bench_parallel_scanning(divisor):
    cores = os.cpu_count() or 1
    runs = {w: _run_campaign(divisor, w) for w in WORKER_COUNTS}
    serial_result, t_serial = runs[1]

    # Determinism contract: every worker count, byte-identical scans.
    for workers, (result, __) in runs.items():
        for label in SCAN_LABELS:
            assert _scan_fingerprint(result.scans[label]) == \
                _scan_fingerprint(serial_result.scans[label]), (workers, label)

    probes = sum(m.probes_sent for m in serial_result.metrics.values())
    observations = sum(
        m.observations for m in serial_result.metrics.values()
    )

    # IPC compaction: columnar batches versus the per-instance pickling
    # the old pool.imap path paid for every observation.
    parallel_result = runs[4][0]
    ipc_bytes = sum(m.ipc_bytes for m in parallel_result.metrics.values())
    pickled_bytes = sum(
        len(pickle.dumps(obs))
        for scan in serial_result.scans.values()
        for obs in scan.observations.values()
    )
    assert ipc_bytes > 0
    assert ipc_bytes * 3 <= pickled_bytes, (
        f"columnar IPC not >=3x smaller than per-instance pickle: "
        f"{ipc_bytes} vs {pickled_bytes} bytes"
    )

    timings = {w: round(t, 3) for w, (__, t) in runs.items()}
    # Parallel must actually win — but only where the hardware can show
    # it; on an underprovisioned host the workers time-slice one core.
    if cores >= 2:
        assert runs[4][1] <= t_serial, (
            f"4 workers slower than serial on {cores} cores at "
            f"1/{divisor:g}: {runs[4][1]:.2f}s vs {t_serial:.2f}s"
        )

    key = f"divisor_{divisor:g}"
    _results[key] = {
        "targets_probed": probes,
        "observations": observations,
        "seconds_by_workers": {str(w): t for w, t in timings.items()},
        "speedup_workers4": round(t_serial / runs[4][1], 3),
        "probes_per_second_serial": round(probes / t_serial),
        "ipc_bytes_workers4": ipc_bytes,
        "ipc_bytes_per_observation": round(ipc_bytes / max(1, observations), 1),
        "pickle_bytes_per_observation": round(
            pickled_bytes / max(1, observations), 1
        ),
        "ipc_reduction_vs_pickle": round(pickled_bytes / ipc_bytes, 2),
        "deterministic_across_workers": True,
        "underprovisioned": {
            str(w): cores < w for w in WORKER_COUNTS if w > 1
        },
    }
    print(f"\n1/{divisor:g} scale on {cores} core(s): {probes} probes | "
          + ", ".join(f"w{w} {t:.2f}s" for w, t in timings.items())
          + f" | IPC {ipc_bytes / max(1, observations):.0f} B/obs "
          f"(pickle {pickled_bytes / max(1, observations):.0f} B/obs, "
          f"{pickled_bytes / ipc_bytes:.1f}x)")

    payload = {
        "benchmark": "parallel-scan-pool-and-ipc",
        "seed": SEED,
        "quick": QUICK,
        "cpu_count": cores,
        "results": dict(sorted(_results.items())),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
