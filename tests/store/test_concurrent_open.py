"""Racing ``Store.open`` / ``refresh`` against concurrent manifest swaps."""

import json
import threading

import pytest

from repro.store import Store, StoreError
from repro.store.store import MANIFEST_NAME

from .conftest import make_obs, make_scan


def _populate(root, *, rounds=2, parts=3):
    """A store whose scans have multiple parts, so ``compact()`` rewrites."""
    store = Store(root=root, segment_rows=4)
    for round_id in range(1, rounds + 1):
        base = 10_000.0 * round_id
        observations = [
            make_obs(f"10.{round_id}.0.{n + 1}", base + n, None)
            for n in range(4 * parts)
        ]
        store.ingest_result(
            make_scan("s-1", base, observations), round_id=round_id
        )
    return store


class TestConcurrentOpen:
    def test_open_races_compact(self, tmp_path):
        """Openers during repeated ingest+compact never see a torn store."""
        root = tmp_path / "store"
        writer = _populate(root)
        stop = threading.Event()
        failures: list[BaseException] = []

        def opener():
            while not stop.is_set():
                try:
                    store = Store.open(root)
                    rounds = store.rounds()
                    assert rounds == sorted(rounds)
                    for rid in rounds:
                        assert store.labels(rid)
                except BaseException as error:  # noqa: BLE001 - collected
                    failures.append(error)
                    return

        threads = [threading.Thread(target=opener) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            next_round = writer.next_round_id()
            for _ in range(12):
                base = 10_000.0 * next_round
                observations = [
                    make_obs(f"10.{next_round % 200}.1.{n + 1}", base + n, None)
                    for n in range(12)
                ]
                writer.ingest_result(
                    make_scan("s-1", base, observations), round_id=next_round
                )
                next_round += 1
                writer.compact()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures, failures

    def test_load_manifest_retries_through_enoent_window(self, tmp_path):
        """A briefly-missing manifest is re-read, not a crash."""
        root = tmp_path / "store"
        store = _populate(root, rounds=1, parts=1)
        manifest_path = root / MANIFEST_NAME
        text = manifest_path.read_text(encoding="utf-8")
        manifest_path.unlink()

        def restore():
            manifest_path.write_text(text, encoding="utf-8")

        timer = threading.Timer(0.002, restore)
        timer.start()
        try:
            assert store.refresh() is False
        finally:
            timer.cancel()
            timer.join()

    def test_load_manifest_gives_up_after_bounded_retries(self, tmp_path):
        root = tmp_path / "store"
        store = _populate(root, rounds=1, parts=1)
        (root / MANIFEST_NAME).unlink()
        with pytest.raises(StoreError, match="unreadable"):
            store.refresh()

    def test_refresh_adopts_concurrent_writes(self, tmp_path):
        root = tmp_path / "store"
        writer = _populate(root, rounds=1)
        reader = Store.open(root)
        generation = reader.generation
        assert reader.refresh() is False

        base = 20_000.0
        observations = [make_obs(f"10.2.0.{n + 1}", base + n, None) for n in range(6)]
        writer.ingest_result(make_scan("s-1", base, observations), round_id=2)
        writer.compact()

        assert reader.refresh() is True
        assert reader.generation > generation
        assert reader.rounds() == [1, 2]
        # The adopted catalogue is fully readable (no stale readers).
        total = sum(1 for _ in reader.observations())
        assert total == sum(1 for _ in writer.observations())

    def test_exclusive_create_does_not_clobber(self, tmp_path):
        root = tmp_path / "store"
        writer = _populate(root, rounds=1)
        manifest = json.loads((root / MANIFEST_NAME).read_text(encoding="utf-8"))
        # A second opener of the same root adopts, never resets, the state.
        other = Store.open(root)
        assert other.generation == manifest["generation"]
        assert other.rounds() == writer.rounds()
