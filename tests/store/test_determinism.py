"""Determinism contract: segment bytes never depend on the ingest path."""

from repro.scanner.campaign import ScanCampaign
from repro.store import Store
from repro.store.segment import segment_fingerprint
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology


def ingest_campaign(root, *, seed, workers, streaming=False):
    """Run one tiny campaign into a fresh store; return its fingerprint."""
    cfg = TopologyConfig.tiny(seed=seed)
    topo = build_topology(cfg)
    campaign = ScanCampaign(topology=topo, config=cfg, workers=workers)
    store = Store(root=root)
    if streaming:
        for stream in campaign.run_streaming():
            store.ingest_stream(stream, round_id=1)
    else:
        store.ingest_campaign(campaign.run(), round_id=1)
    paths = [
        path
        for round_id in store.rounds()
        for label in store.labels(round_id)
        for path in store.segment_paths(round_id, label)
    ]
    return store, segment_fingerprint(paths)


class TestWorkerCountInvariance:
    def test_serial_vs_two_workers_byte_identical(self, tmp_path):
        """Same config + seed -> byte-identical segments at any worker count."""
        __, fp_serial = ingest_campaign(tmp_path / "serial", seed=33, workers=1)
        __, fp_pool = ingest_campaign(tmp_path / "pool", seed=33, workers=2)
        assert fp_serial == fp_pool

    def test_different_seed_differs(self, tmp_path):
        __, fp_a = ingest_campaign(tmp_path / "a", seed=33, workers=1)
        __, fp_b = ingest_campaign(tmp_path / "b", seed=34, workers=1)
        assert fp_a != fp_b


class TestIngestPathInvariance:
    def test_result_vs_stream_byte_identical(self, tmp_path):
        """Batch ingest and streaming ingest write identical segments."""
        store_r, fp_result = ingest_campaign(
            tmp_path / "result", seed=21, workers=1
        )
        store_s, fp_stream = ingest_campaign(
            tmp_path / "stream", seed=21, workers=1, streaming=True
        )
        assert fp_result == fp_stream
        # The streamed path back-fills targets_probed from metrics.
        for label in store_r.labels(1):
            assert (
                store_r.scan_info(1, label)["targets_probed"]
                == store_s.scan_info(1, label)["targets_probed"]
            )

    def test_segment_rows_change_bytes_not_answers(self, tmp_path):
        """Part sizing is a layout knob: bytes differ, answers don't."""
        cfg = TopologyConfig.tiny(seed=21)
        topo = build_topology(cfg)
        result = ScanCampaign(topology=topo, config=cfg).run()

        big = Store(root=tmp_path / "big")
        small = Store(root=tmp_path / "small", segment_rows=8)
        big.ingest_campaign(result, round_id=1)
        small.ingest_campaign(result, round_id=1)

        assert [s.observation for s in big.observations()] == [
            s.observation for s in small.observations()
        ]
        for label in big.labels(1):
            assert (
                big.scan_result(1, label).observations
                == small.scan_result(1, label).observations
            )
