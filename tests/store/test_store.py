"""Store catalogue semantics: ingest, dedup, persistence, JSONL interchange."""

import ipaddress
import json

import pytest

from repro.io.exports import export_scan_jsonl, load_scan_jsonl
from repro.store import Store, StoreError

from tests.store.conftest import make_engine, make_obs, make_scan


def small_round(store, round_id=1):
    scan1 = make_scan("v4-1", 1000.0, [
        make_obs("10.0.0.1", 1001.0, make_engine(1), boots=2, engine_time=100),
        make_obs("10.0.0.2", 1002.0, make_engine(2), boots=1, engine_time=200),
        make_obs("10.0.0.9", 1003.0, None),
    ])
    scan2 = make_scan("v4-2", 2000.0, [
        make_obs("10.0.0.1", 2001.0, make_engine(1), boots=2, engine_time=1100),
        make_obs("10.0.0.2", 2002.0, make_engine(2), boots=1, engine_time=1200),
    ])
    store.ingest_result(scan1, round_id=round_id)
    store.ingest_result(scan2, round_id=round_id)
    return scan1, scan2


class TestIngest:
    def test_catalogue_and_rebuild(self, tmp_path):
        store = Store(root=tmp_path / "s")
        scan1, scan2 = small_round(store)
        assert store.rounds() == [1]
        assert store.labels(1) == ["v4-1", "v4-2"]
        rebuilt = store.scan_result(1, "v4-1")
        assert rebuilt.observations == scan1.observations
        assert rebuilt.targets_probed == scan1.targets_probed
        assert rebuilt.started_at == scan1.started_at
        assert rebuilt.finished_at == scan1.finished_at

    def test_reingest_same_scan_rejected(self, tmp_path):
        store = Store(root=tmp_path / "s")
        scan1, __ = small_round(store)
        with pytest.raises(StoreError, match="already ingested"):
            store.ingest_result(scan1, round_id=1)

    def test_duplicate_addresses_keep_first(self, tmp_path):
        store = Store(root=tmp_path / "s")
        rows = [
            make_obs("10.0.0.1", 1.0, make_engine(1), boots=1),
            make_obs("10.0.0.1", 2.0, make_engine(9), boots=9),
            make_obs("10.0.0.2", 3.0, make_engine(2)),
        ]
        stats = store.ingest_scan(
            rows, round_id=1, label="v4-1", ip_version=4, started_at=0.0
        )
        assert stats.rows == 2
        stored = [s.observation for s in store.observations()]
        assert stored == [rows[0], rows[2]]

    def test_empty_scan_still_recorded(self, tmp_path):
        store = Store(root=tmp_path / "s")
        stats = store.ingest_scan(
            [], round_id=1, label="v6-1", ip_version=6, started_at=5.0
        )
        assert stats.rows == 0
        assert stats.segments == 1
        assert store.labels(1) == ["v6-1"]
        assert list(store.observations()) == []

    def test_multi_part_split(self, tmp_path):
        store = Store(root=tmp_path / "s", segment_rows=3)
        rows = [make_obs(f"10.0.0.{i}", float(i), make_engine(i))
                for i in range(1, 9)]
        stats = store.ingest_scan(
            rows, round_id=1, label="v4-1", ip_version=4, started_at=0.0
        )
        assert stats.segments == 3
        assert [s.observation for s in store.observations()] == rows

    def test_campaign_ingest_orders_by_schedule(self, tmp_path):
        from repro.scanner.campaign import CampaignResult

        store = Store(root=tmp_path / "s")
        result = CampaignResult()
        result.scans["v4-1"] = make_scan("v4-1", 3000.0, [])
        result.scans["v6-1"] = make_scan("v6-1", 1000.0, [])
        stats = store.ingest_campaign(result)
        assert [s.label for s in stats] == ["v6-1", "v4-1"]
        assert store.labels(1) == ["v6-1", "v4-1"]


class TestPersistence:
    def test_reopen_sees_everything(self, tmp_path):
        root = tmp_path / "s"
        store = Store(root=root)
        small_round(store)
        reopened = Store.open(root)
        assert reopened.rounds() == [1]
        assert [s.observation for s in reopened.observations()] == \
            [s.observation for s in store.observations()]

    def test_manifest_is_canonical_json(self, tmp_path):
        store = Store(root=tmp_path / "s")
        small_round(store)
        manifest = (tmp_path / "s" / "MANIFEST.json").read_text()
        parsed = json.loads(manifest)
        assert manifest == json.dumps(parsed, sort_keys=True, indent=2) + "\n"
        assert parsed["format"] == "repro-store"

    def test_foreign_directory_rejected(self, tmp_path):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "MANIFEST.json").write_text('{"format": "something-else"}')
        with pytest.raises(StoreError):
            Store(root=bad)

    def test_history_across_rounds(self, tmp_path):
        store = Store(root=tmp_path / "s", segment_rows=2)
        small_round(store, round_id=1)
        small_round(store, round_id=2)
        history = store.history(ipaddress.ip_address("10.0.0.1"))
        assert [(s.round_id, s.label) for s in history] == [
            (1, "v4-1"), (1, "v4-2"), (2, "v4-1"), (2, "v4-2"),
        ]

    def test_stats_shape(self, tmp_path):
        store = Store(root=tmp_path / "s")
        small_round(store)
        stats = store.stats()
        assert stats["rounds"] == 1
        assert stats["rows"] == 5
        assert stats["segments"] == 2
        assert stats["segment_bytes"] > 0
        assert stats["per_round"]["1"]["scans"] == 2


class TestJsonlInterchange:
    def test_roundtrip_jsonl_store_jsonl(self, tmp_path):
        """JSONL -> store -> JSONL is byte-identical for sorted exports."""
        scan = make_scan("v4-1", 1000.0, [
            make_obs("10.0.0.5", 1001.0, make_engine(5), boots=3,
                     engine_time=77, responses=2),
            make_obs("10.0.0.1", 1002.0, make_engine(1)),
            make_obs("10.0.0.3", 1003.0, None),
        ])
        original = tmp_path / "scan.jsonl"
        export_scan_jsonl(scan, original)

        store = Store(root=tmp_path / "s")
        stats = store.import_jsonl(original, round_id=4)
        assert stats.rows == 3
        assert stats.label == "v4-1"

        exported = tmp_path / "back.jsonl"
        assert store.export_jsonl(4, "v4-1", exported) == 3
        assert exported.read_bytes() == original.read_bytes()

    def test_import_label_override(self, tmp_path):
        scan = make_scan("v4-1", 1000.0, [make_obs("10.0.0.1", 1.0, None)])
        path = tmp_path / "scan.jsonl"
        export_scan_jsonl(scan, path)
        store = Store(root=tmp_path / "s")
        store.import_jsonl(path, round_id=1, label="renamed")
        assert store.labels(1) == ["renamed"]

    def test_loaders_read_reexported_scan(self, tmp_path):
        scan = make_scan("v6-1", 500.0, [
            make_obs("2001:db8::1", 501.0, make_engine(9)),
        ], ip_version=6)
        path = tmp_path / "scan.jsonl"
        export_scan_jsonl(scan, path)
        store = Store(root=tmp_path / "s")
        store.import_jsonl(path, round_id=1)
        out = tmp_path / "out.jsonl"
        store.export_jsonl(1, "v6-1", out)
        loaded = load_scan_jsonl(out)
        assert loaded.observations == scan.observations
        assert loaded.label == scan.label
