"""StoreQuery and StoreIndex: inverted lookups, censuses, timeline views."""

import ipaddress

import pytest

from repro.snmp.engine_id import EngineId
from repro.store import Store, StoreQuery
from repro.store.index import NO_ENTERPRISE

from tests.store.conftest import make_engine, make_obs


@pytest.fixture()
def populated(tmp_path, three_rounds):
    store = Store(root=tmp_path / "s")
    for round_id, scans in three_rounds:
        for label, started_at, observations in scans:
            store.ingest_scan(
                observations,
                round_id=round_id,
                label=label,
                ip_version=4,
                started_at=started_at,
            )
    return store, StoreQuery(store=store)


class TestPointQueries:
    def test_history_accepts_strings(self, populated):
        __, query = populated
        by_str = query.history("10.0.0.1")
        by_obj = query.history(ipaddress.ip_address("10.0.0.1"))
        assert by_str == by_obj
        assert [(s.round_id, s.label) for s in by_str] == [
            (1, "s-1"), (1, "s-2"), (2, "s-1"), (2, "s-2"),
        ]

    def test_ips_with_engine_id_forms(self, populated):
        __, query = populated
        b = make_engine(2)
        expected = [
            ipaddress.ip_address("10.0.0.2"),
            ipaddress.ip_address("10.0.0.3"),
        ]
        assert query.ips_with_engine_id(b) == expected
        assert query.ips_with_engine_id(b.raw) == expected
        assert query.ips_with_engine_id(b.raw.hex()) == expected
        assert query.ips_with_engine_id("0x" + b.raw.hex()) == expected

    def test_unknown_engine_is_empty(self, populated):
        __, query = populated
        assert query.ips_with_engine_id(make_engine(99)) == []

    def test_engine_ids_sorted(self, populated):
        __, query = populated
        expected = sorted(make_engine(tag).raw for tag in (1, 2, 3))
        assert query.engine_ids() == expected


class TestCensuses:
    def test_device_count(self, populated):
        __, query = populated
        assert query.device_count == 3

    def test_vendor_census(self, populated):
        __, query = populated
        census = dict(query.vendor_census())
        # Conftest engines use the Cisco enterprise number (9).
        assert sum(census.values()) == 3
        assert census.get("Cisco") == 3

    def test_enterprise_and_oui_census(self, populated):
        __, query = populated
        enterprise = dict(query.enterprise_census())
        assert enterprise == {9: 3}
        # Conftest MACs use the unassigned 00:00:00 OUI — no census entry.
        assert query.oui_census() == []

    def test_known_oui_counted(self, tmp_path):
        store = Store(root=tmp_path / "s")
        cisco = EngineId(b"\x80\x00\x00\x09\x03" + bytes.fromhex("00000c000001"))
        store.ingest_scan(
            [make_obs("10.0.0.1", 1.0, cisco)],
            round_id=1, label="s-1", ip_version=4, started_at=0.0,
        )
        assert StoreQuery(store=store).oui_census() == [("Cisco", 1)]

    def test_anonymous_rows_not_devices(self, tmp_path):
        store = Store(root=tmp_path / "s")
        store.ingest_scan(
            [make_obs("10.0.0.1", 1.0, None)],
            round_id=1, label="s-1", ip_version=4, started_at=0.0,
        )
        query = StoreQuery(store=store)
        assert query.device_count == 0
        assert query.engine_ids() == []

    def test_unparseable_engine_bucketed(self, tmp_path):
        store = Store(root=tmp_path / "s")
        weird = EngineId(b"\x00\x01\x02\x03\x04\x05")
        store.ingest_scan(
            [make_obs("10.0.0.1", 1.0, weird)],
            round_id=1, label="s-1", ip_version=4, started_at=0.0,
        )
        index = store.index()
        assert NO_ENTERPRISE in index.devices_by_enterprise \
            or index.devices_by_enterprise


class TestIndexMaintenance:
    def test_index_cached_until_ingest(self, populated):
        store, query = populated
        first = store.index()
        assert store.index() is first
        store.ingest_scan(
            [make_obs("10.0.9.9", 40_000.0, make_engine(9))],
            round_id=9, label="s-1", ip_version=4, started_at=40_000.0,
        )
        rebuilt = store.index()
        assert rebuilt is not first
        assert make_engine(9).raw in rebuilt.engine_to_ips

    def test_rows_indexed_matches_store(self, populated):
        store, __ = populated
        assert store.index().rows_indexed == store.stats()["rows"]


class TestTimelineViews:
    def test_timeline_lookup(self, populated):
        __, query = populated
        timeline = query.timeline(make_engine(1))
        assert timeline is not None
        assert timeline.first_round == 1
        assert timeline.last_round == 2
        assert query.timeline(make_engine(42)) is None

    def test_round_summary(self, populated):
        __, query = populated
        summary = query.round_summary(2)
        assert summary["round"] == 2
        assert set(summary["scans"]) == {"s-1", "s-2"}
        assert summary["scans"]["s-1"]["rows"] == 3

    def test_timeline_summary_is_json_safe(self, populated):
        import json

        __, query = populated
        assert json.dumps(query.timeline_summary())
