"""Segment file format: round trips, footer pruning, corruption handling."""

import ipaddress
import struct

import pytest

from repro.store.segment import (
    SegmentError,
    SegmentMeta,
    SegmentReader,
    iter_segment,
    read_segment_meta,
    segment_fingerprint,
    write_segment,
)

from tests.store.conftest import make_engine, make_obs

META = SegmentMeta(
    round_id=3, label="v4-1", ip_version=4, started_at=1234.5, part=0
)


def sample_rows(n=10):
    return [
        make_obs(
            f"10.1.{i // 250}.{i % 250 + 1}",
            1000.0 + i,
            make_engine(i) if i % 3 else None,
            boots=i,
            engine_time=i * 7,
        )
        for i in range(n)
    ]


class TestRoundTrip:
    def test_rows_and_meta_survive(self, tmp_path):
        path = tmp_path / "a.seg"
        rows = sample_rows(25)
        assert write_segment(path, META, rows, block_rows=8) == 25
        assert read_segment_meta(path) == META
        assert list(iter_segment(path)) == rows

    def test_empty_segment_is_valid(self, tmp_path):
        path = tmp_path / "empty.seg"
        assert write_segment(path, META, []) == 0
        reader = SegmentReader(path)
        assert reader.rows == 0
        assert list(reader.observations()) == []
        assert reader.lookup(ipaddress.ip_address("10.1.0.1")) is None

    def test_ipv6_and_malformed_rows(self, tmp_path):
        path = tmp_path / "v6.seg"
        rows = [
            make_obs("2001:db8::1", 10.0, make_engine(1)),
            make_obs("2001:db8::2", 11.0, None),
        ]
        write_segment(path, META, rows)
        assert list(iter_segment(path)) == rows

    def test_block_chunking_invisible_to_readers(self, tmp_path):
        rows = sample_rows(30)
        small, large = tmp_path / "s.seg", tmp_path / "l.seg"
        write_segment(small, META, rows, block_rows=4)
        write_segment(large, META, rows, block_rows=1000)
        assert list(iter_segment(small)) == list(iter_segment(large))
        assert len(SegmentReader(small).blocks) == 8
        assert len(SegmentReader(large).blocks) == 1

    def test_deterministic_bytes(self, tmp_path):
        rows = sample_rows(17)
        p1, p2 = tmp_path / "1.seg", tmp_path / "2.seg"
        write_segment(p1, META, rows, block_rows=5)
        write_segment(p2, META, iter(rows), block_rows=5)
        assert p1.read_bytes() == p2.read_bytes()
        assert segment_fingerprint([p1]) == segment_fingerprint([p2])


class TestFooterIndex:
    def test_lookup_prunes_blocks(self, tmp_path):
        path = tmp_path / "a.seg"
        rows = sample_rows(40)
        write_segment(path, META, rows, block_rows=10)
        reader = SegmentReader(path)
        for row in rows:
            assert reader.lookup(row.address) == row
        assert reader.lookup(ipaddress.ip_address("203.0.113.1")) is None

    def test_footer_ranges_cover_blocks(self, tmp_path):
        path = tmp_path / "a.seg"
        write_segment(path, META, sample_rows(23), block_rows=10)
        reader = SegmentReader(path)
        assert [b.rows for b in reader.blocks] == [10, 10, 3]
        for block in reader.blocks:
            decoded = reader.read_block(block)
            addresses = [int(o.address) for o in decoded]
            assert block.min_address == min(addresses)
            assert block.max_address == max(addresses)


class TestCorruption:
    def test_not_a_segment(self, tmp_path):
        path = tmp_path / "junk.seg"
        path.write_bytes(b"not a segment at all")
        with pytest.raises(SegmentError):
            SegmentReader(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "v.seg"
        write_segment(path, META, sample_rows(3))
        data = bytearray(path.read_bytes())
        data[4] = 99
        path.write_bytes(bytes(data))
        with pytest.raises(SegmentError):
            SegmentReader(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "t.seg"
        write_segment(path, META, sample_rows(6))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SegmentError):
            SegmentReader(path)

    def test_bad_end_magic(self, tmp_path):
        path = tmp_path / "m.seg"
        write_segment(path, META, sample_rows(3))
        data = bytearray(path.read_bytes())
        data[-4:] = b"XXXX"
        path.write_bytes(bytes(data))
        with pytest.raises(SegmentError):
            SegmentReader(path)

    def test_footer_overrun(self, tmp_path):
        path = tmp_path / "f.seg"
        write_segment(path, META, sample_rows(3))
        data = bytearray(path.read_bytes())
        # Claim a footer longer than the file.
        data[-8:-4] = struct.pack("<I", 1 << 20)
        path.write_bytes(bytes(data))
        with pytest.raises(SegmentError):
            SegmentReader(path)

    def test_bad_block_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_segment(tmp_path / "x.seg", META, [], block_rows=0)
