"""Compaction: bytes on disk change, no query or timeline answer does."""

import ipaddress

import pytest

from repro.store import Store
from repro.store.query import StoreQuery
from repro.store.segment import segment_fingerprint

from tests.store.conftest import random_rounds


def build_store(root, corpus, *, segment_rows):
    """Ingest a corpus with tiny parts so compaction has work to do."""
    store = Store(root=root, segment_rows=segment_rows)
    for round_id, scans in corpus:
        for label, started_at, observations in scans:
            store.ingest_scan(
                observations,
                round_id=round_id,
                label=label,
                ip_version=4,
                started_at=started_at,
            )
    return store


def all_answers(store):
    """Every externally visible answer, as one comparable structure."""
    query = StoreQuery(store=store)
    addresses = sorted(
        {s.observation.address for s in store.observations()}, key=int
    )
    return {
        "rounds": store.rounds(),
        "labels": {r: store.labels(r) for r in store.rounds()},
        "observations": [
            (s.round_id, s.label, s.observation) for s in store.observations()
        ],
        "history": {
            str(a): [
                (s.round_id, s.label, s.observation) for s in store.history(a)
            ]
            for a in addresses
        },
        "vendor_census": query.vendor_census(),
        "engine_ids": query.engine_ids(),
        "reboot_events": query.reboot_events(),
        "alias_diffs": [
            (d.prev_round, d.next_round, d.born, d.died, d.moved)
            for d in query.alias_diffs()
        ],
        "uptimes": query.uptime_ecdf_inputs(),
        "timeline_summary": query.timeline_summary(),
    }


def fingerprint(store):
    paths = [
        p
        for r in store.rounds()
        for label in store.labels(r)
        for p in store.segment_paths(r, label)
    ]
    return segment_fingerprint(paths)


class TestCompactInvariance:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("segment_rows", [3, 7])
    def test_answers_identical_bytes_not(self, tmp_path, seed, segment_rows):
        """Property: for random corpora and part sizes, compaction is
        invisible to every query and timeline answer."""
        corpus = random_rounds(seed, rounds=3, devices=10)
        store = build_store(tmp_path / "s", corpus, segment_rows=segment_rows)

        before_answers = all_answers(store)
        before_fp = fingerprint(store)
        before_segments = store.stats()["segments"]

        stats = store.compact()
        assert stats.segments_before == before_segments
        assert stats.segments_after < stats.segments_before
        assert stats.scans_compacted > 0

        assert fingerprint(store) != before_fp
        assert all_answers(store) == before_answers

        # A reopened store agrees too: the swap was durable.
        reopened = Store.open(tmp_path / "s")
        assert all_answers(reopened) == before_answers

    def test_compact_is_idempotent(self, tmp_path):
        corpus = random_rounds(3, rounds=2, devices=8)
        store = build_store(tmp_path / "s", corpus, segment_rows=4)
        store.compact()
        answers = all_answers(store)
        fp = fingerprint(store)
        second = store.compact()
        assert second.scans_compacted == 0
        assert fingerprint(store) == fp
        assert all_answers(store) == answers

    def test_obsolete_segments_deleted(self, tmp_path):
        corpus = random_rounds(1, rounds=2, devices=8)
        store = build_store(tmp_path / "s", corpus, segment_rows=3)
        segment_dir = tmp_path / "s" / "segments"
        before = {p.name for p in segment_dir.iterdir()}
        store.compact()
        after = {p.name for p in segment_dir.iterdir()}
        live = {
            p.name
            for r in store.rounds()
            for label in store.labels(r)
            for p in store.segment_paths(r, label)
        }
        assert after == live
        assert not (before - live) & after

    def test_point_lookup_after_compact(self, tmp_path):
        corpus = random_rounds(5, rounds=3, devices=10)
        store = build_store(tmp_path / "s", corpus, segment_rows=4)
        target = next(iter(store.observations())).observation.address
        before = [
            (s.round_id, s.label, s.observation)
            for s in store.history(target)
        ]
        store.compact()
        assert [
            (s.round_id, s.label, s.observation)
            for s in store.history(target)
        ] == before
        assert store.history(ipaddress.ip_address("203.0.113.77")) == []
