"""End-to-end tests for the ``store`` CLI verbs."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def scan_run(tmp_path_factory):
    """One small scan run exported to JSONL, shared across tests."""
    run_dir = tmp_path_factory.mktemp("runs") / "run"
    assert main(["scan", "--scale", "1500", "--seed", "3",
                 "--out", str(run_dir)]) == 0
    return run_dir


class TestParser:
    def test_store_verbs_registered(self, tmp_path):
        parser = build_parser()
        for argv in (
            ["store", "ingest", "x", "--store", "s"],
            ["store", "import-jsonl", "f.jsonl", "--store", "s"],
            ["store", "export-jsonl", "--store", "s",
             "--round", "1", "--label", "v4-1", "--out", "o.jsonl"],
            ["store", "query", "--store", "s"],
            ["store", "timeline", "--store", "s"],
            ["store", "compact", "--store", "s"],
            ["store", "stats", "--store", "s"],
        ):
            assert callable(parser.parse_args(argv).func)

    def test_store_flag_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "query"])


class TestStoreWorkflow:
    def test_ingest_query_timeline_compact(self, scan_run, tmp_path, capsys):
        store_dir = tmp_path / "obs"

        assert main(["store", "ingest", str(scan_run),
                     "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "round 1" in out

        # Vendor census rollup.
        assert main(["store", "query", "--store", str(store_dir)]) == 0
        assert "devices" in capsys.readouterr().out

        # Point query on a stored address.
        assert main(["store", "stats", "--store", str(store_dir),
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["rounds"] == 1
        assert stats["rows"] > 0
        assert stats["timeline"]["devices"] > 0

        assert main(["store", "timeline", "--store", str(store_dir),
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["rounds"] == [1]

        assert main(["store", "compact", "--store", str(store_dir)]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--store", str(store_dir),
                     "--json"]) == 0
        after = json.loads(capsys.readouterr().out)
        assert after["rows"] == stats["rows"]
        assert after["timeline"] == stats["timeline"]

    def test_query_by_ip_and_engine(self, scan_run, tmp_path, capsys):
        store_dir = tmp_path / "obs"
        main(["store", "ingest", str(scan_run), "--store", str(store_dir)])
        capsys.readouterr()

        header = json.loads(
            (scan_run / "scan-v4-1.jsonl").read_text().splitlines()[0]
        )
        assert header["format"] == "snmpv3-scan"
        row = json.loads(
            (scan_run / "scan-v4-1.jsonl").read_text().splitlines()[1]
        )
        ip, engine_hex = row["ip"], row["engine_id"]

        assert main(["store", "query", "--store", str(store_dir),
                     "--ip", ip]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ip"] == ip
        assert payload["history"]
        assert all("engine_boots" in h for h in payload["history"])

        assert main(["store", "query", "--store", str(store_dir),
                     "--engine-id", engine_hex]) == 0
        members = json.loads(capsys.readouterr().out)
        assert ip in members["ips"]

        assert main(["store", "timeline", "--store", str(store_dir),
                     "--engine-id", engine_hex]) == 0
        detail = json.loads(capsys.readouterr().out)
        assert detail["engine_id"] == engine_hex

    def test_unknown_engine_errors(self, scan_run, tmp_path, capsys):
        store_dir = tmp_path / "obs"
        main(["store", "ingest", str(scan_run), "--store", str(store_dir)])
        capsys.readouterr()
        assert main(["store", "timeline", "--store", str(store_dir),
                     "--engine-id", "dead"]) == 2

    def test_import_export_jsonl_roundtrip(self, scan_run, tmp_path, capsys):
        store_dir = tmp_path / "obs"
        source = scan_run / "scan-v4-1.jsonl"
        assert main(["store", "import-jsonl", str(source),
                     "--store", str(store_dir)]) == 0
        out = tmp_path / "back.jsonl"
        assert main(["store", "export-jsonl", "--store", str(store_dir),
                     "--round", "1", "--label", "v4-1",
                     "--out", str(out)]) == 0
        source_lines = source.read_text().splitlines()
        out_lines = out.read_text().splitlines()
        # The streaming writer pads its back-patched header and emits
        # rows in arrival order; the store export is address-sorted.
        # Same header, same row set.
        assert json.loads(out_lines[0]) == json.loads(source_lines[0])
        assert sorted(out_lines[1:]) == sorted(source_lines[1:])

    def test_scan_with_store_flag(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        store_dir = tmp_path / "obs"
        assert main(["scan", "--scale", "1500", "--seed", "3",
                     "--out", str(run_dir),
                     "--store", str(store_dir)]) == 0
        assert "store: round 1" in capsys.readouterr().out

        # The streamed ingest matches a JSONL backfill of the same run.
        backfill = tmp_path / "backfill"
        assert main(["store", "ingest", str(run_dir),
                     "--store", str(backfill)]) == 0
        capsys.readouterr()

        from repro.store import Store

        direct = Store.open(store_dir)
        imported = Store.open(backfill)
        # JSONL maps an empty engine ID to null while the columnar wire
        # codec preserves it, so the two stores agree up to the JSONL
        # projection: re-exporting each must give identical bytes.
        for label in direct.labels(1):
            a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
            assert direct.export_jsonl(1, label, a) == \
                imported.export_jsonl(1, label, b)
            assert a.read_bytes() == b.read_bytes()
            assert (
                direct.scan_info(1, label)["targets_probed"]
                == imported.scan_info(1, label)["targets_probed"]
            )
