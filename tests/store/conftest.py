"""Shared fixtures and synthetic-round builders for the store suite."""

import ipaddress
import random

import pytest

from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.engine_id import EngineId


def make_engine(tag: int) -> EngineId:
    """A distinct, conforming MAC-format engine ID per tag."""
    mac = tag.to_bytes(6, "big")
    return EngineId(b"\x80\x00\x00\x09\x03" + mac)


def make_obs(
    ip: str,
    recv_time: float,
    engine: "EngineId | None",
    boots: int = 1,
    engine_time: int = 100,
    responses: int = 1,
) -> ScanObservation:
    return ScanObservation(
        address=ipaddress.ip_address(ip),
        recv_time=recv_time,
        engine_id=engine,
        engine_boots=boots,
        engine_time=engine_time,
        response_count=responses,
        wire_bytes=64,
    )


def make_scan(
    label: str,
    started_at: float,
    observations,
    *,
    ip_version: int = 4,
    targets_probed: int = 100,
) -> ScanResult:
    scan = ScanResult(
        label=label,
        ip_version=ip_version,
        started_at=started_at,
        finished_at=started_at + 50.0,
        targets_probed=targets_probed,
    )
    for obs in observations:
        scan.add(obs)
    return scan


def random_rounds(seed: int, *, rounds: int = 3, devices: int = 12):
    """A randomized longitudinal corpus with reboots and renumbering.

    Returns ``[(round_id, [(label, started_at, [obs, ...]), ...]), ...]``.
    Devices keep one engine ID throughout; per round each device may be
    absent, rebooted (boots+1, uptime reset) or silently reset (uptime
    regression without a boots increment), and addresses are reshuffled
    so some IPs change hands between rounds (the 'moved' population).
    """
    rng = random.Random(seed)
    engines = [make_engine(0x1000 + n) for n in range(devices)]
    boots = {e.raw: rng.randint(1, 5) for e in engines}
    reboot_at = {e.raw: 0.0 for e in engines}
    corpus = []
    for round_index in range(rounds):
        round_id = round_index + 1
        round_start = 10_000.0 * round_id
        addresses = [f"10.0.{round_index}.{n + 1}" for n in range(devices)]
        # Some devices swap addresses with a neighbour, some keep last
        # round's address block alive (stable IPs that can change hands).
        if round_index > 0 and rng.random() < 0.9:
            keep = rng.sample(range(devices), k=max(2, devices // 2))
            for n in keep:
                addresses[n] = f"10.0.100.{(n + round_index) % devices + 1}"
        scans = []
        for scan_index, label in enumerate(("s-1", "s-2")):
            started = round_start + 1000.0 * scan_index
            observations = []
            for n, engine in enumerate(engines):
                if rng.random() < 0.15:
                    continue  # unresponsive this scan
                raw = engine.raw
                if rng.random() < 0.2:
                    if rng.random() < 0.5:
                        boots[raw] += 1  # clean reboot
                    reboot_at[raw] = started - rng.uniform(0.0, 500.0)
                recv = started + n * 0.25
                uptime = max(0, int(recv - reboot_at[raw]))
                observations.append(
                    make_obs(
                        addresses[n],
                        recv,
                        engine,
                        boots=boots[raw],
                        engine_time=uptime,
                    )
                )
            scans.append((label, started, observations))
        corpus.append((round_id, scans))
    return corpus


@pytest.fixture()
def three_rounds():
    """A handcrafted 3-round corpus with every event kind injected.

    Devices (engine tags): A=1, B=2, C=3.

    * round 1: A answers on 10.0.0.1, B on 10.0.0.2.
    * round 2: A has cleanly rebooted (boots+1, uptime reset); B has
      *renumbered* to 10.0.0.3; C is born on 10.0.0.4.
    * round 3: B resets without incrementing boots (engine-time
      regression); A falls silent (died); C *moves* onto B's old
      address 10.0.0.3 while B returns to 10.0.0.2.
    """
    a, b, c = make_engine(1), make_engine(2), make_engine(3)
    round1 = [
        ("s-1", 10_000.0, [
            make_obs("10.0.0.1", 10_001.0, a, boots=2, engine_time=5_000),
            make_obs("10.0.0.2", 10_002.0, b, boots=7, engine_time=9_000),
        ]),
        ("s-2", 11_000.0, [
            make_obs("10.0.0.1", 11_001.0, a, boots=2, engine_time=6_000),
            make_obs("10.0.0.2", 11_002.0, b, boots=7, engine_time=10_000),
        ]),
    ]
    round2 = [
        ("s-1", 20_000.0, [
            # A rebooted at ~19_900: boots 2 -> 3, uptime reset.
            make_obs("10.0.0.1", 20_001.0, a, boots=3, engine_time=100),
            make_obs("10.0.0.3", 20_002.0, b, boots=7, engine_time=19_000),
            make_obs("10.0.0.4", 20_003.0, c, boots=1, engine_time=50),
        ]),
        ("s-2", 21_000.0, [
            make_obs("10.0.0.1", 21_001.0, a, boots=3, engine_time=1_100),
            make_obs("10.0.0.3", 21_002.0, b, boots=7, engine_time=20_000),
            make_obs("10.0.0.4", 21_003.0, c, boots=1, engine_time=1_050),
        ]),
    ]
    round3 = [
        ("s-1", 30_000.0, [
            # B lost ~29_000s of uptime without a boots increment.
            make_obs("10.0.0.2", 30_001.0, b, boots=7, engine_time=500),
            make_obs("10.0.0.3", 30_002.0, c, boots=1, engine_time=10_050),
        ]),
        ("s-2", 31_000.0, [
            make_obs("10.0.0.2", 31_001.0, b, boots=7, engine_time=1_500),
            make_obs("10.0.0.3", 31_002.0, c, boots=1, engine_time=11_050),
        ]),
    ]
    return [(1, round1), (2, round2), (3, round3)]
