"""Timeline folding vs a brute-force in-memory reference recomputation."""

import ipaddress

import pytest

from repro.store.timeline import (
    DEFAULT_REBOOT_THRESHOLD,
    KIND_BOOTS_INCREMENT,
    KIND_TIME_REGRESSION,
    TimelineAccumulator,
    TimelineError,
)

from tests.store.conftest import make_engine, make_obs, random_rounds


def brute_force(corpus, threshold=DEFAULT_REBOOT_THRESHOLD):
    """Recompute every longitudinal answer directly from the raw rounds.

    Deliberately structured nothing like TimelineAccumulator: flatten
    all (engine, scan) representative sightings into one global list,
    then derive events and memberships from scratch.
    """
    # One representative (lowest address) per engine per scan, globally.
    sightings = []  # (round_id, started_at, label, raw, sighting-tuple)
    memberships = {}  # round_id -> {address: raw} with latest scan winning
    for round_id, scans in corpus:
        membership = {}
        for label, started_at, observations in sorted(
            scans, key=lambda s: (s[1], s[0])
        ):
            reps = {}
            for obs in observations:
                if obs.engine_id is None:
                    continue
                raw = obs.engine_id.raw
                membership[obs.address] = raw
                prev = reps.get(raw)
                if prev is None or int(obs.address) < int(prev.address):
                    reps[raw] = obs
            for raw, obs in reps.items():
                sightings.append((round_id, started_at, label, raw, obs))
        memberships[round_id] = membership

    # Reboot events: walk each engine's representative sightings in time.
    events = []
    per_engine = {}
    for round_id, started_at, label, raw, obs in sightings:
        per_engine.setdefault(raw, []).append((round_id, started_at, label, obs))
    for raw, seq in per_engine.items():
        seq.sort(key=lambda item: (item[0], item[1], item[2]))
        for before, after in zip(seq, seq[1:]):
            prev_obs, next_obs = before[3], after[3]
            prev_reboot = prev_obs.recv_time - float(prev_obs.engine_time)
            next_reboot = next_obs.recv_time - float(next_obs.engine_time)
            if next_reboot - prev_reboot <= threshold:
                continue
            kind = (
                KIND_BOOTS_INCREMENT
                if next_obs.engine_boots > prev_obs.engine_boots
                else KIND_TIME_REGRESSION
            )
            events.append(
                (after[0], after[2], raw, kind,
                 prev_obs.engine_boots, next_obs.engine_boots)
            )
    events.sort(key=lambda e: (e[0], e[1], e[2]))

    # Alias diffs between consecutive rounds.
    diffs = []
    round_ids = [round_id for round_id, __ in corpus]
    for prev_id, next_id in zip(round_ids, round_ids[1:]):
        prev, nxt = memberships[prev_id], memberships[next_id]
        diffs.append(
            (
                prev_id,
                next_id,
                frozenset(a for a in nxt if a not in prev),
                frozenset(a for a in prev if a not in nxt),
                frozenset(a for a in nxt if a in prev and prev[a] != nxt[a]),
            )
        )

    uptimes = sorted(
        obs.engine_time for __, __, __, __, obs in sightings
    )
    return events, diffs, uptimes


def fold_corpus(corpus, **kwargs):
    acc = TimelineAccumulator(**kwargs)
    for round_id, scans in corpus:
        acc.fold_round(round_id, scans)
    return acc


def assert_matches_brute_force(corpus):
    acc = fold_corpus(corpus)
    events, diffs, uptimes = brute_force(corpus)
    got_events = [
        (e.round_id, e.label, e.engine_id, e.kind, e.boots_before, e.boots_after)
        for e in acc.reboot_events()
    ]
    assert got_events == events
    got_diffs = [
        (d.prev_round, d.next_round, d.born, d.died, d.moved)
        for d in acc.diffs
    ]
    assert got_diffs == diffs
    assert acc.uptime_ecdf_inputs() == uptimes


class TestHandcrafted:
    def test_matches_brute_force(self, three_rounds):
        assert_matches_brute_force(three_rounds)

    def test_expected_events(self, three_rounds):
        acc = fold_corpus(three_rounds)
        a, b, c = make_engine(1), make_engine(2), make_engine(3)

        events = acc.reboot_events()
        assert [(e.engine_id, e.round_id, e.kind) for e in events] == [
            (a.raw, 2, KIND_BOOTS_INCREMENT),
            (b.raw, 3, KIND_TIME_REGRESSION),
        ]
        a_event = events[0]
        assert (a_event.boots_before, a_event.boots_after) == (2, 3)
        b_event = events[1]
        assert (b_event.boots_before, b_event.boots_after) == (7, 7)

        ip = ipaddress.ip_address
        assert [
            (d.prev_round, d.next_round, d.born, d.died, d.moved)
            for d in acc.diffs
        ] == [
            (1, 2,
             frozenset({ip("10.0.0.3"), ip("10.0.0.4")}),
             frozenset({ip("10.0.0.2")}),
             frozenset()),
            (2, 3,
             frozenset({ip("10.0.0.2")}),
             frozenset({ip("10.0.0.1"), ip("10.0.0.4")}),
             frozenset({ip("10.0.0.3")})),
        ]

    def test_member_history(self, three_rounds):
        acc = fold_corpus(three_rounds)
        b = make_engine(2)
        timeline = acc.timelines[b.raw]
        ip = ipaddress.ip_address
        assert timeline.member_history() == [
            (1, frozenset({ip("10.0.0.2")})),
            (2, frozenset({ip("10.0.0.3")})),
            (3, frozenset({ip("10.0.0.2")})),
        ]
        assert timeline.first_round == 1
        assert timeline.last_round == 3
        assert timeline.rounds_seen == 3

    def test_summary_counts(self, three_rounds):
        acc = fold_corpus(three_rounds)
        summary = acc.summary()
        assert summary["rounds"] == [1, 2, 3]
        assert summary["devices"] == 3
        assert summary["reboot_events"] == 2
        assert summary["boots_increment_events"] == 1
        assert summary["time_regression_events"] == 1
        assert [d["moved"] for d in summary["diffs"]] == [0, 1]


class TestRandomCorpora:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        assert_matches_brute_force(random_rounds(seed))

    @pytest.mark.parametrize("seed", [100, 101])
    def test_larger_corpora(self, seed):
        assert_matches_brute_force(
            random_rounds(seed, rounds=5, devices=40)
        )

    def test_within_scan_order_is_irrelevant(self):
        corpus = random_rounds(7)
        shuffled = [
            (round_id, [
                (label, started, list(reversed(observations)))
                for label, started, observations in scans
            ])
            for round_id, scans in corpus
        ]
        base, other = fold_corpus(corpus), fold_corpus(shuffled)
        assert base.reboot_events() == other.reboot_events()
        assert [
            (d.born, d.died, d.moved) for d in base.diffs
        ] == [(d.born, d.died, d.moved) for d in other.diffs]


class TestFoldContract:
    def test_out_of_order_round_raises(self, three_rounds):
        acc = TimelineAccumulator()
        acc.fold_round(2, three_rounds[1][1])
        with pytest.raises(TimelineError, match="out of order"):
            acc.fold_round(1, three_rounds[0][1])
        with pytest.raises(TimelineError):
            acc.fold_round(2, three_rounds[1][1])

    def test_threshold_suppresses_small_jumps(self):
        engine = make_engine(5)
        scans = [
            ("s-1", 100.0, [make_obs("10.0.0.1", 100.0, engine,
                                     boots=1, engine_time=50)]),
            ("s-2", 200.0, [make_obs("10.0.0.1", 200.0, engine,
                                     boots=1, engine_time=145)]),
        ]
        acc = TimelineAccumulator()
        acc.fold_round(1, scans)
        # last_reboot drifts 50 -> 55: below the 10s threshold.
        assert acc.reboot_events() == []
        loose = TimelineAccumulator(reboot_threshold=4.0)
        loose.fold_round(1, scans)
        assert len(loose.reboot_events()) == 1

    def test_anonymous_observations_ignored(self):
        scans = [("s-1", 1.0, [make_obs("10.0.0.1", 1.0, None)])]
        acc = TimelineAccumulator()
        acc.fold_round(1, scans)
        assert acc.timelines == {}
        assert acc.summary()["devices"] == 0
