"""Session facade integration with the persistent store."""

import pytest

from repro.api import Session, Store, StoreQuery


class TestSessionStore:
    def test_store_accepts_path(self, tmp_path):
        session = Session(scale=1500, seed=5, workers=1,
                          store=tmp_path / "obs")
        assert isinstance(session.store, Store)
        assert (tmp_path / "obs").is_dir()

    def test_store_accepts_store_object(self, tmp_path):
        store = Store(root=tmp_path / "obs")
        session = Session(scale=1500, seed=5, workers=1, store=store)
        assert session.store is store

    def test_run_campaign_auto_ingests(self, tmp_path):
        session = Session(scale=1500, seed=5, workers=1,
                          store=tmp_path / "obs")
        result = session.run_campaign()
        assert session.store is not None
        assert session.store.rounds() == [1]
        for label, scan in result.scans.items():
            rebuilt = session.store.scan_result(1, label)
            assert rebuilt.observations == scan.observations

    def test_repeat_rounds_accumulate(self, tmp_path):
        session = Session(scale=1500, seed=5, workers=1,
                          store=tmp_path / "obs")
        session.run_campaign()
        session.run_campaign()
        session.run_campaign(round_id=9)
        assert session.store.rounds() == [1, 2, 9]

    def test_scan_stage_ingests_when_store_present(self, tmp_path):
        session = Session(scale=1500, seed=5, workers=1,
                          store=tmp_path / "obs")
        session.scan()
        assert session.store.rounds() == [1]
        # The cached campaign is not re-ingested by later stage calls.
        session.scan()
        assert session.store.rounds() == [1]

    def test_store_query_helper(self, tmp_path):
        session = Session(scale=1500, seed=5, workers=1,
                          store=tmp_path / "obs")
        session.run_campaign()
        query = session.store_query()
        assert isinstance(query, StoreQuery)
        assert query.device_count > 0

    def test_store_query_without_store_raises(self):
        session = Session(scale=1500, seed=5, workers=1)
        with pytest.raises(ValueError, match="store"):
            session.store_query()

    def test_no_store_still_works(self):
        session = Session(scale=1500, seed=5, workers=1)
        assert session.store is None
        assert session.run_campaign().scans

    def test_store_kwarg_is_keyword_only(self, tmp_path):
        with pytest.raises(TypeError):
            Session(1500, 5, tmp_path / "obs")
