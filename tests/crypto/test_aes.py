"""AES-128 and CFB-128 validated against the official test vectors."""

import pytest

from repro.crypto.aes import Aes128, cfb128_decrypt, cfb128_encrypt


class TestFips197:
    def test_appendix_c_vector(self):
        """FIPS-197 Appendix C.1: the canonical AES-128 known answer."""
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert Aes128(key).encrypt_block(plaintext) == expected

    def test_appendix_b_vector(self):
        """FIPS-197 Appendix B worked example."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert Aes128(key).encrypt_block(plaintext) == expected

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            Aes128(b"short")

    def test_block_length_enforced(self):
        with pytest.raises(ValueError):
            Aes128(bytes(16)).encrypt_block(b"tiny")


class TestSp80038aCfb128:
    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    PLAIN = bytes.fromhex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
        "30c81c46a35ce411e5fbc1191a0a52ef"
        "f69f2445df4f9b17ad2b417be66c3710"
    )
    CIPHER = bytes.fromhex(
        "3b3fd92eb72dad20333449f8e83cfb4a"
        "c8a64537a0b3a93fcde3cdad9f1ce58b"
        "26751f67a3cbb140b1808cf187a4f4df"
        "c04b05357c5d1c0eeac4c66f9ff7f2e6"
    )

    def test_nist_encrypt_vector(self):
        assert cfb128_encrypt(self.KEY, self.IV, self.PLAIN) == self.CIPHER

    def test_nist_decrypt_vector(self):
        assert cfb128_decrypt(self.KEY, self.IV, self.CIPHER) == self.PLAIN

    def test_partial_final_segment_roundtrip(self):
        """SNMP messages are not padded: 37 bytes must round-trip."""
        message = bytes(range(37))
        encrypted = cfb128_encrypt(self.KEY, self.IV, message)
        assert len(encrypted) == 37
        assert cfb128_decrypt(self.KEY, self.IV, encrypted) == message

    def test_empty_plaintext(self):
        assert cfb128_encrypt(self.KEY, self.IV, b"") == b""

    def test_iv_length_enforced(self):
        with pytest.raises(ValueError):
            cfb128_encrypt(self.KEY, b"\x00" * 8, b"data")

    def test_different_iv_different_ciphertext(self):
        other_iv = bytes(16)
        a = cfb128_encrypt(self.KEY, self.IV, b"same message bytes!")
        b = cfb128_encrypt(self.KEY, other_iv, b"same message bytes!")
        assert a != b


class TestProperties:
    def test_roundtrip_property(self):
        from hypothesis import given, strategies as st

        @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16),
               st.binary(max_size=200))
        def check(key, iv, message):
            assert cfb128_decrypt(key, iv, cfb128_encrypt(key, iv, message)) == message

        check()
