"""OID001 fixture: malformed OID literals, in calls and bare strings."""


def Oid(text):
    return text


BAD_LEADING_ZERO = Oid("1.3.6.1.02.1")  # expect: OID001
BAD_FIRST_ARC = Oid("9.3.6.1.2.1")  # expect: OID001
BAD_SECOND_ARC = Oid("1.40.6.1.2.1")  # expect: OID001
BAD_ARC_TEXT = Oid("1.3.6.x.2.1")  # expect: OID001
BARE_LITERAL = "1.3.6.1.99999.02.1"  # expect: OID001
