"""IMP001 fixture: core-to-core imports are always fine."""

import json

from repro.asn1.oid import Oid


def parse(text):
    return Oid(json.loads(text))
