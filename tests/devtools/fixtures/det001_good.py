"""DET001 fixture: the approved idioms pass untouched."""

import random
import time


def approved(seed: int) -> float:
    rng = random.Random(seed)  # explicit seed: replayable
    started = time.perf_counter()  # duration-only clock is whitelisted
    return rng.random() + (time.perf_counter() - started)
