"""LINT001 fixture: suppression markers that no longer silence anything.

Run through ``lint_source`` with the default rule set; each marked line
carries a ``# repro-lint: disable=...`` comment naming an active rule
that produces no diagnostic there.
"""

import time


def no_violation_here():
    total = 1 + 1  # repro-lint: disable=DET001  # expect: LINT001
    return total


def wrong_rule_named():
    # The call *is* a DET001 violation, but the marker names PROTO001,
    # so DET001 still fires and the PROTO001 marker is stale.
    return time.time()  # repro-lint: disable=PROTO001  # expect: DET001  # expect: LINT001
