"""OID001 fixture: well-formed OIDs and lookalike strings that are not OIDs."""


def Oid(text):
    return text


SYS_DESCR = Oid("1.3.6.1.2.1.1.1.0")
SHORT = Oid("1.3")
ZERO_ARC = Oid("1.3.6.1.4.0.1")
IPV4_NOT_AN_OID = "203.0.113.77"  # four arcs: out of OID shape
VERSION_STRING = "1.2.3"
