"""PROTO001 fixture: decoders that would leak raw exceptions."""

import struct


def decode_header(buf, offset):
    return buf[offset]  # expect: PROTO001


def decode_word(data):
    return struct.unpack(">H", data)  # expect: PROTO001


def read_first(payload):
    try:
        return payload[0]
    except IndexError:  # expect: PROTO001
        return None
