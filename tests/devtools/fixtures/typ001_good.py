"""TYP001 fixture: fully annotated signatures, with the exemptions."""


def annotated(value: int) -> int:
    def nested(inner):  # nested defs are local detail: exempt
        return inner

    return nested(value)


class Widget:
    def method(self, *args, **kwargs) -> None:
        # self and bare *args/**kwargs need no annotations
        pass
