"""RES001 fixture, corrected form: every acquisition has a safe release.

``with`` blocks, try/finally, escape-to-caller, and guarded
constructors are all acceptable lifecycles; the analyzer must stay
silent.
"""


def with_statement(path):
    with path.open("w") as handle:
        handle.write("x")


def try_finally(path):
    handle = path.open("w")
    try:
        handle.write("x")
    finally:
        handle.close()


def release_before_risk(path):
    handle = path.open("w")
    handle.close()
    return path.stat().st_size


def escapes_to_caller(path):
    # The caller owns the lifecycle of a returned handle.
    return path.open("w")


class GuardedConstructor:
    def __init__(self, path):
        self._handle = path.open("w")
        try:
            self._size = path.stat().st_size
        except BaseException:
            self._handle.close()
            raise

    def close(self):
        self._handle.close()


class PlainManaged:
    def __init__(self, path):
        self._handle = path.open("w")

    def __exit__(self, *exc_info):
        self._handle.close()
