"""DET001 fixture: every marked line is a wall-clock or entropy source.

The marker comments are asserted by the rule tests; the fixture is
never imported, only parsed.
"""

import os
import random
import time
import uuid
from datetime import datetime

import numpy as np


def stamp():
    started = time.time()  # expect: DET001
    today = datetime.now()  # expect: DET001
    token = uuid.uuid4()  # expect: DET001
    noise = os.urandom(8)  # expect: DET001
    pick = random.choice([1, 2, 3])  # expect: DET001
    draws = np.random.uniform()  # expect: DET001
    rng = random.Random()  # expect: DET001
    return started, today, token, noise, pick, draws, rng


def quiet():
    # A justified exception stays visible but silenced:
    return time.time()  # repro-lint: disable=DET001
