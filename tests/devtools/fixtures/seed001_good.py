"""SEED001 fixture, corrected form: every stream traces to a real seed.

Same shapes as ``seed001_bad`` with the constants replaced by threaded
seed parameters, seed-named attributes, and ``mix(seed, slot)``
derivations — the analyzer must stay silent on all of it.
"""

import random


def mix(seed, *parts):
    value = seed
    for part in parts:
        value = (value * 31) ^ hash(part)
    return value


def make_stream(seed):
    return random.Random(seed)


def relay(value):
    return make_stream(value)


def derived_from_parameter(seed):
    return random.Random(seed ^ 0x5CA7)


def derived_from_config(config):
    # Seed-named attributes carry provenance by naming convention.
    return random.Random(config.shuffle_seed)


def mix_derivation(seed):
    return random.Random(mix(seed, "slot", 3))


def threaded_through_chain(topology):
    return relay(topology.seed ^ 0xFAB)
