"""API001 fixture: keyword-only constructors and the *args shim pass."""

from dataclasses import dataclass


class Gadget:
    def __init__(self, *args, size=None, color=None):
        # A bare *args deprecation shim is the blessed migration idiom.
        self.size = size
        self.color = color


@dataclass
class Point:
    # Dataclass-generated constructors are data records: exempt.
    x: int
    y: int
