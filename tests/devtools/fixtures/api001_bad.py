"""API001 fixture: a blessed class with a positional constructor."""


class Gadget:
    def __init__(self, size, color=None):  # expect: API001
        self.size = size
        self.color = color
