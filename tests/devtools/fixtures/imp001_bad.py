"""IMP001 fixture: a core module reaching into upper layers.

Linted under a synthetic ``repro.pipeline.*`` module name; never
imported (the targets do not even need to exist).
"""

import tests.helpers  # expect: IMP001
from tests import utilities  # expect: IMP001
from repro.experiments import context  # expect: IMP001
import repro.devtools.lint  # expect: IMP001
