"""RES001 fixture: acquisitions with a missing or fragile release path.

Registered as ``repro.scanner.res001_bad``; each marked line is a
distinct lifecycle defect the analyzer must report.
"""


def never_released(path):
    handle = path.open("w")  # expect: RES001
    handle.write("x")
    return 1


def fallthrough_release_only(path):
    handle = path.open("w")  # expect: RES001
    handle.write("x")
    handle.close()
    return 2


class LeakyConstructor:
    """Acquires, then runs risky work outside any guard."""

    def __init__(self, path):
        self._handle = path.open("w")
        self._size = path.stat().st_size  # expect: RES001

    def close(self):
        self._handle.close()


class NoReleasePath:
    """No method ever releases the handle the constructor opens."""

    def __init__(self, path):  # expect: RES001
        self._handle = path.open("w")
