"""DET002 fixture: module-level mutable state mutated from functions."""

_CACHE = {}
_SEEN = []


def remember(key, value):
    _CACHE[key] = value  # expect: DET002


def track(item):
    _SEEN.append(item)  # expect: DET002


def reset():
    global _CACHE
    _CACHE = {}  # expect: DET002
