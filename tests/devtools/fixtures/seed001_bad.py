"""SEED001 fixture: RNG streams whose seeds are provably constant.

Registered in the test's project graph as ``repro.scanner.seed001_bad``
so the scanner-scope gate applies; never imported, only parsed.
"""

import random


def mix(seed, *parts):
    value = seed
    for part in parts:
        value = (value * 31) ^ hash(part)
    return value


def make_stream(seed):
    # Innocent in isolation: the constant enters at the *call sites*.
    return random.Random(seed)


def relay(value):
    return make_stream(value)


def ambient_constant():
    return random.Random(0xBEEF)  # expect: SEED001


def constant_mix_derivation():
    return random.Random(mix(77, "slot"))  # expect: SEED001


def constant_through_chain():
    return relay(1234)  # expect: SEED001
