"""FORK001 fixture, corrected form: runners capture only plain data.

Per-instance containers, seeded RNG state, and scalars all survive a
copy-on-write fork; the audit must stay silent.
"""

import random

from repro.scanner.pool import WorkerPool

_LIMIT = 64


class CleanRunner:
    def __init__(self, seed, targets):
        self._rng = random.Random(seed)
        self._targets = list(targets)
        self._cache = {}
        self._limit = _LIMIT  # immutable module global: fine


def launch(seed, targets):
    return WorkerPool(workers=2, runner=CleanRunner(seed, targets))
