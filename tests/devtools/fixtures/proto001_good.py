"""PROTO001 fixture: both containment disciplines pass.

``decode_guarded`` validates explicitly and raises the decode-error
type; ``decode_translated`` wraps the risky call and translates the raw
exception.  Either marks the decoder as containing malformed input.
"""

import struct


class FixtureDecodeError(ValueError):
    pass


def decode_guarded(buf, offset):
    if offset >= len(buf):
        raise FixtureDecodeError("truncated TLV")
    return buf[offset]


def decode_translated(data):
    try:
        return struct.unpack(">H", data)
    except struct.error as exc:
        raise FixtureDecodeError(str(exc)) from exc
