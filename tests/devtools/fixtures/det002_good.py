"""DET002 fixture: frozen lookup tables and shadowed locals are fine."""

_TABLE = {"a": 1, "b": 2}  # read-only lookup table


def lookup(key):
    return _TABLE.get(key)


def local_shadow():
    _TABLE = {}  # a local of the same name, not the module global
    _TABLE["x"] = 1
    return _TABLE
