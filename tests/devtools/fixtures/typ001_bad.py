"""TYP001 fixture: missing annotations in a ratcheted module."""


def no_return(value: int):  # expect: TYP001
    return value


def no_param(value) -> int:  # expect: TYP001
    return value


class Widget:
    def method(self, other) -> None:  # expect: TYP001
        self.other = other
