"""LINT001 fixture, corrected form: every suppression still earns its keep.

The marker below silences a real DET001 diagnostic, so the
stale-suppression sweep must stay silent (and the suppression must
still count as used).
"""

import time


def justified_exception():
    return time.time()  # repro-lint: disable=DET001
