"""FORK001 fixture: runners capturing fork-hostile state.

Registered as ``repro.scanner.fork001_bad`` next to a minimal
``repro.scanner.pool`` stub; the capture audit must flag the lock, the
open handle, and the mutable module-global reference.
"""

import threading

from repro.scanner.pool import WorkerPool

_REGISTRY = {}


class BadRunner:
    def __init__(self, path):
        self._lock = threading.Lock()  # expect: FORK001
        self._handle = path.open("rb")  # expect: FORK001
        self._registry = _REGISTRY  # expect: FORK001
        self._shards = 4


class NestedRunner:
    """Fork-hostile state one constructor hop away still counts."""

    def __init__(self, inner):
        self._inner = inner


def launch(path):
    return WorkerPool(workers=2, runner=BadRunner(path))


def launch_nested(path):
    return WorkerPool(workers=2, runner=NestedRunner(BadRunner(path)))
