"""PROTO001: protocol decoders contain malformed input."""

from __future__ import annotations

from repro.devtools.lint.engine import lint_source
from repro.devtools.lint.rules import DecoderHygieneRule

from tests.devtools.conftest import load_fixture


def findings(source: str, module: str) -> list[tuple[str, int]]:
    diags, _ = lint_source(source, module=module, rules=[DecoderHygieneRule()])
    return [(d.rule, d.line) for d in diags]


def test_bad_fixture_flags_every_marked_line():
    source, expected = load_fixture("proto001_bad.py")
    assert findings(source, "repro.asn1.fixture") == expected


def test_good_fixture_is_clean():
    source, expected = load_fixture("proto001_good.py")
    assert findings(source, "repro.asn1.fixture") == [] and expected == []


def test_out_of_scope_module_is_ignored():
    source, _ = load_fixture("proto001_bad.py")
    assert findings(source, "repro.analysis.fixture") == []


def test_named_decoder_modules_are_in_scope():
    source = "def decode_x(buf, offset):\n    return buf[offset]\n"
    assert findings(source, "repro.net.packet") == [("PROTO001", 2)]
    assert findings(source, "repro.net.other") == []


def test_bare_except_without_translation_is_flagged():
    source = (
        "def read(payload):\n"
        "    try:\n"
        "        return payload[0]\n"
        "    except Exception:\n"
        "        return None\n"
    )
    # ``except Exception`` is not a *raw* handler — only handlers naming
    # IndexError/KeyError/struct.error (or truly bare) must translate.
    assert findings(source, "repro.asn1.fixture") == []
    bare = source.replace("except Exception", "except")
    assert findings(bare, "repro.asn1.fixture") == [("PROTO001", 4)]
