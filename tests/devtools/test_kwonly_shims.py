"""Deprecation shims on the six constructors converted to keyword-only.

Positional construction keeps working for one release behind a
``DeprecationWarning`` (the PR-1 facade migration idiom); keyword
construction is silent.  API001 enforces the keyword-only shape
statically — these tests pin the runtime behaviour of the shims.
"""

from __future__ import annotations

import warnings

import pytest

from repro.alias.midar import MidarResolver
from repro.alias.ratelimit import IcmpRateLimitOracle
from repro.alias.speedtrap import SpeedtrapResolver
from repro.snmp.agent import SnmpAgent
from repro.snmp.client import SnmpClient
from repro.snmp.engine_id import EngineId
from repro.topology.config import TopologyConfig
from repro.topology.generator import TopologyGenerator, build_topology


@pytest.fixture(scope="module")
def topology():
    return build_topology(TopologyConfig.paper_scale(divisor=3000, seed=11))


@pytest.fixture()
def agent():
    return SnmpAgent(engine_id=EngineId(b"\x80\x00\x00\x09\x03\x02\x11\x22\x33\x44\x55"))


def assert_warns_positional(factory):
    with pytest.warns(DeprecationWarning, match="positional"):
        return factory()


def assert_silent(factory):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        return factory()


def test_topology_generator_shim():
    config = TopologyConfig.paper_scale(divisor=3000, seed=11)
    legacy = assert_warns_positional(lambda: TopologyGenerator(config))
    modern = assert_silent(lambda: TopologyGenerator(config=config))
    assert legacy.config is modern.config is config


def test_snmp_agent_shim():
    engine_id = EngineId(b"\x80\x00\x00\x09\x03\x02\x11\x22\x33\x44\x55")
    legacy = assert_warns_positional(lambda: SnmpAgent(engine_id, 5.0, 3))
    modern = assert_silent(
        lambda: SnmpAgent(engine_id=engine_id, boot_time=5.0, engine_boots=3)
    )
    assert legacy.engine_id == modern.engine_id == engine_id
    assert legacy.boot_time == modern.boot_time == 5.0
    assert legacy.engine_boots == modern.engine_boots == 3


def test_snmp_agent_requires_engine_id():
    with pytest.raises(TypeError):
        SnmpAgent()


def test_snmp_client_shim(agent):
    legacy = assert_warns_positional(lambda: SnmpClient(agent))
    modern = assert_silent(lambda: SnmpClient(agent=agent))
    assert legacy._agent is modern._agent is agent
    with pytest.raises(TypeError), pytest.warns(DeprecationWarning):
        SnmpClient(agent, agent=agent)


def test_alias_resolver_shims(topology):
    for cls in (MidarResolver, SpeedtrapResolver, IcmpRateLimitOracle):
        legacy = assert_warns_positional(lambda: cls(topology))
        modern = assert_silent(lambda: cls(topology=topology))
        assert type(legacy) is type(modern)


def test_shim_rejects_ambiguous_and_excess_arguments(topology):
    with pytest.raises(TypeError), pytest.warns(DeprecationWarning):
        MidarResolver(topology, topology=topology)
    with pytest.raises(TypeError), pytest.warns(DeprecationWarning):
        MidarResolver(topology, 99, "extra")
    with pytest.warns(DeprecationWarning):
        MidarResolver(topology, 99)  # (topology, seed) still maps through
