"""OID001: OID string literals must be valid dotted OIDs."""

from __future__ import annotations

import pytest

from repro.devtools.lint.engine import lint_source
from repro.devtools.lint.rules import OidLiteralRule, oid_literal_error

from tests.devtools.conftest import load_fixture


def findings(source: str) -> list[tuple[str, int]]:
    diags, _ = lint_source(source, module="repro.fixture", rules=[OidLiteralRule()])
    return [(d.rule, d.line) for d in diags]


def test_bad_fixture_flags_every_marked_line():
    source, expected = load_fixture("oid001_bad.py")
    assert findings(source) == expected


def test_good_fixture_is_clean():
    source, expected = load_fixture("oid001_good.py")
    assert findings(source) == [] and expected == []


@pytest.mark.parametrize("text", [
    "1.3.6.1.2.1.1.1.0", "0.0", "2.999.1", ".1.3.6.1.4.1",
])
def test_valid_oids(text):
    assert oid_literal_error(text) is None


@pytest.mark.parametrize("text,fragment", [
    ("", "empty"),
    ("1.3.6.x", "not a non-negative integer"),
    ("1.3.06.1", "leading zero"),
    ("3.1.2", "first arc"),
    ("1.40.1", "second arc"),
    ("1.-3.6", "not a non-negative integer"),
])
def test_invalid_oids(text, fragment):
    error = oid_literal_error(text)
    assert error is not None and fragment in error
