"""IMP001: the dependency graph points strictly downward."""

from __future__ import annotations

from repro.devtools.lint.engine import lint_source
from repro.devtools.lint.rules import LayeringRule

from tests.devtools.conftest import load_fixture


def findings(source: str, module: str) -> list[tuple[str, int]]:
    diags, _ = lint_source(source, module=module, rules=[LayeringRule()])
    return [(d.rule, d.line) for d in diags]


def test_bad_fixture_flags_every_marked_line():
    source, expected = load_fixture("imp001_bad.py")
    assert findings(source, "repro.pipeline.fixture") == expected


def test_good_fixture_is_clean():
    source, expected = load_fixture("imp001_good.py")
    assert findings(source, "repro.pipeline.fixture") == [] and expected == []


def test_cli_may_import_experiments():
    source = "from repro.experiments import ExperimentContext\n"
    assert findings(source, "repro.cli") == []
    assert findings(source, "repro.scanner.executor") == [("IMP001", 1)]


def test_devtools_may_import_devtools():
    source = "from repro.devtools.lint.engine import Rule\n"
    assert findings(source, "repro.devtools.typegate") == []
    assert findings(source, "repro.snmp.agent") == [("IMP001", 1)]


def test_relative_imports_resolve_before_checking():
    # ``from .. import experiments`` inside repro.scanner.foo resolves to
    # ``repro.experiments`` and is flagged like the absolute spelling.
    source = "from ..experiments import context\n"
    assert findings(source, "repro.scanner.foo") == [("IMP001", 1)]
