"""Unit tests for the project graph: modules, resolution, call edges."""

from __future__ import annotations

from repro.devtools.flow.graph import MODULE_BODY, ProjectGraph


def build(sources: "dict[str, str]") -> ProjectGraph:
    return ProjectGraph.build_from_sources(sources)


class TestIndexing:
    def test_functions_classes_and_module_body(self):
        g = build({
            "pkg.mod": (
                "X = []\n"
                "def f():\n    return 1\n"
                "class C:\n    def m(self):\n        return 2\n"
            ),
        })
        assert "pkg.mod.f" in g.functions
        assert "pkg.mod.C" in g.classes
        assert "pkg.mod.C.m" in g.functions
        assert f"pkg.mod.{MODULE_BODY}" in g.functions
        assert g.modules["pkg.mod"].mutable_globals == {"X": 1}

    def test_parameter_capture_with_defaults(self):
        g = build({
            "pkg.mod": "def f(a, b=3, *, c, d=4):\n    return a\n",
        })
        fn = g.functions["pkg.mod.f"]
        assert fn.params == ("a", "b", "c", "d")
        assert set(fn.defaults) == {"b", "d"}

    def test_relative_imports_resolve_against_package(self):
        g = build({
            "pkg.sub.mod": "from ..sibling import helper\nfrom . import local\n",
        })
        aliases = g.modules["pkg.sub.mod"].aliases
        assert aliases["helper"] == "pkg.sibling.helper"
        assert aliases["local"] == "pkg.sub.local"

    def test_syntax_error_is_recorded_not_raised(self):
        g = build({"pkg.broken": "def broken(:\n"})
        assert "pkg.broken" not in g.modules
        assert list(g.syntax_errors.values())[0][0] == 1


class TestResolution:
    def test_call_to_module_function(self):
        g = build({
            "pkg.mod": "def helper():\n    return 0\ndef f():\n    return helper()\n",
        })
        callees = [s.callee for s in g.callees_of("pkg.mod.f")]
        assert callees == ["pkg.mod.helper"]

    def test_cross_module_call_through_alias(self):
        g = build({
            "pkg.a": "def shared():\n    return 0\n",
            "pkg.b": "from pkg.a import shared\ndef f():\n    return shared()\n",
        })
        assert [s.callee for s in g.callees_of("pkg.b.f")] == ["pkg.a.shared"]

    def test_reexport_chain_resolves_to_definition(self):
        # pkg/__init__ re-exports from pkg.impl; a third module imports
        # from the package and must land on the defining symbol.
        g = build({
            "pkg": "from pkg.impl import Widget\n",
            "pkg.impl": "class Widget:\n    def __init__(self):\n        self.x = 1\n",
            "app.main": "from pkg import Widget\ndef f():\n    return Widget()\n",
        })
        assert g.canonical("pkg.Widget") == "pkg.impl.Widget"
        assert [s.callee for s in g.callees_of("app.main.f")] == ["pkg.impl.Widget"]

    def test_reexport_cycle_terminates(self):
        g = build({
            "pkg.a": "from pkg.b import thing\n",
            "pkg.b": "from pkg.a import thing\n",
        })
        # Neither module defines ``thing``; canonical() must not loop.
        resolved = g.canonical("pkg.a.thing")
        assert resolved in ("pkg.a.thing", "pkg.b.thing")

    def test_call_cycle_builds_both_edges(self):
        g = build({
            "pkg.mod": (
                "def even(n):\n    return n == 0 or odd(n - 1)\n"
                "def odd(n):\n    return n != 0 and even(n - 1)\n"
            ),
        })
        assert [s.callee for s in g.callees_of("pkg.mod.even")] == ["pkg.mod.odd"]
        assert [s.callee for s in g.callees_of("pkg.mod.odd")] == ["pkg.mod.even"]
        assert [s.caller for s in g.callers_of("pkg.mod.even")] == ["pkg.mod.odd"]

    def test_self_method_dispatch_and_base_hop(self):
        g = build({
            "pkg.mod": (
                "class Base:\n"
                "    def inherited(self):\n        return 1\n"
                "class Child(Base):\n"
                "    def f(self):\n        return self.inherited() + self.g()\n"
                "    def g(self):\n        return 2\n"
            ),
        })
        callees = sorted(s.callee for s in g.callees_of("pkg.mod.Child.f"))
        assert callees == ["pkg.mod.Base.inherited", "pkg.mod.Child.g"]

    def test_dynamic_attr_fallback_matches_by_method_name(self):
        g = build({
            "pkg.a": "class Impl:\n    def run_shard(self, k):\n        return k\n",
            "pkg.b": (
                "def f(runner):\n    return runner.run_shard(1)\n"
            ),
        })
        sites = g.callees_of("pkg.b.f")
        assert [(s.callee, s.dynamic) for s in sites] == [
            ("pkg.a.Impl.run_shard", True),
        ]

    def test_dynamic_fallback_caps_candidate_fanout(self):
        sources = {
            f"pkg.m{i}": f"class C{i}:\n    def run(self):\n        return {i}\n"
            for i in range(6)
        }
        sources["pkg.use"] = "def f(obj):\n    return obj.run()\n"
        g = build(sources)
        # Six candidates named ``run`` exceed the cap: no edges at all.
        assert g.callees_of("pkg.use.f") == []

    def test_constructor_site_reaches_init_via_callers_of(self):
        g = build({
            "pkg.mod": (
                "class C:\n    def __init__(self, x):\n        self.x = x\n"
                "def make():\n    return C(5)\n"
            ),
        })
        sites = g.callers_of("pkg.mod.C.__init__")
        assert [s.caller for s in sites] == ["pkg.mod.make"]

    def test_bind_arguments_skips_self_and_maps_keywords(self):
        g = build({
            "pkg.mod": (
                "class C:\n    def __init__(self, x, y=0):\n        self.x = x\n"
                "def make():\n    return C(5, y=7)\n"
            ),
        })
        init = g.functions["pkg.mod.C.__init__"]
        site = g.callers_of("pkg.mod.C.__init__")[0]
        bound = g.bind_arguments(init, site.node)
        assert sorted(bound) == ["x", "y"]
        assert bound["x"].value == 5
        assert bound["y"].value == 7
