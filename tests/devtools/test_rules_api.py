"""API001: blessed facade classes construct keyword-only."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.lint.engine import lint_source
from repro.devtools.lint.rules import ApiKeywordOnlyRule

from tests.devtools.conftest import load_fixture

MODULE = "fixture_api"
BLESSED = {MODULE: {"Gadget", "Point"}}


def findings(source: str) -> list[tuple[str, int]]:
    rule = ApiKeywordOnlyRule(blessed=BLESSED)
    diags, _ = lint_source(source, module=MODULE, rules=[rule])
    return [(d.rule, d.line) for d in diags]


def test_bad_fixture_flags_the_positional_init():
    source, expected = load_fixture("api001_bad.py")
    assert findings(source) == expected


def test_good_fixture_shim_and_dataclass_pass():
    source, expected = load_fixture("api001_good.py")
    assert findings(source) == [] and expected == []


def test_unblessed_class_is_not_checked():
    source, _ = load_fixture("api001_bad.py")
    rule = ApiKeywordOnlyRule(blessed={MODULE: {"SomethingElse"}})
    diags, _ = lint_source(source, module=MODULE, rules=[rule])
    assert diags == []


def test_blessed_surface_discovered_from_real_package():
    """Against the real tree, the rule resolves re-export chains down to
    the defining module — e.g. ``SnmpClient`` blessed in
    ``repro/__init__.py`` but defined in ``repro.snmp.client``."""
    root = Path(__file__).resolve().parents[2] / "src" / "repro"
    rule = ApiKeywordOnlyRule()
    source = (root / "snmp" / "client.py").read_text(encoding="utf-8")
    # Prime discovery via a context rooted in the real package.
    diags, _ = lint_source(
        source,
        module="repro.snmp.client",
        rules=[rule],
        path=root / "snmp" / "client.py",
        package_root=root,
    )
    blessed = rule._blessed or {}
    assert "SnmpClient" in blessed.get("repro.snmp.client", set())
    # The final tree is keyword-only everywhere, so no findings.
    assert diags == []
