"""The lint engine: suppressions, reports, discovery."""

from __future__ import annotations

import ast
import json
from typing import Iterator

from repro.devtools.lint.engine import (
    SYNTAX_RULE,
    Diagnostic,
    FileContext,
    LintReport,
    Rule,
    iter_python_files,
    lint_source,
    module_name_for,
    run_lint,
)


class FlagEveryCall(Rule):
    """Test rule: one diagnostic per function call."""

    rule_id = "TEST001"
    summary = "flags every call"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield ctx.diagnostic(self.rule_id, node, "a call")


class FlagEveryDef(Rule):
    rule_id = "TEST002"
    summary = "flags every def"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield ctx.diagnostic(self.rule_id, node, "a def")


class TestSuppressions:
    def test_same_line_comment_suppresses(self):
        diags, suppressed = lint_source(
            "f()  # repro-lint: disable=TEST001\ng()\n",
            module="m", rules=[FlagEveryCall()],
        )
        assert [(d.rule, d.line) for d in diags] == [("TEST001", 2)]
        assert suppressed == 1

    def test_comma_list_suppresses_multiple_rules(self):
        source = "def h():  # repro-lint: disable=TEST001,TEST002\n    f()\n"
        # TEST002 fires on line 1 (the def); the suppression list names it.
        # The TEST001 half of the marker silences nothing on line 1, so
        # the stale-suppression sweep reports it as LINT001.
        diags, suppressed = lint_source(
            source, module="m", rules=[FlagEveryCall(), FlagEveryDef()]
        )
        assert [(d.rule, d.line) for d in diags] == [
            ("LINT001", 1), ("TEST001", 2),
        ]
        assert suppressed == 1

    def test_other_rules_still_fire_on_a_suppressed_line(self):
        source = "def h(): f()  # repro-lint: disable=TEST002\n"
        diags, suppressed = lint_source(
            source, module="m", rules=[FlagEveryCall(), FlagEveryDef()]
        )
        assert [(d.rule, d.line) for d in diags] == [("TEST001", 1)]
        assert suppressed == 1

    def test_marker_inside_string_literal_does_not_suppress(self):
        source = 'f("# repro-lint: disable=TEST001")\n'
        diags, suppressed = lint_source(source, module="m", rules=[FlagEveryCall()])
        assert [(d.rule, d.line) for d in diags] == [("TEST001", 1)]
        assert suppressed == 0

    def test_syntax_errors_cannot_be_suppressed(self):
        source = "def broken(:  # repro-lint: disable=SYNTAX\n"
        diags, suppressed = lint_source(source, module="m", rules=[FlagEveryCall()])
        assert len(diags) == 1 and diags[0].rule == SYNTAX_RULE
        assert suppressed == 0


class TestReport:
    def test_json_schema(self):
        report = LintReport(
            diagnostics=[
                Diagnostic(rule="TEST001", path="a.py", line=3, col=1, message="x"),
                Diagnostic(rule="TEST001", path="a.py", line=9, col=1, message="y"),
                Diagnostic(rule="TEST002", path="b.py", line=1, col=1, message="z"),
            ],
            files=2,
            suppressed=1,
        )
        data = json.loads(report.format_json())
        assert data["schema_version"] == 2
        assert "version" not in data
        assert data["files"] == 2
        assert data["suppressed"] == 1
        assert data["counts"] == {"TEST001": 2, "TEST002": 1}
        assert data["diagnostics"][0] == {
            "rule": "TEST001", "path": "a.py", "line": 3, "col": 1, "message": "x",
        }
        assert not report.ok

    def test_human_format_summarises(self):
        clean = LintReport(files=4)
        assert clean.ok
        assert "clean: 4 files" in clean.format_human()

    def test_diagnostics_sorted_by_location(self):
        source = "g()\nf()\n"
        diags, _ = lint_source(source, module="m", rules=[FlagEveryCall()])
        assert [d.line for d in diags] == [1, 2]


class TestDiscovery:
    def test_module_name_walks_init_chain(self, tmp_path):
        pkg = tmp_path / "toppkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "toppkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("")
        module, root = module_name_for(pkg / "mod.py")
        assert module == "toppkg.sub.mod"
        assert root == (tmp_path / "toppkg").resolve()
        assert module_name_for(pkg / "__init__.py")[0] == "toppkg.sub"

    def test_loose_file_maps_to_stem(self, tmp_path):
        loose = tmp_path / "script.py"
        loose.write_text("")
        module, root = module_name_for(loose)
        assert module == "script" and root is None

    def test_iter_python_files_dedupes_and_skips_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.pyc.py").write_text("")
        files = iter_python_files([tmp_path, tmp_path / "a.py"])
        assert files == [tmp_path / "a.py"]

    def test_run_lint_counts_files(self, tmp_path):
        (tmp_path / "one.py").write_text("f()\n")
        (tmp_path / "two.py").write_text("x = 1\n")
        report = run_lint([tmp_path], rules=[FlagEveryCall()])
        assert report.files == 2
        assert [(d.rule, d.line) for d in report.diagnostics] == [("TEST001", 1)]
