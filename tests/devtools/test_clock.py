"""The injectable clock that satisfies DET001 for elapsed-time reporting."""

from __future__ import annotations

import pytest

from repro import cli
from repro.clock import ManualClock, PerfCounterClock, Stopwatch


def test_manual_clock_advances_explicitly():
    clock = ManualClock(start=100.0)
    assert clock.now() == 100.0
    clock.advance(2.5)
    assert clock.now() == 102.5


def test_manual_clock_refuses_to_go_backwards():
    with pytest.raises(ValueError):
        ManualClock().advance(-1.0)


def test_stopwatch_measures_against_injected_clock():
    clock = ManualClock()
    stopwatch = Stopwatch(clock)
    clock.advance(3.25)
    assert stopwatch.elapsed() == 3.25


def test_stopwatch_defaults_to_perf_counter():
    stopwatch = Stopwatch()
    assert isinstance(stopwatch._clock, PerfCounterClock)
    assert stopwatch.elapsed() >= 0.0


def test_cli_scan_reports_deterministic_elapsed_time(tmp_path, capsys, monkeypatch):
    """End to end: with a ManualClock injected, the CLI's "done in Ns"
    line is exact — the wall-clock dependency is fully out of the path."""
    monkeypatch.setattr(cli, "DEFAULT_CLOCK", ManualClock())
    rc = cli.main([
        "scan", "--scale", "3000", "--seed", "7", "--out", str(tmp_path / "run"),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "done in 0.0s" in out
