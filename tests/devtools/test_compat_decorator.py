"""Unit contract of the shared ``keyword_only_compat`` decorator.

The nine migrated classes all ride on this one shim now; these tests pin
the decorator's own behavior so a refactor can't silently change what
every facade constructor accepts.  ``tests/devtools/test_kwonly_shims.py``
covers the real classes end to end.
"""

from __future__ import annotations

import warnings

import pytest

from repro.compat import keyword_only_compat
from repro.devtools.compat import keyword_only_compat as reexported


@keyword_only_compat("left", "right", "scale")
class Example:
    """Docstring preserved through the shim."""

    def __init__(self, *, left=None, right=None, scale=1.0):
        if left is None:
            raise TypeError("Example requires a left")
        self.left = left
        self.right = right
        self.scale = scale


def test_keyword_calls_are_silent_and_unchanged():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        example = Example(left=1, right=2, scale=0.5)
    assert (example.left, example.right, example.scale) == (1, 2, 0.5)


def test_positional_call_maps_in_declared_order_with_warning():
    with pytest.warns(DeprecationWarning, match="positional"):
        example = Example(1, 2, 0.5)
    assert (example.left, example.right, example.scale) == (1, 2, 0.5)


def test_positional_prefix_keeps_keyword_defaults():
    with pytest.warns(DeprecationWarning):
        example = Example(1)
    assert (example.left, example.right, example.scale) == (1, None, 1.0)


def test_mixing_positional_and_keyword_for_other_names_works():
    with pytest.warns(DeprecationWarning):
        example = Example(1, scale=3.0)
    assert (example.left, example.right, example.scale) == (1, None, 3.0)


def test_same_name_both_ways_raises_after_warning():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="both positionally and by keyword"):
            Example(1, left=1)


def test_excess_positional_arguments_raise_after_warning():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="at most 3 positional"):
            Example(1, 2, 0.5, "extra")


def test_wrapped_validation_still_runs():
    with pytest.raises(TypeError, match="requires a left"):
        Example()


def test_metadata_and_wrapped_are_preserved():
    assert Example.__init__.__doc__ is None or isinstance(
        Example.__init__.__doc__, str
    )
    assert Example.__init__.__qualname__ == "Example.__init__"
    assert Example.__init__.__wrapped__ is not Example.__init__


def test_zero_names_is_a_programming_error():
    with pytest.raises(ValueError):
        keyword_only_compat()


def test_devtools_reexport_is_the_same_object():
    assert reexported is keyword_only_compat
