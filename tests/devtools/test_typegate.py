"""TYP001 and the [tool.repro.typegate] ratchet."""

from __future__ import annotations

from repro.devtools import typegate
from repro.devtools.lint.engine import lint_source
from repro.devtools.typegate import AnnotationCompletenessRule, load_strict_modules

from tests.devtools.conftest import load_fixture


def findings(source: str, module: str, strict=("repro",)) -> list[tuple[str, int]]:
    rule = AnnotationCompletenessRule(strict)
    diags, _ = lint_source(source, module=module, rules=[rule])
    return [(d.rule, d.line) for d in diags]


def test_bad_fixture_flags_every_marked_line():
    source, expected = load_fixture("typ001_bad.py")
    assert findings(source, "repro.fixture") == expected


def test_good_fixture_is_clean():
    source, expected = load_fixture("typ001_good.py")
    assert findings(source, "repro.fixture") == [] and expected == []


def test_unratcheted_module_is_exempt():
    source, _ = load_fixture("typ001_bad.py")
    assert findings(source, "elsewhere.fixture") == []
    assert findings(source, "repro.fixture", strict=("repro.other",)) == []


def test_prefix_matching_does_not_leak_across_names():
    source, _ = load_fixture("typ001_bad.py")
    # "repro" ratchets "repro.x" but not "reproduction.x".
    assert findings(source, "reproduction.fixture") == []


def test_missing_pieces_named_in_message():
    source = "def f(a, *, b):\n    pass\n"
    rule = AnnotationCompletenessRule(["m"])
    diags, _ = lint_source(source, module="m", rules=[rule])
    assert len(diags) == 1
    message = diags[0].message
    assert "'a'" in message and "'b'" in message and "return type" in message


class TestRatchetTable:
    def test_reads_strict_list_from_pyproject(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.typegate]\nstrict = [\"repro.snmp\", \"repro.asn1\"]\n"
        )
        assert load_strict_modules(pyproject) == ("repro.snmp", "repro.asn1")

    def test_missing_file_falls_back(self, tmp_path):
        assert load_strict_modules(tmp_path / "absent.toml") == typegate.FALLBACK_STRICT

    def test_malformed_table_falls_back(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro.typegate]\nstrict = \"oops\"\n")
        assert load_strict_modules(pyproject) == typegate.FALLBACK_STRICT


class TestTypegateCli:
    def test_exit_codes(self, tmp_path, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro.typegate]\nstrict = [\"target\"]\n")
        bad = tmp_path / "target.py"
        bad.write_text("def f(x):\n    return x\n")
        argv = [str(bad), "--pyproject", str(pyproject)]
        assert typegate.main(argv) == 1
        assert "TYP001" in capsys.readouterr().out
        assert typegate.main(argv + ["--informational"]) == 0
        bad.write_text("def f(x: int) -> int:\n    return x\n")
        assert typegate.main(argv) == 0

    def test_list_modules(self, tmp_path, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro.typegate]\nstrict = [\"a\", \"b\"]\n")
        assert typegate.main(["--pyproject", str(pyproject), "--list-modules"]) == 0
        assert capsys.readouterr().out.split() == ["a", "b"]
