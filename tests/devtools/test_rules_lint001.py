"""LINT001: suppression markers must still silence a live diagnostic."""

from __future__ import annotations

from repro.devtools.lint.engine import lint_source
from repro.devtools.lint.rules import default_rules

from tests.devtools.conftest import load_fixture


def run_fixture(name):
    source, expected = load_fixture(name)
    diags, _ = lint_source(source, module="m", rules=default_rules())
    got = sorted(((d.rule, d.line) for d in diags), key=lambda t: (t[1], t[0]))
    return got, expected


def test_bad_fixture_flags_every_marked_line():
    got, expected = run_fixture("lint001_bad.py")
    assert got == expected
    assert ("LINT001", expected[0][1]) in got  # sweep actually fired


def test_good_fixture_is_clean():
    got, expected = run_fixture("lint001_good.py")
    assert got == [] and expected == []


def test_inactive_rules_do_not_make_markers_stale():
    # A DET001 marker is only auditable when DET001 is among the active
    # rules; a TYP-only run (the typegate) must not flag lint markers.
    source, _ = load_fixture("lint001_good.py")
    det_only = [r for r in default_rules() if r.rule_id == "DET001"]
    proto_only = [r for r in default_rules() if r.rule_id == "PROTO001"]
    diags, _ = lint_source(source, module="m", rules=proto_only)
    assert diags == []
    # ...while the full-rule run still counts the suppression as used.
    diags, suppressed = lint_source(source, module="m", rules=det_only)
    assert diags == [] and suppressed == 1


def test_lint001_is_itself_suppressible():
    # The DET001 half of the marker is stale, but the marker also names
    # LINT001, which silences the sweep's own diagnostic on that line.
    source = (
        "import time\n"
        "\n"
        "\n"
        "def f() -> float:\n"
        "    return time.perf_counter()  # repro-lint: disable=DET001,LINT001\n"
    )
    diags, suppressed = lint_source(source, module="m", rules=default_rules())
    assert diags == []
    assert suppressed == 1  # the swallowed LINT001
