"""API002: the facade's flat keyword surface is frozen."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.lint.engine import lint_source
from repro.devtools.lint.rules import ApiFlatKwargGrowthRule


def findings(source: str, module: str = "repro.api") -> list[str]:
    diags, _ = lint_source(source, module=module, rules=[ApiFlatKwargGrowthRule()])
    return [d.rule for d in diags]


FROZEN_SESSION = """
class Session:
    def __init__(self, *, scale=300.0, seed=2021, config=None, options=None,
                 workers=None, num_shards=None, batch_size=None,
                 loss_probability=None, fault_profile=None, retry=None,
                 profile=False, reboot_threshold=None, skip=frozenset(),
                 store=None):
        pass

    def run_campaign(self, *, round_id=None, options=None):
        pass
"""


def test_grandfathered_surface_is_clean():
    assert findings(FROZEN_SESSION) == []


def test_new_flat_kwarg_on_init_is_flagged():
    grown = FROZEN_SESSION.replace("store=None):", "store=None, turbo=False):")
    assert findings(grown) == ["API002"]


def test_new_flat_kwarg_on_run_campaign_is_flagged():
    grown = FROZEN_SESSION.replace(
        "round_id=None, options=None):", "round_id=None, options=None, window=None):"
    )
    assert findings(grown) == ["API002"]


def test_positional_growth_is_flagged_too():
    grown = FROZEN_SESSION.replace(
        "def run_campaign(self, *,", "def run_campaign(self, turbo,"
    )
    assert findings(grown) == ["API002"]


def test_other_modules_and_methods_are_out_of_scope():
    assert findings(FROZEN_SESSION, module="repro.scanner.campaign") == []
    helper = "class Session:\n    def helper(self, anything, at_all=None):\n        pass\n"
    assert findings(helper) == []


def test_real_facade_is_clean():
    root = Path(__file__).resolve().parents[2] / "src" / "repro"
    source = (root / "api.py").read_text(encoding="utf-8")
    assert findings(source) == []
