"""The ``python -m repro.devtools.flow`` front end.

Each test runs the CLI against a throwaway tree and an explicit
``--baseline`` so the repo's own pyproject/baseline never leak in.
"""

from __future__ import annotations

import json

from repro.devtools.flow import cli

#: One RES001 defect (handle acquired, never released on any path).
DIRTY = (
    "def leak(path):\n"
    "    handle = path.open('w')\n"
    "    handle.write('x')\n"
    "    return 1\n"
)

CLEAN = (
    "def fine(path):\n"
    "    with path.open('w') as handle:\n"
    "        handle.write('x')\n"
    "    return 1\n"
)


def run(tmp_path, source, *extra):
    (tmp_path / "mod.py").write_text(source)
    baseline = tmp_path / "flow-baseline.json"
    return cli.main([str(tmp_path), "--baseline", str(baseline), *extra])


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    assert run(tmp_path, CLEAN) == 0
    assert "flow clean: 1 files, 0 findings" in capsys.readouterr().out


def test_exit_one_on_findings(tmp_path, capsys):
    assert run(tmp_path, DIRTY) == 1
    out = capsys.readouterr().out
    assert "RES001" in out and "mod.py:2:" in out


def test_informational_reports_but_exits_zero(tmp_path, capsys):
    assert run(tmp_path, DIRTY, "--informational") == 0
    assert "RES001" in capsys.readouterr().out


def test_json_report_shape(tmp_path, capsys):
    assert run(tmp_path, DIRTY, "--format", "json") == 1
    data = json.loads(capsys.readouterr().out)
    assert data["schema_version"] == cli.JSON_SCHEMA_VERSION
    assert data["tool"] == "repro.devtools.flow"
    assert data["counts"] == {"RES001": 1}
    assert data["rules"] == ["SEED001", "FORK001", "RES001"]
    assert data["ok"] is False
    finding = data["findings"][0]
    assert finding["rule"] == "RES001"
    assert finding["path"] == "mod.py"
    assert finding["line"] == 2
    assert isinstance(finding["chain"], list)
    assert data["baseline"] == {"matched": 0, "new": 1, "stale": []}


class TestRuleFilters:
    def test_select_restricts_rules(self, tmp_path):
        assert run(tmp_path, DIRTY, "--select", "SEED001") == 0
        assert run(tmp_path, DIRTY, "--select", "seed001,res001") == 1

    def test_ignore_drops_rules(self, tmp_path):
        assert run(tmp_path, DIRTY, "--ignore", "RES001") == 0

    def test_ignore_wins_over_select(self, tmp_path):
        code = run(
            tmp_path, DIRTY, "--select", "RES001", "--ignore", "RES001"
        )
        assert code == 0

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert run(tmp_path, DIRTY, "--select", "NOPE999") == 2
        assert "unknown rule" in capsys.readouterr().err
        assert run(tmp_path, DIRTY, "--ignore", "NOPE999") == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_selected_rules_are_echoed_in_json(self, tmp_path, capsys):
        run(tmp_path, DIRTY, "--select", "RES001", "--format", "json")
        data = json.loads(capsys.readouterr().out)
        assert data["rules"] == ["RES001"]


class TestBaseline:
    def test_update_baseline_then_rerun_is_clean(self, tmp_path, capsys):
        assert run(tmp_path, DIRTY, "--update-baseline") == 0
        assert "wrote 1 finding(s)" in capsys.readouterr().out
        assert run(tmp_path, DIRTY) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_stale_baseline_entry_fails(self, tmp_path, capsys):
        assert run(tmp_path, DIRTY, "--update-baseline") == 0
        capsys.readouterr()
        # The defect is fixed but the baseline entry remains: ratchet.
        assert run(tmp_path, CLEAN) == 1
        assert "stale" in capsys.readouterr().out

    def test_unreadable_baseline_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "flow-baseline.json").write_text("{not json")
        assert run(tmp_path, CLEAN) == 2
        assert "unreadable flow baseline" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert cli.main([str(tmp_path / "absent")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_syntax_error_is_usage_error(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def broken(:\n")
    baseline = tmp_path / "flow-baseline.json"
    assert cli.main([str(tmp_path), "--baseline", str(baseline)]) == 2
    assert "broken.py" in capsys.readouterr().err


def test_list_rules_names_all_three(capsys):
    assert cli.main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SEED001", "FORK001", "RES001"):
        assert rule_id in out
