"""The ``python -m repro.devtools.lint`` front end."""

from __future__ import annotations

import json

from repro.devtools.lint import cli
from repro.devtools.lint.rules import DEFAULT_RULES

CLEAN = "import time\n\n\ndef f() -> float:\n    return time.perf_counter()\n"
DIRTY = "import time\n\n\ndef f():\n    return time.time()\n"


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "good.py").write_text(CLEAN)
    assert cli.main([str(tmp_path)]) == 0
    assert "clean: 1 files" in capsys.readouterr().out


def test_exit_one_on_findings(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert cli.main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "bad.py:5:" in out


def test_informational_mode_reports_but_exits_zero(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert cli.main([str(tmp_path), "--informational"]) == 0
    assert "DET001" in capsys.readouterr().out


def test_json_format_is_parseable(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert cli.main([str(tmp_path), "--format", "json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["counts"] == {"DET001": 1}
    assert data["diagnostics"][0]["rule"] == "DET001"


def test_select_restricts_rules(tmp_path):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert cli.main([str(tmp_path), "--select", "OID001"]) == 0
    assert cli.main([str(tmp_path), "--select", "oid001,det001"]) == 1


def test_unknown_select_is_usage_error(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert cli.main([str(tmp_path), "--select", "NOPE999"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_ignore_drops_rules(tmp_path):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert cli.main([str(tmp_path), "--ignore", "DET001"]) == 0


def test_ignore_wins_over_select(tmp_path):
    (tmp_path / "bad.py").write_text(DIRTY)
    code = cli.main(
        [str(tmp_path), "--select", "DET001", "--ignore", "det001"]
    )
    assert code == 0


def test_unknown_ignore_is_usage_error(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert cli.main([str(tmp_path), "--ignore", "NOPE999"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_lint001_is_a_known_filter_id(tmp_path):
    # LINT001 has no Rule instance but both flags must accept it.
    (tmp_path / "bad.py").write_text(DIRTY)
    assert cli.main([str(tmp_path), "--ignore", "LINT001"]) == 1


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert cli.main([str(tmp_path / "absent")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_names_all_seven(capsys):
    assert cli.main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert set(DEFAULT_RULES) == {
        "DET001", "DET002", "PROTO001", "API001", "API002", "OID001", "IMP001",
    }
    for rule_id in DEFAULT_RULES:
        assert rule_id in out
    assert "LINT001" in out  # the engine-level sweep is listed too
