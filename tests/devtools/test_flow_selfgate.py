"""The flow analyzer's gate over this repo itself.

Mirrors ``test_self_gate.py``: a PR that introduces an unseeded RNG
path, a fork-unsafe capture, or a resource leak into ``src/repro``
fails the plain tier-1 test run, not just the dedicated CI job.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.flow import baseline as bl
from repro.devtools.flow.graph import ProjectGraph
from repro.devtools.flow.rules import run_rules

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"


def test_src_repro_passes_the_flow_analyzer():
    graph = ProjectGraph.build([SRC])
    assert not graph.syntax_errors
    assert len(graph.modules) > 90  # the whole package was actually scanned
    findings = run_rules(graph)
    allowed = bl.load_baseline(bl.locate_baseline(REPO / "pyproject.toml"))
    delta = bl.compare(findings, allowed, root=REPO)
    lines = [
        f"{f.path}:{f.line}: {f.rule} [{f.symbol}] {f.message}"
        for f in delta.new
    ] + [f"stale baseline entry: {entry}" for entry in delta.stale]
    assert delta.ok, "\n" + "\n".join(lines)


def test_the_committed_baseline_is_empty():
    # The ratchet starts fully paid down; this assertion is the floor.
    # If debt ever has to be baselined, replace this with a count ceiling.
    allowed = bl.load_baseline(REPO / "flow-baseline.json")
    assert sum(allowed.values()) == 0
