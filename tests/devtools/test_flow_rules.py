"""SEED001 / FORK001 / RES001 against the per-rule fixture files.

Each fixture is registered in an in-memory project graph under a
``repro.scanner.*`` module name so the scope gates apply, exactly as
they would for real files under ``src/repro``.
"""

from __future__ import annotations

from repro.devtools.flow.graph import ProjectGraph
from repro.devtools.flow.rules import run_rules

from tests.devtools.conftest import load_fixture

#: Minimal stand-in for ``repro.scanner.pool`` so the fork fixtures can
#: resolve their ``WorkerPool(runner=...)`` capture sites in-graph.
POOL_STUB = (
    "class WorkerPool:\n"
    "    def __init__(self, *, workers, runner):\n"
    "        self.workers = workers\n"
)


def findings_for(
    fixture: str, rule: str, extra: "dict[str, str] | None" = None
) -> "list[tuple[str, int]]":
    source, _ = load_fixture(f"{fixture}.py")
    sources = {f"repro.scanner.{fixture}": source}
    if extra:
        sources.update(extra)
    graph = ProjectGraph.build_from_sources(sources)
    return [
        (f.rule, f.line)
        for f in run_rules(graph, select=[rule])
        if f.symbol.startswith(f"repro.scanner.{fixture}")
    ]


def expected_for(fixture: str) -> "list[tuple[str, int]]":
    _, expected = load_fixture(f"{fixture}.py")
    return expected


class TestSeed001:
    def test_bad_fixture_flags_every_marked_line(self):
        expected = [e for e in expected_for("seed001_bad") if e[0] == "SEED001"]
        assert findings_for("seed001_bad", "SEED001") == expected
        assert expected  # fixture is not accidentally empty

    def test_good_fixture_is_clean(self):
        assert findings_for("seed001_good", "SEED001") == []
        assert expected_for("seed001_good") == []

    def test_out_of_scope_module_is_not_flagged(self):
        source, _ = load_fixture("seed001_bad.py")
        graph = ProjectGraph.build_from_sources({"repro.analysis.off": source})
        assert run_rules(graph, select=["SEED001"]) == []

    def test_chain_is_reported_for_interprocedural_flow(self):
        source, _ = load_fixture("seed001_bad.py")
        graph = ProjectGraph.build_from_sources(
            {"repro.scanner.seed001_bad": source}
        )
        chained = [
            f
            for f in run_rules(graph, select=["SEED001"])
            if f.symbol.endswith("constant_through_chain")
        ]
        assert len(chained) == 1
        assert chained[0].chain == (
            "repro.scanner.seed001_bad.constant_through_chain",
            "repro.scanner.seed001_bad.relay",
            "repro.scanner.seed001_bad.make_stream",
        )


class TestFork001:
    EXTRA = {"repro.scanner.pool": POOL_STUB}

    def test_bad_fixture_flags_every_marked_line(self):
        expected = [e for e in expected_for("fork001_bad") if e[0] == "FORK001"]
        assert findings_for("fork001_bad", "FORK001", self.EXTRA) == expected
        assert expected

    def test_good_fixture_is_clean(self):
        assert findings_for("fork001_good", "FORK001", self.EXTRA) == []
        assert expected_for("fork001_good") == []

    def test_pool_contract_applies_without_the_pool_module(self):
        # Analyzing a subset of files that imports WorkerPool must still
        # audit capture sites against the known pool contract.
        source, _ = load_fixture("fork001_bad.py")
        graph = ProjectGraph.build_from_sources(
            {"repro.scanner.fork001_bad": source}
        )
        expected = [e for e in expected_for("fork001_bad") if e[0] == "FORK001"]
        got = [(f.rule, f.line) for f in run_rules(graph, select=["FORK001"])]
        assert got == expected


class TestRes001:
    def test_bad_fixture_flags_every_marked_line(self):
        expected = [e for e in expected_for("res001_bad") if e[0] == "RES001"]
        assert findings_for("res001_bad", "RES001") == expected
        assert expected

    def test_good_fixture_is_clean(self):
        assert findings_for("res001_good", "RES001") == []
        assert expected_for("res001_good") == []

    def test_res001_applies_outside_the_seed_scope_too(self):
        # Resource lifecycle is not gated on scanner/topology/net.
        source, _ = load_fixture("res001_bad.py")
        graph = ProjectGraph.build_from_sources({"repro.io.off": source})
        assert run_rules(graph, select=["RES001"]) != []
