"""The gate applied to this repo itself.

These tests make the invariant linter and the typing ratchet part of
tier-1: a PR that reintroduces ``time.time()`` into ``src/repro`` or an
unannotated signature into a ratcheted module fails the plain test run,
not just the dedicated CI job.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.lint.engine import run_lint
from repro.devtools.lint.rules import default_rules
from repro.devtools.typegate import AnnotationCompletenessRule, load_strict_modules

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"


def test_src_repro_passes_the_invariant_linter():
    report = run_lint([SRC], rules=default_rules())
    assert report.ok, "\n" + report.format_human()
    assert report.files > 90  # the whole package was actually scanned


def test_the_whole_package_is_ratcheted():
    strict = load_strict_modules(REPO / "pyproject.toml")
    assert "repro" in strict


def test_src_repro_passes_the_typegate():
    strict = load_strict_modules(REPO / "pyproject.toml")
    report = run_lint([SRC], rules=[AnnotationCompletenessRule(strict)])
    assert report.ok, "\n" + report.format_human()
