"""Shared helpers for the devtools test suite.

Fixture modules under ``fixtures/`` mark every expected finding with a
trailing ``# expect: RULEID`` comment; :func:`load_fixture` parses those
markers so the tests assert exact rule IDs *and* exact line numbers
without hand-maintained line tables.
"""

from __future__ import annotations

import re
from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9]+)")


def load_fixture(name: str) -> tuple[str, list[tuple[str, int]]]:
    """Return ``(source, [(rule_id, line), ...])`` for one fixture file."""
    source = (FIXTURES / name).read_text(encoding="utf-8")
    expected = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        # A line may expect several rules (``# expect: A  # expect: B``);
        # collect them sorted so tests can compare exact pair lists.
        for rule_id in sorted(_EXPECT_RE.findall(line)):
            expected.append((rule_id, lineno))
    return source, expected
