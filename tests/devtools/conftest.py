"""Shared helpers for the devtools test suite.

Fixture modules under ``fixtures/`` mark every expected finding with a
trailing ``# expect: RULEID`` comment; :func:`load_fixture` parses those
markers so the tests assert exact rule IDs *and* exact line numbers
without hand-maintained line tables.
"""

from __future__ import annotations

import re
from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9]+)")


def load_fixture(name: str) -> tuple[str, list[tuple[str, int]]]:
    """Return ``(source, [(rule_id, line), ...])`` for one fixture file."""
    source = (FIXTURES / name).read_text(encoding="utf-8")
    expected = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            expected.append((match.group(1), lineno))
    return source, expected
