"""DET001 (wall-clock/entropy) and DET002 (shared mutable state)."""

from __future__ import annotations

from repro.devtools.lint.engine import lint_source
from repro.devtools.lint.rules import SharedStateRule, WallClockEntropyRule

from tests.devtools.conftest import load_fixture


def findings(source: str, module: str, rule) -> tuple[list[tuple[str, int]], int]:
    diags, suppressed = lint_source(source, module=module, rules=[rule])
    return [(d.rule, d.line) for d in diags], suppressed


class TestDet001:
    def test_bad_fixture_flags_every_marked_line(self):
        source, expected = load_fixture("det001_bad.py")
        got, suppressed = findings(source, "repro.scanner.fixture", WallClockEntropyRule())
        assert got == expected
        assert expected  # the fixture is not accidentally empty

    def test_suppression_comment_silences_exactly_one(self):
        source, _ = load_fixture("det001_bad.py")
        _, suppressed = findings(source, "repro.scanner.fixture", WallClockEntropyRule())
        assert suppressed == 1  # the time.time() in quiet()

    def test_good_fixture_is_clean(self):
        source, expected = load_fixture("det001_good.py")
        got, suppressed = findings(source, "repro.scanner.fixture", WallClockEntropyRule())
        assert got == [] and expected == []
        assert suppressed == 0

    def test_applies_outside_scanner_too(self):
        # DET001 is repo-wide, not scoped to the fork-pool packages.
        got, _ = findings(
            "import time\nx = time.time()\n", "repro.analysis.thing", WallClockEntropyRule()
        )
        assert got == [("DET001", 2)]

    def test_import_alias_is_resolved(self):
        got, _ = findings(
            "import time as t\nx = t.time()\n", "repro.m", WallClockEntropyRule()
        )
        assert got == [("DET001", 2)]

    def test_seeded_default_rng_passes(self):
        got, _ = findings(
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            "repro.m", WallClockEntropyRule(),
        )
        assert got == []


class TestDet002:
    def test_bad_fixture_flags_every_marked_line(self):
        source, expected = load_fixture("det002_bad.py")
        got, _ = findings(source, "repro.snmp.fixture", SharedStateRule())
        assert got == expected

    def test_good_fixture_is_clean(self):
        source, expected = load_fixture("det002_good.py")
        got, _ = findings(source, "repro.net.fixture", SharedStateRule())
        assert got == [] and expected == []

    def test_out_of_scope_module_is_ignored(self):
        # The same bad code outside scanner/net/snmp is not this rule's
        # business (analysis code may legitimately memoize).
        source, _ = load_fixture("det002_bad.py")
        got, _ = findings(source, "repro.analysis.fixture", SharedStateRule())
        assert got == []
