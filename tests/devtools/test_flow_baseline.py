"""Baseline mechanics: fingerprints, comparison, the ratchet."""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.devtools.flow import baseline as bl
from repro.devtools.flow.rules import FlowFinding


def finding(rule="RES001", path="src/repro/mod.py", symbol="repro.mod.f",
            line=3):
    return FlowFinding(
        rule=rule, path=path, line=line, col=0, symbol=symbol,
        message="test finding", chain=(symbol,),
    )


class TestCompare:
    def test_uncovered_finding_is_new(self):
        delta = bl.compare([finding()], Counter())
        assert len(delta.new) == 1
        assert not delta.matched and not delta.stale
        assert not delta.ok

    def test_covered_finding_matches(self):
        allowed = Counter({("RES001", "src/repro/mod.py", "repro.mod.f"): 1})
        delta = bl.compare([finding()], allowed)
        assert len(delta.matched) == 1
        assert delta.ok

    def test_counts_are_respected(self):
        # Two findings sharing a fingerprint against a count of one:
        # the second is new debt, not covered by the first's entry.
        allowed = Counter({("RES001", "src/repro/mod.py", "repro.mod.f"): 1})
        delta = bl.compare([finding(line=3), finding(line=9)], allowed)
        assert len(delta.matched) == 1 and len(delta.new) == 1

    def test_unconsumed_entry_is_stale_and_fails(self):
        allowed = Counter({("RES001", "src/repro/mod.py", "repro.mod.f"): 1})
        delta = bl.compare([], allowed)
        assert delta.stale == (("RES001", "src/repro/mod.py", "repro.mod.f"),)
        assert not delta.ok

    def test_fingerprint_is_line_insensitive(self):
        allowed = Counter({("RES001", "src/repro/mod.py", "repro.mod.f"): 1})
        assert bl.compare([finding(line=999)], allowed).ok


class TestRoundTrip:
    def test_write_then_load_restores_counts(self, tmp_path):
        path = tmp_path / "baseline.json"
        bl.write_baseline([finding(line=3), finding(line=9)], path)
        allowed = bl.load_baseline(path)
        assert allowed == Counter(
            {("RES001", "src/repro/mod.py", "repro.mod.f"): 2}
        )

    def test_render_is_sorted_and_stable(self):
        a = finding(rule="SEED001", symbol="repro.mod.b")
        b = finding(rule="RES001", symbol="repro.mod.a")
        assert bl.render_baseline([a, b]) == bl.render_baseline([b, a])
        entries = json.loads(bl.render_baseline([a, b]))["entries"]
        assert [e["rule"] for e in entries] == ["RES001", "SEED001"]

    def test_missing_file_loads_empty(self, tmp_path):
        assert bl.load_baseline(tmp_path / "absent.json") == Counter()
        assert bl.load_baseline(None) == Counter()

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"schema_version": 99, "entries": []}')
        with pytest.raises(ValueError, match="schema_version"):
            bl.load_baseline(path)

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="unreadable"):
            bl.load_baseline(path)


class TestLocate:
    def test_reads_configured_name(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.repro.flow]\nbaseline = "debt.json"\n')
        assert bl.locate_baseline(pyproject) == tmp_path / "debt.json"

    def test_defaults_without_flow_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.other]\nx = 1\n")
        located = bl.locate_baseline(pyproject)
        assert located == tmp_path / bl.DEFAULT_BASELINE_NAME

    def test_missing_pyproject_means_no_baseline(self, tmp_path):
        assert bl.locate_baseline(tmp_path / "pyproject.toml") is None

    def test_repo_pyproject_names_the_committed_baseline(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        located = bl.locate_baseline(repo / "pyproject.toml")
        assert located == repo / "flow-baseline.json"
        assert located.is_file()


def test_normalize_path_is_root_relative_posix(tmp_path):
    target = tmp_path / "pkg" / "mod.py"
    assert bl.normalize_path(str(target), tmp_path) == "pkg/mod.py"
    # Paths outside the root pass through verbatim.
    assert bl.normalize_path("elsewhere/mod.py", tmp_path) == "elsewhere/mod.py"
