"""Incremental JSONL writer/reader round-trips."""

import json

import pytest

from repro.io import (
    ScanJsonlWriter,
    export_scan_jsonl,
    iter_scan_jsonl,
    load_scan_jsonl,
    read_scan_header,
)
from repro.scanner.campaign import ScanCampaign
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology


@pytest.fixture(scope="module")
def scan():
    cfg = TopologyConfig.tiny(seed=5)
    topo = build_topology(cfg)
    return ScanCampaign(topology=topo, config=cfg).run().scan_pair(4)[0]


class TestScanJsonlWriter:
    def test_round_trip_equals_source(self, scan, tmp_path):
        path = tmp_path / "scan.jsonl"
        with ScanJsonlWriter(
            path, label=scan.label, ip_version=scan.ip_version,
            started_at=scan.started_at,
        ) as writer:
            writer.write_batch(iter(scan))
            writer.finished_at = scan.finished_at
            writer.targets_probed = scan.targets_probed
        loaded = load_scan_jsonl(path)
        assert loaded.observations == scan.observations
        assert loaded.multi_responders == scan.multi_responders
        assert loaded.finished_at == scan.finished_at
        assert loaded.targets_probed == scan.targets_probed

    def test_header_rewritten_with_final_counts(self, scan, tmp_path):
        path = tmp_path / "scan.jsonl"
        writer = ScanJsonlWriter(
            path, label="x", ip_version=4, started_at=1.0
        )
        writer.write_batch(list(scan)[:10])
        writer.finished_at = 99.0
        writer.targets_probed = 1234
        assert writer.close() == 10
        header = read_scan_header(path)
        assert header["responsive"] == 10
        assert header["finished_at"] == 99.0
        assert header["targets_probed"] == 1234
        # Padded header still parses as plain JSON line by line.
        first_line = path.read_text().splitlines()[0]
        assert json.loads(first_line)["format"] == "snmpv3-scan"

    def test_duplicate_addresses_kept_once(self, scan, tmp_path):
        path = tmp_path / "scan.jsonl"
        obs = list(scan)[:5]
        with ScanJsonlWriter(path, label="x", ip_version=4, started_at=0.0) as w:
            assert w.write_batch(obs) == 5
            assert w.write_batch(obs) == 0
        assert len(load_scan_jsonl(path)) == 5

    def test_close_is_idempotent(self, scan, tmp_path):
        path = tmp_path / "scan.jsonl"
        writer = ScanJsonlWriter(path, label="x", ip_version=4, started_at=0.0)
        writer.close()
        assert writer.close() == 0

    def test_context_manager_closes_exactly_once(self, scan, tmp_path):
        path = tmp_path / "scan.jsonl"
        with ScanJsonlWriter(
            path, label="x", ip_version=4, started_at=0.0
        ) as writer:
            assert not writer.closed
        assert writer.closed
        # A second explicit close after __exit__ is a no-op.
        assert writer.close() == 0
        assert writer.closed

    def test_reentering_closed_writer_raises(self, scan, tmp_path):
        path = tmp_path / "scan.jsonl"
        writer = ScanJsonlWriter(path, label="x", ip_version=4, started_at=0.0)
        with writer:
            pass
        with pytest.raises(ValueError, match="re-enter"):
            with writer:
                pass  # pragma: no cover - must not be reached

    def test_close_inside_context_is_safe(self, scan, tmp_path):
        path = tmp_path / "scan.jsonl"
        with ScanJsonlWriter(
            path, label="x", ip_version=4, started_at=0.0
        ) as writer:
            writer.write_batch(list(scan)[:3])
            assert writer.close() == 3
        # __exit__ saw an already-closed handle; file is intact.
        assert len(load_scan_jsonl(path)) == 3


class TestIterScanJsonl:
    def test_streams_same_records_as_loader(self, scan, tmp_path):
        path = tmp_path / "scan.jsonl"
        export_scan_jsonl(scan, path)
        streamed = {obs.address: obs for obs in iter_scan_jsonl(path)}
        assert streamed == load_scan_jsonl(path).observations

    def test_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not an snmpv3-scan"):
            next(iter_scan_jsonl(path))
        with pytest.raises(ValueError, match="not an snmpv3-scan"):
            read_scan_header(path)

    def test_streamed_pipeline_from_files(self, tmp_path):
        """End to end: two exports -> run_stream == run on loaded scans."""
        from repro.pipeline.filters import FilterPipeline

        cfg = TopologyConfig.tiny(seed=5)
        topo = build_topology(cfg)
        first, second = ScanCampaign(
            topology=topo, config=cfg
        ).run().scan_pair(4)
        p1, p2 = tmp_path / "s1.jsonl", tmp_path / "s2.jsonl"
        export_scan_jsonl(first, p1)
        export_scan_jsonl(second, p2)
        via_stream = FilterPipeline().run_stream(
            iter_scan_jsonl(p1), iter_scan_jsonl(p2)
        )
        direct = FilterPipeline().run(first, second)
        assert via_stream.valid == direct.valid
        assert via_stream.stats == direct.stats
