"""End-to-end tests for the command-line interface."""

import csv
import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        for argv in (["scan"], ["analyze", "x"], ["report"], ["lab"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestScanAnalyzeWorkflow:
    def test_scan_then_analyze(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["scan", "--scale", "1500", "--seed", "3",
                     "--out", str(run_dir)]) == 0
        for label in ("v4-1", "v4-2", "v6-1", "v6-2"):
            assert (run_dir / f"scan-{label}.jsonl").exists()

        assert main(["analyze", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "alias sets" in out
        assert (run_dir / "alias-sets.jsonl").exists()
        assert (run_dir / "alias-sets.csv").exists()
        census = list(csv.reader(
            (run_dir / "vendor-census.csv").read_text().splitlines()
        ))
        assert census[0] == ["vendor", "devices"]
        assert len(census) > 2

    def test_scan_export_is_loadable(self, tmp_path):
        run_dir = tmp_path / "run"
        main(["scan", "--scale", "1500", "--seed", "3", "--out", str(run_dir)])
        header = json.loads(
            (run_dir / "scan-v4-1.jsonl").read_text().splitlines()[0]
        )
        assert header["format"] == "snmpv3-scan"
        assert header["ip_version"] == 4

    def test_analyze_missing_files_fails(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 2
        assert "missing" in capsys.readouterr().err

    def test_analyze_threshold_flag(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        main(["scan", "--scale", "1500", "--seed", "3", "--out", str(run_dir)])
        assert main(["analyze", str(run_dir), "--threshold", "60"]) == 0


class TestLab:
    def test_lab_passes(self, capsys):
        assert main(["lab"]) == 0
        out = capsys.readouterr().out
        assert "[ok] v3 implicitly enabled" in out
        assert "FAIL" not in out


class TestPublish:
    def test_publish_writes_csvs(self, tmp_path, capsys):
        out_dir = tmp_path / "pub"
        assert main(["publish", "--scale", "1500", "--seed", "3",
                     "--out", str(out_dir)]) == 0
        assert (out_dir / "table1.csv").exists()
        assert (out_dir / "fig12_router_vendors.csv").exists()
        assert "CSV artifacts" in capsys.readouterr().out


class TestReport:
    def test_report_to_file(self, tmp_path):
        out_file = tmp_path / "report.txt"
        assert main(["report", "--scale", "1500", "--seed", "3", "--quick",
                     "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert "Table 1" in text
        assert "Figure 17" in text
