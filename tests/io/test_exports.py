"""Round-trip tests for dataset import/export."""

import csv
import ipaddress
import json

import pytest

from repro.alias.sets import AliasSets
from repro.io import (
    export_alias_sets_csv,
    export_alias_sets_jsonl,
    export_scan_jsonl,
    export_vendor_census_csv,
    load_alias_sets_jsonl,
    load_scan_jsonl,
)
from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.engine_id import EngineId


def make_scan():
    scan = ScanResult(label="v4-1", ip_version=4, started_at=100.0, finished_at=200.0)
    scan.targets_probed = 10
    scan.add(ScanObservation(
        address=ipaddress.ip_address("192.0.2.1"),
        recv_time=101.5,
        engine_id=EngineId(bytes.fromhex("800000090300000c010203")),
        engine_boots=4,
        engine_time=5000,
        response_count=1,
        wire_bytes=130,
    ))
    scan.add(ScanObservation(
        address=ipaddress.ip_address("192.0.2.9"),
        recv_time=102.0,
        engine_id=None,  # malformed response
        response_count=3,
        wire_bytes=40,
    ))
    return scan


class TestScanRoundTrip:
    def test_roundtrip(self, tmp_path):
        scan = make_scan()
        path = tmp_path / "scan.jsonl"
        assert export_scan_jsonl(scan, path) == 2
        loaded = load_scan_jsonl(path)
        assert loaded.label == scan.label
        assert loaded.responsive_count == 2
        a = loaded.observations[ipaddress.ip_address("192.0.2.1")]
        assert a.engine_id.raw == bytes.fromhex("800000090300000c010203")
        assert a.engine_boots == 4
        b = loaded.observations[ipaddress.ip_address("192.0.2.9")]
        assert b.engine_id is None
        assert b.response_count == 3

    def test_header_is_self_describing(self, tmp_path):
        path = tmp_path / "scan.jsonl"
        export_scan_jsonl(make_scan(), path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == "snmpv3-scan"
        assert header["responsive"] == 2

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(ValueError):
            load_scan_jsonl(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "snmpv3-scan", "version": 99}\n')
        with pytest.raises(ValueError):
            load_scan_jsonl(path)


class TestAliasSetsRoundTrip:
    def make_sets(self):
        return AliasSets(
            sets=[
                frozenset({ipaddress.ip_address("192.0.2.1"),
                           ipaddress.ip_address("192.0.2.2")}),
                frozenset({ipaddress.ip_address("2001:db8::1")}),
            ],
            technique="snmpv3/divide-20/both",
        )

    def test_jsonl_roundtrip(self, tmp_path):
        sets = self.make_sets()
        path = tmp_path / "alias.jsonl"
        assert export_alias_sets_jsonl(sets, path) == 2
        loaded = load_alias_sets_jsonl(path)
        assert loaded.technique == sets.technique
        assert {frozenset(g) for g in loaded.sets} == {frozenset(g) for g in sets.sets}

    def test_csv_flat_form(self, tmp_path):
        path = tmp_path / "alias.csv"
        assert export_alias_sets_csv(self.make_sets(), path) == 3
        rows = list(csv.reader(path.read_text().splitlines()))
        assert rows[0] == ["set_id", "ip"]
        assert len(rows) == 4
        # Both members of the first set share a set_id.
        assert rows[1][0] == rows[2][0]

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "nope"}\n')
        with pytest.raises(ValueError):
            load_alias_sets_jsonl(path)

    def test_export_is_deterministic(self, tmp_path):
        sets = self.make_sets()
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        export_alias_sets_jsonl(sets, p1)
        export_alias_sets_jsonl(sets, p2)
        assert p1.read_text() == p2.read_text()


class TestVendorCensus:
    def test_csv(self, tmp_path):
        path = tmp_path / "census.csv"
        n = export_vendor_census_csv([("Cisco", 10), ("Huawei", 3)], path)
        assert n == 2
        rows = list(csv.reader(path.read_text().splitlines()))
        assert rows == [["vendor", "devices"], ["Cisco", "10"], ["Huawei", "3"]]


class TestWriterLifecycle:
    """The leak RES001 caught: the handle closes on every exit path."""

    def test_init_failure_closes_the_handle(self, tmp_path, monkeypatch):
        from pathlib import Path

        from repro.io import ScanJsonlWriter

        handles = []
        real_open = Path.open

        def recording_open(self, *args, **kwargs):
            handle = real_open(self, *args, **kwargs)
            handles.append(handle)
            return handle

        monkeypatch.setattr(Path, "open", recording_open)

        class ExplodingHeader(ScanJsonlWriter):
            def _header(self):
                raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            ExplodingHeader(
                tmp_path / "scan.jsonl",
                label="x", ip_version=4, started_at=1.0,
            )
        assert handles and all(handle.closed for handle in handles)

    def test_close_failure_still_closes_the_handle(self, tmp_path):
        from repro.io import ScanJsonlWriter

        writer = ScanJsonlWriter(
            tmp_path / "scan.jsonl", label="x", ip_version=4, started_at=1.0
        )
        writer._header_width = 0  # force header-finalize to fail
        with pytest.raises(ValueError, match="outgrew"):
            writer.close()
        assert writer.closed
