"""Export → load → analyze must equal the in-memory path exactly.

The CLI splits collection (`scan`) from analysis (`analyze`) via JSONL
files; this test guarantees the file boundary is lossless for every
downstream result the paper derives.
"""

import pytest

from repro.alias.snmpv3 import resolve_aliases
from repro.io import export_scan_jsonl, load_scan_jsonl
from repro.pipeline.filters import FilterPipeline
from repro.scanner.campaign import ScanCampaign
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology


@pytest.fixture(scope="module")
def campaign():
    cfg = TopologyConfig.tiny(seed=37)
    topo = build_topology(cfg)
    return ScanCampaign(topology=topo, config=cfg).run()


class TestRoundTripConsistency:
    def test_pipeline_identical_after_export(self, campaign, tmp_path):
        scan1, scan2 = campaign.scan_pair(4)
        export_scan_jsonl(scan1, tmp_path / "s1.jsonl")
        export_scan_jsonl(scan2, tmp_path / "s2.jsonl")
        loaded1 = load_scan_jsonl(tmp_path / "s1.jsonl")
        loaded2 = load_scan_jsonl(tmp_path / "s2.jsonl")

        direct = FilterPipeline().run(scan1, scan2)
        via_files = FilterPipeline().run(loaded1, loaded2)
        assert via_files.stats.removed == direct.stats.removed
        assert len(via_files.valid) == len(direct.valid)
        assert {r.address for r in via_files.valid} == {
            r.address for r in direct.valid
        }

    def test_alias_sets_identical_after_export(self, campaign, tmp_path):
        scan1, scan2 = campaign.scan_pair(4)
        export_scan_jsonl(scan1, tmp_path / "s1.jsonl")
        export_scan_jsonl(scan2, tmp_path / "s2.jsonl")
        direct = resolve_aliases(FilterPipeline().run(scan1, scan2).valid)
        via_files = resolve_aliases(
            FilterPipeline().run(
                load_scan_jsonl(tmp_path / "s1.jsonl"),
                load_scan_jsonl(tmp_path / "s2.jsonl"),
            ).valid
        )
        assert {frozenset(g) for g in direct.sets} == {
            frozenset(g) for g in via_files.sets
        }

    def test_observation_fields_bitexact(self, campaign, tmp_path):
        scan1, __ = campaign.scan_pair(6)
        export_scan_jsonl(scan1, tmp_path / "v6.jsonl")
        loaded = load_scan_jsonl(tmp_path / "v6.jsonl")
        assert set(loaded.observations) == set(scan1.observations)
        for address, original in scan1.observations.items():
            restored = loaded.observations[address]
            assert restored.engine_boots == original.engine_boots
            assert restored.engine_time == original.engine_time
            assert restored.recv_time == original.recv_time
            if original.engine_id is None:
                assert restored.engine_id is None
            else:
                assert restored.engine_id.raw == original.engine_id.raw
