"""The consolidated :class:`ExecutionOptions` surface on the facade.

One blessed object now carries every execution knob; the sixteen-odd
flat keyword arguments survive only as deprecated aliases.  These tests
pin the migration contract: options-first construction is silent, flat
kwargs warn by name, mixing the two is an error, per-round overrides
work, and the legacy ``selects_executor`` semantics (fault shaping alone
does not engage the sharded engine) are preserved bit for bit.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.api import ExecutionOptions, Session
from repro.scanner import ExecutionOptions as scanner_reexport
from repro.scanner.campaign import ScanCampaign
from repro.scanner.executor import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_NUM_SHARDS,
    DEFAULT_WINDOW,
    RetryPolicy,
)
from repro.topology.config import TopologyConfig
from repro.topology.generator import TopologyGenerator

SCALE = 4000.0


def test_options_object_is_the_facade_export():
    assert repro.ExecutionOptions is ExecutionOptions
    assert scanner_reexport is ExecutionOptions


def test_session_accepts_options_silently():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        session = Session(
            scale=SCALE, options=ExecutionOptions(workers=1, batch_size=8)
        )
    assert session.options.workers == 1
    assert session.options.batch_size == 8


def test_flat_kwargs_still_work_but_warn_by_name():
    with pytest.warns(DeprecationWarning, match=r"workers=.*num_shards="):
        session = Session(scale=SCALE, workers=1, num_shards=2)
    assert session.options.workers == 1
    assert session.options.num_shards == 2


def test_mixing_options_and_flat_kwargs_is_an_error():
    with pytest.raises(TypeError, match="not both"):
        Session(scale=SCALE, options=ExecutionOptions(workers=1), workers=2)


def test_campaign_rejects_mixed_styles_too():
    topology = TopologyGenerator(
        config=TopologyConfig(seed=9, scale_divisor=SCALE)
    ).build()
    with pytest.raises(TypeError, match="not both"):
        ScanCampaign(
            topology=topology, options=ExecutionOptions(workers=1), workers=2
        )


def test_selects_executor_mirrors_legacy_flat_semantics():
    # Geometry / pipeline / retry / profiling knobs engage the sharded
    # engine; fault shaping alone never did and still must not.
    assert not ExecutionOptions().selects_executor
    assert not ExecutionOptions(fault_profile="chaos").selects_executor
    assert not ExecutionOptions(loss_probability=0.5).selects_executor
    for knob in (
        dict(workers=1), dict(num_shards=2), dict(batch_size=4),
        dict(window=8), dict(pipeline=False), dict(retry=RetryPolicy()),
        dict(profile=True),
    ):
        assert ExecutionOptions(**knob).selects_executor, knob


def test_executor_config_fills_documented_defaults():
    config = ExecutionOptions(workers=2).executor_config(seed=123)
    assert config.workers == 2
    assert config.num_shards == DEFAULT_NUM_SHARDS
    assert config.batch_size == DEFAULT_BATCH_SIZE
    assert config.window == DEFAULT_WINDOW
    assert config.pipeline is True
    assert config.seed == 123


def test_fault_profile_alone_runs_the_single_pass_scanner():
    topology = TopologyGenerator(
        config=TopologyConfig(seed=9, scale_divisor=SCALE)
    ).build()
    campaign = ScanCampaign(
        topology=topology, options=ExecutionOptions(fault_profile="conformance")
    )
    result = campaign.run()
    assert result.metrics == {}  # legacy scanner path: no executor metrics


def test_run_campaign_accepts_a_per_round_override():
    session = Session(scale=SCALE)
    result = session.run_campaign(
        options=ExecutionOptions(workers=1, num_shards=2)
    )
    assert result.metrics  # override engaged the sharded engine this round
    assert not session.options.selects_executor  # session default untouched


def test_session_and_override_produce_identical_observations():
    def fingerprint(result):
        return {
            label: sorted(
                (str(o.address), o.recv_time, o.engine_boots, o.engine_time)
                for o in scan.observations.values()
            )
            for label, scan in result.scans.items()
        }

    via_session = Session(
        scale=SCALE, options=ExecutionOptions(workers=1)
    ).run_campaign()
    via_override = Session(scale=SCALE).run_campaign(
        options=ExecutionOptions(workers=1)
    )
    assert fingerprint(via_session) == fingerprint(via_override)
