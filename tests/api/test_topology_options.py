"""The TopologyOptions bundle on the Session facade."""

import pytest

from repro.api import Session, TopologyOptions
from repro.topology import LazyTopology, Topology
from repro.topology.datasets import dump_topology_file


class TestValidation:
    def test_lazy_conflicts_with_sequential_layout(self):
        with pytest.raises(ValueError, match="streamed layout"):
            TopologyOptions(lazy=True, layout="sequential")

    def test_topology_file_conflicts_with_lazy(self):
        with pytest.raises(ValueError, match="cannot be combined"):
            TopologyOptions(topology_file="x.txt", lazy=True)

    def test_topology_file_conflicts_with_layout(self):
        with pytest.raises(ValueError, match="cannot be combined"):
            TopologyOptions(topology_file="x.txt", layout="streamed")

    def test_max_resident_requires_lazy(self):
        with pytest.raises(ValueError, match="max_resident"):
            TopologyOptions(max_resident=1024)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError, match="layout"):
            TopologyOptions(layout="bogus")

    def test_lazy_implies_streamed(self):
        assert TopologyOptions(lazy=True).effective_layout == "streamed"
        assert TopologyOptions().effective_layout is None


class TestSessionDispatch:
    def test_default_builds_sequential_eagerly(self):
        session = Session(scale=4000, seed=3)
        assert session.config.layout == "sequential"
        assert isinstance(session.topology, Topology)

    def test_lazy_builds_lazy_view_and_flips_layout(self):
        session = Session(
            scale=4000, seed=3,
            topology=TopologyOptions(lazy=True, max_resident=600),
        )
        assert session.config.layout == "streamed"
        topology = session.topology
        assert isinstance(topology, LazyTopology)
        assert topology.max_resident == 600
        assert topology.derivations == 0  # nothing built yet

    def test_streamed_layout_builds_eagerly(self):
        session = Session(
            scale=4000, seed=3, topology=TopologyOptions(layout="streamed"),
        )
        topology = session.topology
        assert isinstance(topology, Topology)
        assert topology.layout == "streamed"

    def test_topology_file_loads_described_world(self, tmp_path):
        donor = Session(scale=4000, seed=3).topology
        path = tmp_path / "topo.txt"
        dump_topology_file(donor, str(path))
        session = Session(seed=3, topology=TopologyOptions(topology_file=path))
        loaded = session.topology
        assert loaded.layout == "file"
        assert sorted(loaded.devices) == sorted(donor.devices)

    def test_lazy_session_campaign_matches_streamed_session(self):
        def fingerprint(session):
            result = session.run_campaign()
            return [
                (
                    label,
                    sorted(
                        (str(o.address), o.recv_time,
                         None if o.engine_id is None else o.engine_id.raw,
                         o.engine_boots, o.engine_time)
                        for o in scan.observations.values()
                    ),
                )
                for label, scan in sorted(result.scans.items())
            ]

        lazy_fp = fingerprint(
            Session(scale=4000, seed=3, topology=TopologyOptions(lazy=True))
        )
        eager_fp = fingerprint(
            Session(scale=4000, seed=3,
                    topology=TopologyOptions(layout="streamed"))
        )
        assert lazy_fp == eager_fp
