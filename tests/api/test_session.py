"""Tests for the stable repro.api Session facade."""

import pytest

from repro.api import Session


@pytest.fixture(scope="module")
def session():
    return Session(scale=1000, seed=21, workers=1)


class TestChaining:
    def test_stage_methods_chain_and_cache(self, session):
        assert session.scan() is session
        campaign = session.campaign
        assert session.scan().filter().aliases() is session
        # Rerunning a stage must not recompute.
        assert session.campaign is campaign

    def test_accessors_run_prerequisites_lazily(self):
        lazy = Session(scale=1000, seed=21, workers=1)
        assert lazy._campaign is None
        records = lazy.valid_v4
        assert records
        assert lazy._campaign is not None

    def test_topology_built_once(self, session):
        assert session.topology is session.topology


class TestResults:
    def test_campaign_has_all_four_scans(self, session):
        assert set(session.campaign.scans) == {"v4-1", "v4-2", "v6-1", "v6-2"}

    def test_filtering_matches_direct_pipeline(self, session):
        from repro.pipeline.filters import FilterPipeline

        direct = FilterPipeline().run(*session.campaign.scan_pair(4))
        assert session.valid_v4 == direct.valid
        assert session.pipeline(4).stats == direct.stats

    def test_alias_sets_cover_valid_addresses(self, session):
        addresses = {a for g in session.alias_sets.sets for a in g}
        assert {r.address for r in session.valid_v4} <= addresses

    def test_vendor_census_counts_every_device(self, session):
        census = session.vendor_census()
        assert sum(count for __, count in census) == session.alias_sets.count
        # Largest first.
        counts = [count for __, count in census]
        assert counts == sorted(counts, reverse=True)

    def test_executor_metrics_exposed(self, session):
        assert set(session.metrics) == set(session.campaign.scans)
        for metrics in session.metrics.values():
            assert metrics.probes_sent > 0


class TestEngines:
    def test_workers_do_not_change_results(self, session):
        parallel = Session(scale=1000, seed=21, workers=4)
        assert parallel.campaign.scans["v4-1"].observations == \
            session.campaign.scans["v4-1"].observations
        assert parallel.valid_v4 == session.valid_v4

    def test_legacy_engine_by_default(self):
        legacy = Session(scale=1000, seed=21)
        assert legacy.metrics == {}

    def test_stream_scans_yields_all_four(self):
        streaming = Session(scale=1000, seed=21)
        seen = []
        for stream in streaming.stream_scans():
            count = sum(len(batch) for batch in stream.batches())
            seen.append((stream.label, count))
        assert [label for label, __ in seen] == ["v6-1", "v6-2", "v4-1", "v4-2"]
        assert all(count > 0 for __, count in seen)


class TestTopLevelExports:
    def test_blessed_names_importable_from_repro(self):
        import repro

        for name in (
            "Session", "ScanObservation", "ScanResult", "CampaignResult",
            "ScanStream", "ValidRecord", "MergedObservation", "PipelineResult",
            "ShardedScanExecutor", "ExecutorConfig", "ExecutorMetrics",
            "FilterStats",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)
