"""Unit tests for the simulated network fabric and datagram model."""

import ipaddress

import pytest

from repro.net.packet import Datagram, make_datagram
from repro.net.transport import AccessControlList, LinkProfile, NetworkFabric

PROBER = ipaddress.ip_address("198.51.100.9")
TARGET = ipaddress.ip_address("192.0.2.1")


def echo_handler(datagram, now):
    return [b"echo:" + datagram.payload]


class TestDatagram:
    def test_wire_size_v4(self):
        dg = make_datagram("198.51.100.9", "192.0.2.1", 40000, 161, b"x" * 60)
        assert dg.wire_size == 20 + 8 + 60  # == 88, the paper's probe size

    def test_wire_size_v6(self):
        dg = make_datagram("2001:db8::1", "2001:db8::2", 40000, 161, b"x" * 60)
        assert dg.wire_size == 40 + 8 + 60  # == 108, the paper's IPv6 probe size

    def test_family_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_datagram("198.51.100.9", "2001:db8::1", 1, 2, b"")

    def test_port_range(self):
        with pytest.raises(ValueError):
            make_datagram("1.2.3.4", "5.6.7.8", 70000, 161, b"")

    def test_reply_swaps_endpoints(self):
        dg = make_datagram("198.51.100.9", "192.0.2.1", 40000, 161, b"ping")
        reply = dg.reply(b"pong")
        assert (reply.src, reply.dst) == (dg.dst, dg.src)
        assert (reply.sport, reply.dport) == (dg.dport, dg.sport)
        assert reply.payload == b"pong"


class TestFabric:
    def make_probe(self, payload=b"ping"):
        return Datagram(PROBER, TARGET, 40000, 161, payload)

    def test_basic_delivery(self):
        fabric = NetworkFabric(seed=1)
        fabric.bind(TARGET, "udp", 161, echo_handler)
        replies = fabric.inject(self.make_probe(), now=10.0)
        assert len(replies) == 1
        reply, arrival = replies[0]
        assert reply.payload == b"echo:ping"
        assert arrival > 10.0

    def test_unbound_target_silent(self):
        fabric = NetworkFabric(seed=1)
        assert fabric.inject(self.make_probe(), now=0.0) == []
        assert fabric.stats.dropped_no_endpoint == 1

    def test_double_bind_rejected(self):
        fabric = NetworkFabric(seed=1)
        fabric.bind(TARGET, "udp", 161, echo_handler)
        with pytest.raises(ValueError):
            fabric.bind(TARGET, "udp", 161, echo_handler)

    def test_unbind_models_churn(self):
        fabric = NetworkFabric(seed=1)
        fabric.bind(TARGET, "udp", 161, echo_handler)
        fabric.unbind(TARGET, "udp", 161)
        assert not fabric.is_bound(TARGET, "udp", 161)
        assert fabric.inject(self.make_probe(), now=0.0) == []

    def test_acl_blocks_port(self):
        fabric = NetworkFabric(seed=1)
        fabric.bind(TARGET, "udp", 161, echo_handler)
        fabric.set_acl(TARGET, AccessControlList(blocked_ports=frozenset({161})))
        assert fabric.inject(self.make_probe(), now=0.0) == []
        assert fabric.stats.dropped_acl == 1

    def test_acl_source_allowlist(self):
        fabric = NetworkFabric(seed=1)
        fabric.bind(TARGET, "udp", 161, echo_handler)
        mgmt = ipaddress.ip_address("203.0.113.5")
        fabric.set_acl(TARGET, AccessControlList(allow_sources=frozenset({mgmt})))
        assert fabric.inject(self.make_probe(), now=0.0) == []
        allowed = Datagram(mgmt, TARGET, 40000, 161, b"ping")
        assert len(fabric.inject(allowed, now=0.0)) == 1

    def test_total_loss(self):
        fabric = NetworkFabric(seed=1, default_profile=LinkProfile(loss_probability=1.0))
        fabric.bind(TARGET, "udp", 161, echo_handler)
        assert fabric.inject(self.make_probe(), now=0.0) == []
        assert fabric.stats.dropped_loss == 1

    def test_loss_is_deterministic_per_seed(self):
        def run(seed):
            fabric = NetworkFabric(seed=seed, default_profile=LinkProfile(loss_probability=0.5))
            fabric.bind(TARGET, "udp", 161, echo_handler)
            return [bool(fabric.inject(self.make_probe(), now=float(i))) for i in range(50)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_multiple_replies_amplification(self):
        fabric = NetworkFabric(seed=1)
        fabric.bind(TARGET, "udp", 161, lambda dg, now: [b"a", b"a", b"a"])
        replies = fabric.inject(self.make_probe(), now=0.0)
        assert len(replies) == 3
        assert fabric.stats.replies == 3

    def test_stats_bytes_accounting(self):
        fabric = NetworkFabric(seed=1)
        fabric.bind(TARGET, "udp", 161, echo_handler)
        probe = self.make_probe(b"x" * 60)
        fabric.inject(probe, now=0.0)
        assert fabric.stats.probe_bytes == probe.wire_size
        assert fabric.stats.reply_bytes == probe.wire_size + len(b"echo:")

    def test_endpoint_count(self):
        fabric = NetworkFabric(seed=1)
        fabric.bind(TARGET, "udp", 161, echo_handler)
        fabric.bind(TARGET, "tcp", 22, echo_handler)
        assert fabric.endpoint_count == 2
