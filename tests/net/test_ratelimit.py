"""Shared token-bucket module: behavior pinned for both former copies."""

import pytest

from repro.net import faults
from repro.net.ratelimit import RateLimit, TokenBucket


class TestRateLimit:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            RateLimit(rate=0.0)

    def test_rejects_sub_unit_burst(self):
        with pytest.raises(ValueError):
            RateLimit(rate=1.0, burst=0)

    def test_accepts_float_burst(self):
        limit = RateLimit(rate=50.0, burst=10.0)
        assert limit.burst == 10.0


class TestTokenBucket:
    def test_starts_full_by_default(self):
        bucket = TokenBucket(RateLimit(rate=1.0, burst=3), 0.0)
        assert [bucket.admit(0.0) for _ in range(4)] == [True, True, True, False]

    def test_explicit_initial_tokens(self):
        bucket = TokenBucket(RateLimit(rate=1.0, burst=3), 0.0, tokens=1.0)
        assert bucket.admit(0.0) is True
        assert bucket.admit(0.0) is False

    def test_refills_at_rate(self):
        bucket = TokenBucket(RateLimit(rate=2.0, burst=1), 0.0)
        assert bucket.admit(0.0) is True
        assert bucket.admit(0.1) is False
        assert bucket.admit(0.6) is True

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(RateLimit(rate=100.0, burst=2), 0.0)
        assert bucket.admit(1_000.0) is True
        assert bucket.admit(1_000.0) is True
        assert bucket.admit(1_000.0) is False

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(RateLimit(rate=1.0, burst=1), 10.0)
        assert bucket.admit(10.0) is True
        # An earlier timestamp must not mint tokens.
        assert bucket.admit(5.0) is False

    def test_properties(self):
        bucket = TokenBucket(RateLimit(rate=7.0, burst=3), 0.0)
        assert bucket.rate == 7.0
        assert bucket.burst == 3.0


class TestReExports:
    def test_faults_re_exports_shared_classes(self):
        assert faults.RateLimit is RateLimit
        assert faults.TokenBucket is TokenBucket

    def test_alias_re_exports_shared_bucket(self):
        from repro.alias import ratelimit as alias_ratelimit

        assert alias_ratelimit.TokenBucket is TokenBucket
        assert alias_ratelimit._TokenBucket is TokenBucket

    def test_faults_profile_construction_unchanged(self):
        profile = faults.FAULT_PROFILES["rate-limited"]
        assert profile.rate_limit is not None
        bucket = TokenBucket(profile.rate_limit, 0.0)
        assert bucket.admit(0.0) is True
