"""Unit tests for the MacAddress type."""

import pytest

from repro.net.mac import MacAddress


class TestConstruction:
    def test_from_colon_string(self):
        mac = MacAddress("74:8e:f8:31:db:80")
        assert mac.packed == bytes.fromhex("748ef831db80")

    def test_from_dash_and_dot_strings(self):
        assert MacAddress("74-8e-f8-31-db-80") == MacAddress("748e.f831.db80")

    def test_from_bytes(self):
        assert MacAddress(b"\x00\x00\x0c\x01\x02\x03").value == 0x00000C010203

    def test_from_int(self):
        assert str(MacAddress(0x00000C010203)) == "00:00:0c:01:02:03"

    def test_copy_constructor(self):
        mac = MacAddress("00:00:0c:00:00:01")
        assert MacAddress(mac) == mac

    def test_out_of_range_int(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)

    def test_wrong_byte_length(self):
        with pytest.raises(ValueError):
            MacAddress(b"\x00\x01")

    def test_bad_string(self):
        with pytest.raises(ValueError):
            MacAddress("not-a-mac")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            MacAddress(3.14)


class TestProperties:
    def test_oui_split(self):
        mac = MacAddress("74:8e:f8:31:db:80")
        assert mac.oui == bytes.fromhex("748ef8")
        assert mac.nic_specific == bytes.fromhex("31db80")

    def test_locally_administered_bit(self):
        assert MacAddress("02:00:00:00:00:01").is_locally_administered
        assert not MacAddress("00:00:0c:00:00:01").is_locally_administered

    def test_multicast_bit(self):
        assert MacAddress("01:00:5e:00:00:01").is_multicast
        assert not MacAddress("00:00:5e:00:00:01").is_multicast

    def test_successor(self):
        mac = MacAddress("00:00:0c:00:00:ff")
        assert str(mac.successor()) == "00:00:0c:00:01:00"
        assert str(mac.successor(2)) == "00:00:0c:00:01:01"

    def test_successor_wraps(self):
        assert MacAddress("ff:ff:ff:ff:ff:ff").successor() == MacAddress(0)

    def test_ordering_and_hash(self):
        a = MacAddress("00:00:0c:00:00:01")
        b = MacAddress("00:00:0c:00:00:02")
        assert a < b
        assert len({a, MacAddress(a), b}) == 2

    def test_canonical_string(self):
        assert str(MacAddress("AA:BB:CC:DD:EE:FF")) == "aa:bb:cc:dd:ee:ff"
