"""Unit tests for the fault-injection layer and its fabric integration."""

import ipaddress
import random

import pytest

from repro.net.faults import (
    FAULT_PROFILES,
    FaultProfile,
    RateLimit,
    TokenBucket,
    corrupt_payload,
    resolve_fault_profile,
    truncate_payload,
)
from repro.net.packet import Datagram
from repro.net.transport import (
    AccessControlList,
    LinkProfile,
    NetworkFabric,
)

PROBER = ipaddress.ip_address("198.51.100.9")
TARGET = ipaddress.ip_address("192.0.2.1")
OTHER = ipaddress.ip_address("192.0.2.2")


def echo_handler(datagram, now):
    return [b"echo:" + datagram.payload]


def make_probe(dst=TARGET, payload=b"ping"):
    return Datagram(PROBER, dst, 40000, 161, payload)


class TestRateLimit:
    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            RateLimit(rate=0.0)
        with pytest.raises(ValueError):
            RateLimit(rate=-1.0)

    def test_invalid_burst_rejected(self):
        with pytest.raises(ValueError):
            RateLimit(rate=1.0, burst=0)


class TestTokenBucket:
    def test_burst_then_starve(self):
        bucket = TokenBucket(RateLimit(rate=1.0, burst=2), now=0.0)
        assert bucket.admit(0.0)
        assert bucket.admit(0.0)
        assert not bucket.admit(0.0)

    def test_refills_with_virtual_time(self):
        bucket = TokenBucket(RateLimit(rate=0.5, burst=1), now=0.0)
        assert bucket.admit(0.0)
        assert not bucket.admit(1.0)  # only 0.5 tokens back
        assert bucket.admit(2.0)      # full token after 2s at rate 0.5

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(RateLimit(rate=10.0, burst=2), now=0.0)
        # A long idle period must not bank more than `burst` tokens.
        assert bucket.admit(100.0)
        assert bucket.admit(100.0)
        assert not bucket.admit(100.0)

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(RateLimit(rate=1.0, burst=1), now=5.0)
        assert bucket.admit(5.0)
        # An earlier timestamp contributes zero refill, not negative.
        assert not bucket.admit(4.0)
        assert bucket.admit(6.0)


class TestFaultProfile:
    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            FaultProfile(duplicate_probability=1.5)
        with pytest.raises(ValueError):
            FaultProfile(corrupt_probability=-0.1)

    def test_null_profile_detection(self):
        assert FaultProfile().is_null
        assert not FaultProfile(duplicate_probability=0.1).is_null
        assert not FaultProfile(rate_limit=RateLimit(rate=1.0)).is_null

    def test_stock_profiles_resolve(self):
        for name in FAULT_PROFILES:
            resolved = resolve_fault_profile(name)
            if name == "none":
                assert resolved is None
            else:
                assert resolved is FAULT_PROFILES[name]

    def test_unknown_profile_name_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            resolve_fault_profile("does-not-exist")

    def test_null_object_resolves_to_none(self):
        assert resolve_fault_profile(None) is None
        assert resolve_fault_profile(FaultProfile()) is None


class TestPayloadMutators:
    def test_truncate_shortens_but_keeps_a_byte(self):
        rng = random.Random(3)
        payload = bytes(range(64))
        for __ in range(100):
            cut = truncate_payload(rng, payload)
            assert 1 <= len(cut) < len(payload)
            assert payload.startswith(cut)

    def test_truncate_tiny_payload_is_identity(self):
        rng = random.Random(3)
        assert truncate_payload(rng, b"") == b""
        assert truncate_payload(rng, b"x") == b"x"

    def test_corrupt_always_changes_exactly_one_byte(self):
        rng = random.Random(3)
        payload = bytes(range(64))
        for __ in range(100):
            mutated = corrupt_payload(rng, payload)
            assert len(mutated) == len(payload)
            diff = [i for i in range(64) if mutated[i] != payload[i]]
            assert len(diff) == 1

    def test_corrupt_empty_payload_is_identity(self):
        assert corrupt_payload(random.Random(3), b"") == b""


class TestFabricFaultInjection:
    def test_forward_path_counters_are_exact(self):
        """Satellite regression: every injected probe lands in exactly one
        forward-path counter bucket under a fixed seed."""
        fabric = NetworkFabric(
            seed=1234,
            default_profile=LinkProfile(loss_probability=0.3),
            fault_profile=FaultProfile(
                name="t", rate_limit=RateLimit(rate=0.5, burst=1)
            ),
        )
        fabric.bind(TARGET, "udp", 161, echo_handler)
        fabric.set_acl(OTHER, AccessControlList(blocked_ports=frozenset({161})))
        fabric.bind(OTHER, "udp", 161, echo_handler)
        unbound = ipaddress.ip_address("192.0.2.200")
        for i in range(300):
            now = i * 0.7
            fabric.inject(make_probe(TARGET), now=now)
            fabric.inject(make_probe(OTHER), now=now)
            fabric.inject(make_probe(unbound), now=now)
        stats = fabric.stats
        assert stats.injected == 900
        assert stats.dropped_no_endpoint == 300
        assert stats.dropped_acl == 300
        assert stats.dropped_rate_limited > 0
        assert stats.dropped_loss > 0
        assert stats.injected == (
            stats.dropped_no_endpoint
            + stats.dropped_acl
            + stats.dropped_rate_limited
            + stats.dropped_loss
            + stats.delivered
        )

    def test_reply_loss_counted_separately(self):
        fabric = NetworkFabric(
            seed=5, default_profile=LinkProfile(loss_probability=0.5)
        )
        fabric.bind(TARGET, "udp", 161, echo_handler)
        for i in range(200):
            fabric.inject(make_probe(), now=float(i))
        stats = fabric.stats
        assert stats.dropped_loss > 0
        assert stats.dropped_reply_loss > 0
        # Forward-path identity holds even with reply losses present.
        assert stats.injected == (
            stats.dropped_no_endpoint
            + stats.dropped_acl
            + stats.dropped_rate_limited
            + stats.dropped_loss
            + stats.delivered
        )
        assert stats.delivered == stats.replies + stats.dropped_reply_loss

    def test_exact_drop_counts_under_fixed_seed(self):
        """The counters are not merely consistent — they are reproducible
        integers for a fixed seed and probe schedule."""
        def run():
            fabric = NetworkFabric(
                seed=99, default_profile=LinkProfile(loss_probability=0.25)
            )
            fabric.bind(TARGET, "udp", 161, echo_handler)
            for i in range(100):
                fabric.inject(make_probe(), now=float(i))
            s = fabric.stats
            return (s.dropped_loss, s.dropped_reply_loss, s.delivered, s.replies)

        first, second = run(), run()
        assert first == second
        assert first[0] + first[2] == 100

    def test_null_profile_preserves_legacy_rng_stream(self):
        """Attaching the 'none' profile must not shift a single RNG draw."""
        def run(fault_profile):
            fabric = NetworkFabric(
                seed=7,
                default_profile=LinkProfile(loss_probability=0.4, jitter=0.1),
                fault_profile=fault_profile,
            )
            fabric.bind(TARGET, "udp", 161, echo_handler)
            out = []
            for i in range(100):
                replies = fabric.inject(make_probe(), now=float(i))
                out.append([(r.payload, t) for r, t in replies])
            return out

        assert run(None) == run("none") == run(FaultProfile())

    def test_duplication_and_reordering(self):
        fabric = NetworkFabric(
            seed=11,
            fault_profile=FaultProfile(
                name="t", duplicate_probability=1.0, reorder_probability=1.0
            ),
        )
        fabric.bind(TARGET, "udp", 161, echo_handler)
        replies = fabric.inject(make_probe(), now=0.0)
        assert len(replies) == 2
        assert replies[0][0].payload == replies[1][0].payload
        assert fabric.stats.duplicated == 1
        assert fabric.stats.reordered == 1

    def test_truncation_and_corruption_counted(self):
        fabric = NetworkFabric(
            seed=13,
            fault_profile=FaultProfile(
                name="t", truncate_probability=1.0, corrupt_probability=1.0
            ),
        )
        fabric.bind(TARGET, "udp", 161, echo_handler)
        fabric.inject(make_probe(payload=b"x" * 40), now=0.0)
        stats = fabric.stats
        assert stats.truncated >= 1
        assert stats.corrupted >= 1

    def test_rate_limiter_is_per_destination(self):
        fabric = NetworkFabric(
            seed=17,
            fault_profile=FaultProfile(
                name="t", rate_limit=RateLimit(rate=0.001, burst=1)
            ),
        )
        fabric.bind(TARGET, "udp", 161, echo_handler)
        fabric.bind(OTHER, "udp", 161, echo_handler)
        assert fabric.inject(make_probe(TARGET), now=0.0)
        # TARGET's bucket is dry, OTHER's is untouched.
        assert fabric.inject(make_probe(TARGET), now=0.0) == []
        assert fabric.inject(make_probe(OTHER), now=0.0)
        assert fabric.stats.dropped_rate_limited == 1

    def test_set_fault_profile_resets_buckets(self):
        limit = FaultProfile(name="t", rate_limit=RateLimit(rate=0.001, burst=1))
        fabric = NetworkFabric(seed=19, fault_profile=limit)
        fabric.bind(TARGET, "udp", 161, echo_handler)
        assert fabric.inject(make_probe(), now=0.0)
        assert fabric.inject(make_probe(), now=0.0) == []
        fabric.set_fault_profile(limit)
        # Fresh bucket: the burst token is back.
        assert fabric.inject(make_probe(), now=0.0)

    def test_shard_views_have_independent_buckets(self):
        limit = FaultProfile(name="t", rate_limit=RateLimit(rate=0.001, burst=1))
        fabric = NetworkFabric(seed=23, fault_profile=limit)
        fabric.bind(TARGET, "udp", 161, echo_handler)
        view_a = fabric.shard_view(1)
        view_b = fabric.shard_view(2)
        assert view_a.inject(make_probe(), now=0.0)
        assert view_a.inject(make_probe(), now=0.0) == []
        assert view_b.inject(make_probe(), now=0.0)
        assert view_a.stats.dropped_rate_limited == 1
        assert view_b.stats.dropped_rate_limited == 0
