"""Unit tests for address helpers."""

import ipaddress

import pytest

from repro.net import addresses


class TestRoutabilityV4:
    @pytest.mark.parametrize(
        "addr",
        ["8.8.8.8", "1.1.1.1", "193.99.144.80", "23.0.0.1", "100.128.0.1"],
    )
    def test_routable(self, addr):
        assert addresses.is_routable_ipv4(addr)

    @pytest.mark.parametrize(
        "addr",
        [
            "10.0.0.1",
            "172.16.5.5",
            "192.168.1.1",
            "127.0.0.1",
            "169.254.1.1",
            "224.0.0.5",
            "255.255.255.255",
            "0.0.0.0",
            "100.64.0.1",
            "198.18.0.1",
            "192.0.2.1",
            "240.0.0.1",
        ],
    )
    def test_unroutable(self, addr):
        assert not addresses.is_routable_ipv4(addr)

    def test_accepts_address_objects(self):
        assert addresses.is_routable_ipv4(ipaddress.IPv4Address("8.8.8.8"))


class TestRoutabilityV6:
    @pytest.mark.parametrize("addr", ["2001:4860:4860::8888", "2a00:1450::1"])
    def test_routable(self, addr):
        assert addresses.is_routable_ipv6(addr)

    @pytest.mark.parametrize(
        "addr",
        ["::1", "fe80::1", "fc00::1", "ff02::1", "2001:db8::1", "::ffff:1.2.3.4", "100::1"],
    )
    def test_unroutable(self, addr):
        assert not addresses.is_routable_ipv6(addr)


class TestDispatch:
    def test_is_routable_dispatches(self):
        assert addresses.is_routable("8.8.8.8")
        assert not addresses.is_routable("10.1.2.3")
        assert addresses.is_routable("2001:4860::1")
        assert not addresses.is_routable("fe80::2")


class TestConversions:
    def test_int_roundtrip_v4(self):
        addr = ipaddress.IPv4Address("192.0.2.77")
        assert addresses.ip_from_int(addresses.ip_to_int(addr), 4) == addr

    def test_int_roundtrip_v6(self):
        addr = ipaddress.IPv6Address("2001:db8::42")
        assert addresses.ip_from_int(addresses.ip_to_int(addr), 6) == addr

    def test_ip_to_int_from_string(self):
        assert addresses.ip_to_int("0.0.0.1") == 1

    def test_bad_version(self):
        with pytest.raises(ValueError):
            addresses.ip_from_int(1, 5)


class TestNthHost:
    def test_first_host(self):
        net = ipaddress.ip_network("198.51.100.0/24")
        assert str(addresses.nth_host(net, 0)) == "198.51.100.1"

    def test_last_usable_v4(self):
        net = ipaddress.ip_network("198.51.100.0/30")
        assert str(addresses.nth_host(net, 1)) == "198.51.100.2"
        with pytest.raises(ValueError):
            addresses.nth_host(net, 2)  # .3 is broadcast

    def test_v6_has_no_broadcast(self):
        net = ipaddress.ip_network("2001:db8::/126")
        assert str(addresses.nth_host(net, 2)) == "2001:db8::3"

    def test_negative_index(self):
        net = ipaddress.ip_network("198.51.100.0/24")
        with pytest.raises(ValueError):
            addresses.nth_host(net, -1)
