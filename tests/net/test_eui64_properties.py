"""Property-based tests for the EUI-64 codec."""

import ipaddress

from hypothesis import given, strategies as st

from repro.net.eui64 import ipv6_from_mac, is_eui64, mac_from_ipv6
from repro.net.mac import MacAddress


@given(st.integers(min_value=0, max_value=2**48 - 1))
def test_mac_roundtrip(value):
    mac = MacAddress(value)
    address = ipv6_from_mac("2001:db8:77:1::/64", mac)
    assert mac_from_ipv6(address) == mac
    assert is_eui64(address)


@given(st.integers(min_value=0, max_value=2**48 - 1),
       st.integers(min_value=0, max_value=2**16 - 1))
def test_distinct_macs_distinct_addresses(value, delta):
    a = ipv6_from_mac("2001:db8::/64", MacAddress(value))
    b = ipv6_from_mac("2001:db8::/64", MacAddress((value + delta + 1) % 2**48))
    assert a != b


@given(st.integers(min_value=0, max_value=2**128 - 1))
def test_detection_total(value):
    """Any IPv6 address classifies without raising."""
    address = ipaddress.IPv6Address(value)
    mac = mac_from_ipv6(address)
    if mac is not None:
        # Recovered MACs re-embed to the same interface identifier.
        rebuilt = ipv6_from_mac(
            ipaddress.ip_network((value >> 64 << 64, 64)), mac
        )
        assert rebuilt == address
