"""``inject_probe_batch`` is byte-identical to sequential ``inject``.

The batch-staged scan pipeline rides on one guarantee: delivering a
window of probes through :meth:`FabricView.inject_probe_batch` consumes
the same RNG draws, bumps the same counters and produces the same reply
bytes at the same arrival times as injecting the probes one
:class:`Datagram` at a time.  These tests pin that equivalence across
every adversarial agent personality, fault profile, and fabric feature
(ACLs, per-address link profiles, unbound targets, load balancers).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.net.addresses import parse_ip
from repro.net.packet import Datagram
from repro.net.transport import AccessControlList, LinkProfile, NetworkFabric
from repro.snmp.agent import AgentBehavior, SnmpAgent
from repro.snmp.constants import SNMP_PORT
from repro.snmp.engine_id import EngineId
from repro.snmp.loadbalancer import AgentPool, BalancingPolicy
from repro.snmp.messages import encode_discovery_probe

SOURCE = parse_ip("203.0.113.77")
SPORT = 39321

PERSONALITIES = {
    "default": AgentBehavior(),
    "garbage": AgentBehavior(garbage_reports=True),
    "malformed": AgentBehavior(malformed=True),
    "amplifying": AgentBehavior(amplification_count=3),
    "rebooting": AgentBehavior(reboot_after_handles=2),
    "slow": AgentBehavior(response_delay=0.75),
    "v3-dark": AgentBehavior(v3_enabled=False),
    "zero-time": AgentBehavior(report_zero_time=True),
}


def engine_id(tag: int) -> EngineId:
    return EngineId(bytes([0x80, 0, 0, 9, 3, 0, 0, 0, 0, 0, tag]))


def build_fabric(fault_profile: "str | None", balancer: "str | None" = None):
    """One deterministic fabric + agent set; call twice for twin copies."""
    fabric = NetworkFabric(
        seed=0xFAB,
        default_profile=LinkProfile(
            loss_probability=0.08, base_latency=0.08, jitter=0.04
        ),
        fault_profile=fault_profile,
    )
    targets = []
    for index, behavior in enumerate(PERSONALITIES.values()):
        address = parse_ip(f"198.51.100.{index + 1}")
        agent = SnmpAgent(
            engine_id=engine_id(index + 1), boot_time=-1000.0, behavior=behavior
        )
        fabric.bind(address, "udp", SNMP_PORT, agent.handle_datagram)
        targets.append(address)
    # A slow-lossy link profile on one address exercises the per-target
    # profile lookup inside the batch loop.
    fabric.set_profile(
        targets[0], LinkProfile(loss_probability=0.3, base_latency=0.5, jitter=0.2)
    )
    # A firewalled address and an unbound one: both must consume zero
    # RNG draws on either path.
    acl_address = parse_ip("198.51.100.200")
    agent = SnmpAgent(engine_id=engine_id(0xC8), boot_time=-5.0)
    fabric.bind(acl_address, "udp", SNMP_PORT, agent.handle_datagram)
    fabric.set_acl(acl_address, AccessControlList(blocked_ports=frozenset({SNMP_PORT})))
    targets.append(acl_address)
    targets.append(parse_ip("198.51.100.201"))  # unbound
    if balancer is not None:
        pool_address = parse_ip("198.51.100.150")
        pool = AgentPool(
            backends=[
                SnmpAgent(engine_id=engine_id(0xA0 + n), boot_time=-60.0)
                for n in range(3)
            ],
            policy=BalancingPolicy[balancer],
        )
        fabric.bind(pool_address, "udp", SNMP_PORT, pool.handle_datagram)
        targets.append(pool_address)
    return fabric, targets


def probe_plan(targets: list, rounds: int = 3):
    """(target, payload, send_time, msg_id) tuples, several per target."""
    plan = []
    for sweep in range(rounds):
        for offset, target in enumerate(targets):
            msg_id = sweep * len(targets) + offset + 1
            plan.append(
                (target, encode_discovery_probe(msg_id), 1000.0 + msg_id * 0.01, msg_id)
            )
    return plan


def deliver_sequentially(fabric, plan):
    view = fabric.shard_view(seed=42)
    replies = []
    for target, payload, send_time, _msg_id in plan:
        datagram = Datagram(
            src=SOURCE, dst=target, sport=SPORT, dport=SNMP_PORT,
            payload=payload, sent_at=send_time,
        )
        replies.append([
            (reply.payload, arrival, reply.wire_size)
            for reply, arrival in view.inject(datagram, send_time)
        ])
    return replies, view.stats


def deliver_batched(fabric, plan, with_hints: bool):
    view = fabric.shard_view(seed=42)
    replies = view.inject_probe_batch(
        SOURCE,
        SPORT,
        SNMP_PORT,
        [target for target, *_ in plan],
        [payload for _, payload, *_ in plan],
        [send_time for *_, send_time, _ in plan],
        [msg_id for *_, msg_id in plan] if with_hints else None,
    )
    return replies, view.stats


@pytest.mark.parametrize("fault_profile", [None, "conformance", "rate-limited", "chaos"])
@pytest.mark.parametrize("with_hints", [True, False])
def test_batch_equals_sequential_across_personalities(fault_profile, with_hints):
    fabric_a, targets = build_fabric(fault_profile)
    fabric_b, _ = build_fabric(fault_profile)
    plan = probe_plan(targets)
    sequential, stats_a = deliver_sequentially(fabric_a, plan)
    batched, stats_b = deliver_batched(fabric_b, plan, with_hints)
    assert batched == sequential
    assert stats_b == stats_a


@pytest.mark.parametrize("policy", ["ROUND_ROBIN", "SOURCE_HASH"])
def test_batch_preserves_load_balancer_scheduling(policy):
    fabric_a, targets = build_fabric("chaos", balancer=policy)
    fabric_b, _ = build_fabric("chaos", balancer=policy)
    plan = probe_plan(targets)
    sequential, stats_a = deliver_sequentially(fabric_a, plan)
    batched, stats_b = deliver_batched(fabric_b, plan, with_hints=True)
    assert batched == sequential
    assert stats_b == stats_a


def test_single_probe_batches_match_too():
    """Batch size 1 is the retry path's delivery unit."""
    fabric_a, targets = build_fabric("chaos")
    fabric_b, _ = build_fabric("chaos")
    plan = probe_plan(targets, rounds=1)
    sequential, stats_a = deliver_sequentially(fabric_a, plan)
    view = fabric_b.shard_view(seed=42)
    batched = [
        view.inject_probe_batch(
            SOURCE, SPORT, SNMP_PORT, [target], [payload], [send_time], [msg_id]
        )[0]
        for target, payload, send_time, msg_id in plan
    ]
    assert batched == sequential
    assert view.stats == stats_a


def test_corrupted_probes_fall_back_to_the_full_parser():
    """Under chaos some probes corrupt in flight; the hinted fast path
    must not answer for them (the wire bytes no longer match the hint)."""
    fabric, targets = build_fabric("chaos")
    plan = probe_plan(targets, rounds=6)
    view = fabric.shard_view(seed=42)
    view.inject_probe_batch(
        SOURCE, SPORT, SNMP_PORT,
        [t for t, *_ in plan],
        [p for _, p, *_ in plan],
        [s for *_, s, _ in plan],
        [m for *_, m in plan],
    )
    assert view.stats.corrupted > 0  # the scenario actually exercised it


def test_mutating_the_fault_profile_resets_cleanly():
    """A fabric whose fault profile changes between batches keeps the
    twin-run equivalence (bucket state is cleared on profile swap)."""
    fabric_a, targets = build_fabric("rate-limited")
    fabric_b, _ = build_fabric("rate-limited")
    plan = probe_plan(targets)
    for fabric in (fabric_a, fabric_b):
        fabric.set_fault_profile("chaos")
    sequential, stats_a = deliver_sequentially(fabric_a, plan)
    batched, stats_b = deliver_batched(fabric_b, plan, with_hints=True)
    assert batched == sequential
    assert stats_b == stats_a


def test_stats_are_flushed_even_when_a_handler_raises():
    class Boom(Exception):
        pass

    def exploding_handler(datagram, now):
        raise Boom

    fabric = NetworkFabric(seed=1)
    address = parse_ip("198.51.100.1")
    fabric.bind(address, "udp", SNMP_PORT, exploding_handler)
    view = fabric.shard_view(seed=7)
    with pytest.raises(Boom):
        view.inject_probe_batch(
            SOURCE, SPORT, SNMP_PORT, [address],
            [encode_discovery_probe(1)], [0.0], [1],
        )
    assert view.stats.injected == 1
    assert view.stats.delivered == 1


def test_response_delay_read_per_delivery():
    """``response_delay`` must be read fresh per delivery — an agent that
    slows down mid-scan shifts later arrivals on both paths alike."""
    def build():
        fabric = NetworkFabric(seed=3)
        address = parse_ip("198.51.100.9")
        agent = SnmpAgent(engine_id=engine_id(9), boot_time=-100.0)
        fabric.bind(address, "udp", SNMP_PORT, agent.handle_datagram)
        return fabric, address, agent

    plan_times = [10.0, 20.0, 30.0]
    arrivals = {}
    for mode in ("sequential", "batched"):
        fabric, address, agent = build()
        view = fabric.shard_view(seed=5)
        collected = []
        for index, send_time in enumerate(plan_times):
            if index == 1:
                agent.behavior = dataclasses.replace(
                    agent.behavior, response_delay=2.5
                )
            if mode == "sequential":
                datagram = Datagram(
                    src=SOURCE, dst=address, sport=SPORT, dport=SNMP_PORT,
                    payload=encode_discovery_probe(index + 1), sent_at=send_time,
                )
                collected.append([a for _, a in view.inject(datagram, send_time)])
            else:
                replies = view.inject_probe_batch(
                    SOURCE, SPORT, SNMP_PORT, [address],
                    [encode_discovery_probe(index + 1)], [send_time], [index + 1],
                )[0]
                collected.append([a for _, a, _ in replies])
        arrivals[mode] = collected
    assert arrivals["batched"] == arrivals["sequential"]
    # The delay actually moved the later arrivals.
    flat = [a for sub in arrivals["batched"] for a in sub]
    assert any(arrival >= 22.0 for arrival in flat)
