"""Property-based round-trip tests for the BER codec."""

from hypothesis import given, settings, strategies as st

from repro.asn1 import ber
from repro.asn1.oid import Oid


@given(st.integers(min_value=-(2**63), max_value=2**64 - 1))
def test_integer_roundtrip(value):
    decoded, offset = ber.decode_integer(ber.encode_integer(value))
    assert decoded == value


@given(st.binary(max_size=512))
def test_octet_string_roundtrip(payload):
    decoded, offset = ber.decode_octet_string(ber.encode_octet_string(payload))
    assert decoded == payload


@given(st.integers(min_value=0, max_value=2**40))
def test_length_roundtrip(length):
    decoded, __ = ber.decode_length(ber.encode_length(length), 0)
    assert decoded == length


_oid_arcs = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=39),
).flatmap(
    lambda head: st.lists(
        st.integers(min_value=0, max_value=2**32), min_size=0, max_size=12
    ).map(lambda tail: head + tuple(tail))
)


@given(_oid_arcs)
def test_oid_roundtrip(arcs):
    oid = Oid(arcs)
    decoded, __ = ber.decode_oid(ber.encode_oid(oid))
    assert decoded == oid


@given(st.binary(max_size=128), st.sampled_from([0x04, 0x30, 0xA0, 0xA8, 0x41]))
def test_tlv_roundtrip(content, tag):
    tag_out, content_out, end = ber.decode_tlv(ber.encode_tlv(tag, content))
    assert (tag_out, content_out) == (tag, content)


@given(st.lists(st.integers(min_value=-(2**31), max_value=2**31), max_size=8))
def test_sequence_of_integers_roundtrip(values):
    seq = ber.encode_sequence(*(ber.encode_integer(v) for v in values))
    content, __ = ber.decode_sequence(seq)
    decoded = [ber.decode_integer_content(body) for __, body in ber.iter_tlvs(content)]
    assert decoded == values


@given(st.binary(max_size=64))
def test_decoder_never_crashes_on_garbage(blob):
    """Arbitrary bytes must raise BerDecodeError or decode cleanly — never
    raise anything else.  The scanner feeds untrusted payloads here."""
    try:
        ber.decode_tlv(blob, 0)
    except ber.BerDecodeError:
        pass


# Every public decoder entry point, exercised the same way: the fault
# fabric can hand any of them truncated or bit-flipped input.
_DECODERS = [
    lambda blob: ber.decode_length(blob, 0),
    lambda blob: ber.decode_tlv(blob, 0),
    lambda blob: ber.decode_integer(blob, 0),
    lambda blob: ber.decode_octet_string(blob, 0),
    lambda blob: ber.decode_null(blob, 0),
    lambda blob: ber.decode_oid(blob, 0),
    lambda blob: ber.decode_sequence(blob, 0),
    lambda blob: ber.decode_integer_content(blob),
    lambda blob: list(ber.iter_tlvs(blob)),
    lambda blob: ber.expect_tag(blob, 0, 0x30, "sequence"),
]


@settings(max_examples=300)
@given(st.binary(max_size=96), st.integers(min_value=0, max_value=9))
def test_every_decoder_fails_only_with_ber_decode_error(blob, which):
    try:
        _DECODERS[which](blob)
    except ber.BerDecodeError:
        pass


def _flip(blob, position, xor):
    mutated = bytearray(blob)
    mutated[position % len(mutated)] ^= xor
    return bytes(mutated)


@settings(max_examples=300)
@given(
    st.lists(st.integers(min_value=-(2**31), max_value=2**31), min_size=1,
             max_size=6),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=1, max_value=255),
)
def test_encode_corrupt_decode_roundtrips_or_fails_cleanly(values, position, xor):
    """A bit-flipped valid encoding either still decodes (to *something*)
    or raises BerDecodeError — the fabric's corruption fault in miniature."""
    blob = ber.encode_sequence(*(ber.encode_integer(v) for v in values))
    mutated = _flip(blob, position, xor)
    try:
        content, __ = ber.decode_sequence(mutated)
        for __, body in ber.iter_tlvs(content):
            ber.decode_integer_content(body)
    except ber.BerDecodeError:
        pass


@settings(max_examples=300)
@given(
    st.lists(st.integers(min_value=-(2**31), max_value=2**31), min_size=1,
             max_size=6),
    st.integers(min_value=0, max_value=200),
)
def test_encode_truncate_decode_fails_cleanly(values, cut):
    """Truncated valid encodings (the fabric's truncation fault) must be
    rejected with BerDecodeError, never an IndexError or worse."""
    blob = ber.encode_sequence(*(ber.encode_integer(v) for v in values))
    truncated = blob[: min(cut, len(blob) - 1)]
    try:
        content, __ = ber.decode_sequence(truncated)
        for __, body in ber.iter_tlvs(content):
            ber.decode_integer_content(body)
    except ber.BerDecodeError:
        pass
