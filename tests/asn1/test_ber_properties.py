"""Property-based round-trip tests for the BER codec."""

from hypothesis import given, strategies as st

from repro.asn1 import ber
from repro.asn1.oid import Oid


@given(st.integers(min_value=-(2**63), max_value=2**64 - 1))
def test_integer_roundtrip(value):
    decoded, offset = ber.decode_integer(ber.encode_integer(value))
    assert decoded == value


@given(st.binary(max_size=512))
def test_octet_string_roundtrip(payload):
    decoded, offset = ber.decode_octet_string(ber.encode_octet_string(payload))
    assert decoded == payload


@given(st.integers(min_value=0, max_value=2**40))
def test_length_roundtrip(length):
    decoded, __ = ber.decode_length(ber.encode_length(length), 0)
    assert decoded == length


_oid_arcs = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=39),
).flatmap(
    lambda head: st.lists(
        st.integers(min_value=0, max_value=2**32), min_size=0, max_size=12
    ).map(lambda tail: head + tuple(tail))
)


@given(_oid_arcs)
def test_oid_roundtrip(arcs):
    oid = Oid(arcs)
    decoded, __ = ber.decode_oid(ber.encode_oid(oid))
    assert decoded == oid


@given(st.binary(max_size=128), st.sampled_from([0x04, 0x30, 0xA0, 0xA8, 0x41]))
def test_tlv_roundtrip(content, tag):
    tag_out, content_out, end = ber.decode_tlv(ber.encode_tlv(tag, content))
    assert (tag_out, content_out) == (tag, content)


@given(st.lists(st.integers(min_value=-(2**31), max_value=2**31), max_size=8))
def test_sequence_of_integers_roundtrip(values):
    seq = ber.encode_sequence(*(ber.encode_integer(v) for v in values))
    content, __ = ber.decode_sequence(seq)
    decoded = [ber.decode_integer_content(body) for __, body in ber.iter_tlvs(content)]
    assert decoded == values


@given(st.binary(max_size=64))
def test_decoder_never_crashes_on_garbage(blob):
    """Arbitrary bytes must raise BerDecodeError or decode cleanly — never
    raise anything else.  The scanner feeds untrusted payloads here."""
    try:
        ber.decode_tlv(blob, 0)
    except ber.BerDecodeError:
        pass
