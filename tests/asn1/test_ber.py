"""Unit tests for the BER codec."""

import pytest

from repro.asn1 import ber
from repro.asn1.oid import Oid


class TestLength:
    def test_short_form(self):
        assert ber.encode_length(0) == b"\x00"
        assert ber.encode_length(127) == b"\x7f"

    def test_long_form(self):
        assert ber.encode_length(128) == b"\x81\x80"
        assert ber.encode_length(256) == b"\x82\x01\x00"
        assert ber.encode_length(65535) == b"\x82\xff\xff"

    def test_roundtrip(self):
        for value in (0, 1, 127, 128, 255, 256, 1000, 65536, 2**31):
            encoded = ber.encode_length(value)
            decoded, offset = ber.decode_length(encoded, 0)
            assert decoded == value
            assert offset == len(encoded)

    def test_negative_rejected(self):
        with pytest.raises(ber.BerEncodeError):
            ber.encode_length(-1)

    def test_indefinite_rejected(self):
        with pytest.raises(ber.BerDecodeError):
            ber.decode_length(b"\x80", 0)

    def test_truncated_long_form(self):
        with pytest.raises(ber.BerDecodeError):
            ber.decode_length(b"\x82\x01", 0)


class TestInteger:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x02\x01\x00"),
            (1, b"\x02\x01\x01"),
            (127, b"\x02\x01\x7f"),
            (128, b"\x02\x02\x00\x80"),
            (-1, b"\x02\x01\xff"),
            (-128, b"\x02\x01\x80"),
            (256, b"\x02\x02\x01\x00"),
        ],
    )
    def test_known_encodings(self, value, expected):
        assert ber.encode_integer(value) == expected

    def test_roundtrip_extremes(self):
        for value in (0, 1, -1, 2**31 - 1, -(2**31), 2**63 - 1, 2**64 - 1):
            decoded, __ = ber.decode_integer(ber.encode_integer(value))
            assert decoded == value

    def test_non_minimal_rejected(self):
        # 0x00 0x01 is a non-minimal encoding of 1.
        with pytest.raises(ber.BerDecodeError):
            ber.decode_integer(b"\x02\x02\x00\x01")

    def test_empty_content_rejected(self):
        with pytest.raises(ber.BerDecodeError):
            ber.decode_integer(b"\x02\x00")

    def test_unsigned_application_type(self):
        encoded = ber.encode_unsigned(3_000_000_000, ber.TAG_COUNTER32)
        assert encoded[0] == ber.TAG_COUNTER32
        tag, content, __ = ber.decode_tlv(encoded)
        assert ber.decode_integer_content(content) == 3_000_000_000

    def test_unsigned_rejects_negative(self):
        with pytest.raises(ber.BerEncodeError):
            ber.encode_unsigned(-5, ber.TAG_COUNTER32)


class TestOctetString:
    def test_empty(self):
        assert ber.encode_octet_string(b"") == b"\x04\x00"
        value, __ = ber.decode_octet_string(b"\x04\x00")
        assert value == b""

    def test_roundtrip(self):
        payload = bytes(range(256))
        value, offset = ber.decode_octet_string(ber.encode_octet_string(payload))
        assert value == payload

    def test_wrong_tag(self):
        with pytest.raises(ber.BerDecodeError):
            ber.decode_octet_string(b"\x02\x01\x00")


class TestNull:
    def test_roundtrip(self):
        value, offset = ber.decode_null(ber.encode_null())
        assert value is None
        assert offset == 2

    def test_nonempty_null_rejected(self):
        with pytest.raises(ber.BerDecodeError):
            ber.decode_null(b"\x05\x01\x00")


class TestOid:
    def test_sysdescr_known_encoding(self):
        # 1.3.6.1.2.1.1.1.0 -> 2b 06 01 02 01 01 01 00
        encoded = ber.encode_oid(Oid("1.3.6.1.2.1.1.1.0"))
        assert encoded == b"\x06\x08\x2b\x06\x01\x02\x01\x01\x01\x00"

    def test_large_arc_base128(self):
        oid = Oid("1.3.6.1.4.1.8072.1.2.1")  # includes arc > 127
        decoded, __ = ber.decode_oid(ber.encode_oid(oid))
        assert decoded == oid

    def test_two_arc_minimum(self):
        decoded, __ = ber.decode_oid(ber.encode_oid(Oid("1.3")))
        assert decoded == Oid("1.3")

    def test_first_arc_2_high_second(self):
        oid = Oid((2, 999, 3))
        decoded, __ = ber.decode_oid(ber.encode_oid(oid))
        assert decoded == oid

    def test_single_arc_unencodable(self):
        with pytest.raises(ber.BerEncodeError):
            ber.encode_oid(Oid((1,)))

    def test_leading_padding_rejected(self):
        # 0x80 continuation prefix with zero payload is invalid.
        with pytest.raises(ber.BerDecodeError):
            ber.decode_oid(b"\x06\x02\x80\x01")

    def test_truncated_subid_rejected(self):
        with pytest.raises(ber.BerDecodeError):
            ber.decode_oid(b"\x06\x02\x2b\x86")


class TestTlv:
    def test_roundtrip(self):
        blob = ber.encode_tlv(0xA8, b"hello")
        tag, content, end = ber.decode_tlv(blob)
        assert tag == 0xA8
        assert content == b"hello"
        assert end == len(blob)

    def test_truncated_body(self):
        with pytest.raises(ber.BerDecodeError):
            ber.decode_tlv(b"\x04\x05abc")

    def test_missing_tag(self):
        with pytest.raises(ber.BerDecodeError):
            ber.decode_tlv(b"", 0)

    def test_high_tag_number_rejected(self):
        with pytest.raises(ber.BerDecodeError):
            ber.decode_tlv(b"\x1f\x01\x00")

    def test_sequence_nesting(self):
        inner = ber.encode_integer(42) + ber.encode_octet_string(b"x")
        seq = ber.encode_sequence(ber.encode_integer(42), ber.encode_octet_string(b"x"))
        content, __ = ber.decode_sequence(seq)
        assert content == inner

    def test_iter_tlvs(self):
        seq_content = ber.encode_integer(1) + ber.encode_integer(2) + ber.encode_null()
        tags = [tag for tag, __ in ber.iter_tlvs(seq_content)]
        assert tags == [ber.TAG_INTEGER, ber.TAG_INTEGER, ber.TAG_NULL]


class TestTagClass:
    def test_tag_from_byte_roundtrip(self):
        for byte in (0x02, 0x30, 0xA0, 0xA8, 0x41, 0x46):
            assert ber.Tag.from_byte(byte).to_byte() == byte

    def test_constructed_bit(self):
        assert ber.Tag.from_byte(0x30).constructed
        assert not ber.Tag.from_byte(0x04).constructed

    def test_classes(self):
        assert ber.Tag.from_byte(0xA0).tag_class is ber.TagClass.CONTEXT
        assert ber.Tag.from_byte(0x41).tag_class is ber.TagClass.APPLICATION
