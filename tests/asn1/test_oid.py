"""Unit tests for the Oid value type."""

import pytest

from repro.asn1.oid import Oid


class TestConstruction:
    def test_from_string(self):
        assert Oid("1.3.6.1").arcs == (1, 3, 6, 1)

    def test_from_iterable(self):
        assert Oid([1, 3, 6]).arcs == (1, 3, 6)

    def test_copy_constructor(self):
        original = Oid("1.3.6")
        assert Oid(original) == original

    def test_leading_dot_tolerated(self):
        assert Oid(".1.3.6") == Oid("1.3.6")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Oid("")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            Oid("1.3.banana")

    def test_negative_arc_rejected(self):
        with pytest.raises(ValueError):
            Oid([1, -3])

    def test_first_arc_bounded(self):
        with pytest.raises(ValueError):
            Oid([3, 1])

    def test_second_arc_bounded_under_itu(self):
        with pytest.raises(ValueError):
            Oid([1, 40])
        # First arc 2 permits large second arcs.
        assert Oid([2, 999]).arcs == (2, 999)


class TestOperations:
    def test_prefix(self):
        assert Oid("1.3.6").is_prefix_of(Oid("1.3.6.1.2"))
        assert Oid("1.3.6").is_prefix_of(Oid("1.3.6"))
        assert not Oid("1.3.6.1.2").is_prefix_of(Oid("1.3.6"))
        assert not Oid("1.3.5").is_prefix_of(Oid("1.3.6"))

    def test_child_and_parent(self):
        base = Oid("1.3.6")
        assert base.child(1, 2) == Oid("1.3.6.1.2")
        assert Oid("1.3.6.1").parent() == base

    def test_root_parent_rejected(self):
        with pytest.raises(ValueError):
            Oid([1]).parent()

    def test_concatenation(self):
        assert Oid("1.3") + Oid("2.6") == Oid((1, 3, 2, 6))
        assert Oid("1.3") + [6, 1] == Oid("1.3.6.1")

    def test_ordering_is_tree_order(self):
        assert Oid("1.3.6.1.1") < Oid("1.3.6.1.2")
        assert Oid("1.3.6") < Oid("1.3.6.1")  # parent sorts before child
        assert Oid("1.3.6.2") > Oid("1.3.6.1.9")

    def test_hash_and_equality(self):
        assert len({Oid("1.3.6"), Oid("1.3.6"), Oid("1.3.7")}) == 2

    def test_str_roundtrip(self):
        text = "1.3.6.1.4.1.8072.1"
        assert str(Oid(text)) == text

    def test_indexing_and_iteration(self):
        oid = Oid("1.3.6.1")
        assert oid[0] == 1
        assert list(oid) == [1, 3, 6, 1]
        assert len(oid) == 4
