"""Unit tests for APPLE-style path-length pruning (§7.2 comparator)."""

import pytest

from repro.alias.apple import PathLengthPruner
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyConfig.tiny(seed=83))


@pytest.fixture(scope="module")
def pruner(topo):
    return PathLengthPruner(topo)


class TestDistanceVectors:
    def test_vector_per_vantage(self, topo, pruner):
        address = next(iter(topo.routers())).interfaces[0].address
        vector = pruner.distance_vector(address)
        assert vector is not None
        assert len(vector) == len(pruner.vantage_asns)
        assert all(d >= 1 for d in vector)

    def test_unknown_address_none(self, topo, pruner):
        import ipaddress

        assert pruner.distance_vector(ipaddress.ip_address("203.0.113.252")) is None

    def test_cache_stability(self, topo, pruner):
        address = next(iter(topo.routers())).interfaces[0].address
        assert pruner.distance_vector(address) == pruner.distance_vector(address)


class TestCompatibility:
    def test_true_aliases_always_compatible(self, topo, pruner):
        """Interfaces of one device share its position in the topology."""
        checked = 0
        for device in topo.routers():
            v4 = [i.address for i in device.ipv4_interfaces]
            if len(v4) < 2:
                continue
            assert pruner.compatible(v4[0], v4[1])
            checked += 1
            if checked >= 10:
                break
        assert checked >= 3

    def test_unknown_distance_conservative(self, topo, pruner):
        import ipaddress

        known = next(iter(topo.routers())).interfaces[0].address
        unknown = ipaddress.ip_address("203.0.113.252")
        assert pruner.compatible(known, unknown)

    def test_prunes_some_cross_device_pairs(self, topo, pruner):
        routers = [d for d in topo.routers() if d.ipv4_interfaces]
        pairs = [
            (left.ipv4_interfaces[0].address, right.ipv4_interfaces[0].address)
            for left in routers[:12]
            for right in routers[12:24]
        ]
        kept, pruned = pruner.prune_pairs(pairs)
        assert pruned > 0
        assert len(kept) + pruned == len(pairs)

    def test_never_prunes_true_alias_pairs(self, topo, pruner):
        """The recall guarantee APPLE's design aims for."""
        true_pairs = []
        for device in topo.routers():
            v4 = [i.address for i in device.ipv4_interfaces]
            for i in range(len(v4) - 1):
                true_pairs.append((v4[i], v4[i + 1]))
        kept, pruned = pruner.prune_pairs(true_pairs)
        assert pruned == 0


class TestComposition:
    def test_pruning_reduces_midar_workload(self, topo):
        """APPLE + MIDAR: fewer pair tests, same true aliases."""
        pruner = PathLengthPruner(topo)
        routers = [d for d in topo.routers() if len(d.ipv4_interfaces) >= 1][:30]
        addresses = [d.ipv4_interfaces[0].address for d in routers]
        pairs = [
            (addresses[i], addresses[j])
            for i in range(len(addresses))
            for j in range(i + 1, len(addresses))
        ]
        kept, pruned = pruner.prune_pairs(pairs)
        assert pruned > 0.05 * len(pairs)
