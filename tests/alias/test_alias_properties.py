"""Property-based tests for alias resolution invariants."""

import ipaddress

from hypothesis import given, settings, strategies as st

from repro.alias.sets import AliasSets, evaluate_against_truth
from repro.alias.snmpv3 import MatchVariant, Snmpv3AliasResolver
from repro.net.mac import MacAddress
from repro.pipeline.records import ValidRecord
from repro.snmp.engine_id import EngineId

# -- strategies --------------------------------------------------------------------

_addresses = st.integers(min_value=1, max_value=2**24).map(
    lambda v: ipaddress.IPv4Address((198 << 24) + v)
)

_engine_ids = st.integers(min_value=0, max_value=200).map(
    lambda i: EngineId.from_mac(9, MacAddress(0x00000C000000 + i))
)


@st.composite
def valid_records(draw):
    address = draw(_addresses)
    lrt = draw(st.floats(min_value=0, max_value=10**7, allow_nan=False))
    drift = draw(st.floats(min_value=-9, max_value=9, allow_nan=False))
    return ValidRecord(
        address=address,
        engine_id=draw(_engine_ids),
        engine_boots=draw(st.integers(min_value=1, max_value=20)),
        last_reboot_first=lrt,
        last_reboot_second=lrt + drift,
        recv_time_first=lrt + 100,
        recv_time_second=lrt + 200,
        engine_time_first=100,
        engine_time_second=200,
    )


record_lists = st.lists(valid_records(), max_size=40, unique_by=lambda r: r.address)


# -- resolver invariants ---------------------------------------------------------------


@settings(max_examples=60)
@given(record_lists, st.sampled_from(list(MatchVariant)), st.booleans())
def test_resolution_is_a_partition(records, variant, both):
    """Every input address lands in exactly one alias set."""
    sets = Snmpv3AliasResolver(variant=variant, use_both_scans=both).resolve(records)
    seen = [a for group in sets for a in group]
    assert sorted(seen, key=int) == sorted((r.address for r in records), key=int)
    assert len(seen) == len(set(seen))


@settings(max_examples=60)
@given(record_lists)
def test_same_key_records_always_merge(records):
    """Records with identical engine triple are never split."""
    resolver = Snmpv3AliasResolver()
    sets = resolver.resolve(records)
    for left in records:
        for right in records:
            if resolver.group_key(left) == resolver.group_key(right):
                assert sets.set_of(left.address) is sets.set_of(right.address)


@settings(max_examples=40)
@given(record_lists)
def test_both_scans_refine_first_only(records):
    """Adding the second scan's field can only split sets, never merge."""
    first = Snmpv3AliasResolver(use_both_scans=False).resolve(records)
    both = Snmpv3AliasResolver(use_both_scans=True).resolve(records)
    assert both.count >= first.count
    # Refinement: every 'both' set is a subset of some 'first' set.
    for group in both:
        member = next(iter(group))
        assert group <= first.set_of(member)


@settings(max_examples=40)
@given(record_lists)
def test_exact_refines_binned(records):
    exact = Snmpv3AliasResolver(variant=MatchVariant.EXACT, use_both_scans=False)
    binned = Snmpv3AliasResolver(variant=MatchVariant.DIVIDE_BY_20, use_both_scans=False)
    exact_sets = exact.resolve(records)
    binned_sets = binned.resolve(records)
    # int(x) equal implies x // 20 equal, so every exact key maps into one
    # binned key: exact is a refinement of the 20-second binning.
    for left in records:
        for right in records:
            if exact.group_key(left) == exact.group_key(right):
                assert binned.group_key(left) == binned.group_key(right)
    assert exact_sets.count >= binned_sets.count


# -- evaluation invariants ------------------------------------------------------------------


@settings(max_examples=50)
@given(record_lists)
def test_perfect_self_evaluation(records):
    """Scoring an inference against itself is always perfect."""
    sets = Snmpv3AliasResolver().resolve(records)
    ev = evaluate_against_truth(sets, list(sets.sets))
    assert ev.precision == 1.0
    assert ev.recall == 1.0


@settings(max_examples=50)
@given(st.lists(_addresses, min_size=1, max_size=30, unique=True))
def test_all_singletons_vacuous_precision(addresses):
    sets = AliasSets(sets=[frozenset({a}) for a in addresses])
    ev = evaluate_against_truth(sets, [frozenset(addresses)])
    assert ev.precision == 1.0  # no pairs asserted
    if len(addresses) > 1:
        assert ev.recall == 0.0
