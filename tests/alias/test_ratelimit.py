"""Unit tests for ICMP rate-limit alias resolution (§7.2 comparator)."""

import pytest

from repro.alias.ratelimit import IcmpRateLimitOracle, RateLimitResolver
from repro.alias.sets import evaluate_against_truth
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyConfig.tiny(seed=71))


@pytest.fixture(scope="module")
def oracle(topo):
    return IcmpRateLimitOracle(topo)


def multi_iface_router(topo, oracle, min_ifaces=2):
    for device in topo.routers():
        v4 = [i.address for i in device.ipv4_interfaces]
        if len(v4) >= min_ifaces and oracle._responsive[device.device_id]:
            return device, v4
    raise AssertionError("no responsive multi-interface router")


class TestOracle:
    def test_limiter_enforces_rate(self, topo, oracle):
        device, addrs = multi_iface_router(topo, oracle)
        rate = oracle.rate_of(addrs[0])
        # Hammer at 4x the limit for one second: roughly `rate` replies
        # (plus burst) must survive.
        replies = sum(
            oracle.probe(addrs[0], 1_000.0 + i / (4 * rate))
            for i in range(int(4 * rate))
        )
        assert replies <= rate * 1.5
        assert replies >= rate * 0.5

    def test_limiter_shared_across_interfaces(self, topo, oracle):
        device, addrs = multi_iface_router(topo, oracle)
        rate = oracle.rate_of(addrs[0])
        # Drain through interface A, then B is immediately limited too.
        t = 5_000.0
        for i in range(int(rate)):
            oracle.probe(addrs[0], t)
        assert not oracle.probe(addrs[1], t)

    def test_slow_probing_never_lost(self, topo, oracle):
        device, addrs = multi_iface_router(topo, oracle)
        assert all(oracle.probe(addrs[0], 9_000.0 + i * 1.0) for i in range(10))


class TestResolver:
    @pytest.fixture(scope="class")
    def resolver(self, oracle):
        return RateLimitResolver(oracle)

    def test_find_limit_close_to_truth(self, topo, oracle, resolver):
        device, addrs = multi_iface_router(topo, oracle)
        true_rate = oracle.rate_of(addrs[0])
        measured = resolver.find_limit(addrs[0], start=100_000.0)
        assert measured is not None
        assert 0.5 * true_rate < measured < 2.0 * true_rate

    def test_unresponsive_target_no_limit(self, topo, oracle, resolver):
        silent = next(
            d for d in topo.devices.values()
            if not oracle._responsive[d.device_id]
        )
        assert resolver.find_limit(silent.interfaces[0].address) is None

    def test_pair_test_accepts_true_aliases(self, topo, oracle, resolver):
        device, addrs = multi_iface_router(topo, oracle)
        assert resolver.pair_test(addrs[0], addrs[1], start=1_000_000.0)

    def test_pair_test_rejects_distinct_devices(self, topo, oracle, resolver):
        a, __ = multi_iface_router(topo, oracle)
        other = next(
            d for d in topo.routers()
            if d.device_id != a.device_id
            and d.ipv4_interfaces
            and oracle._responsive[d.device_id]
        )
        assert not resolver.pair_test(
            a.ipv4_interfaces[0].address,
            other.ipv4_interfaces[0].address,
            start=2_000_000.0,
        )

    def test_resolve_small_candidate_set(self, topo, oracle, resolver):
        device, addrs = multi_iface_router(topo, oracle, min_ifaces=3)
        other = next(
            d for d in topo.routers()
            if d.device_id != device.device_id and d.ipv4_interfaces
        )
        candidates = addrs[:3] + [other.ipv4_interfaces[0].address]
        sets = resolver.resolve(candidates, start=10_000_000.0)
        ev = evaluate_against_truth(sets, topo.true_alias_sets(4))
        assert ev.precision == 1.0
        assert sets.non_singleton_count >= 1
