"""Unit tests for the counter-based resolvers (MIDAR / Speedtrap)."""

import pytest

from repro.alias.ipid import CounterOracle, monotonic_bounds_test
from repro.alias.midar import MidarResolver
from repro.alias.sets import evaluate_against_truth
from repro.alias.speedtrap import SpeedtrapResolver
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology
from repro.topology.model import DeviceType


class TestMonotonicBoundsTest:
    def test_shared_counter_passes(self):
        samples = [(float(t), 100 + 7 * t) for t in range(8)]
        assert monotonic_bounds_test(samples, 1 << 16)

    def test_wrap_tolerated(self):
        samples = [(0.0, 65500), (1.0, 65530), (2.0, 20), (3.0, 60)]
        assert monotonic_bounds_test(samples, 1 << 16)

    def test_two_distinct_counters_fail(self):
        # Interleaved values from counters at offsets 1000 and 40000.
        samples = [(0.0, 1000), (0.5, 40000), (1.0, 1010), (1.5, 40010)]
        assert not monotonic_bounds_test(samples, 1 << 16, max_step_fraction=0.1)

    def test_short_sequences_pass(self):
        assert monotonic_bounds_test([], 1 << 16)
        assert monotonic_bounds_test([(0.0, 5)], 1 << 16)


@pytest.fixture(scope="module")
def topo():
    cfg = TopologyConfig.tiny(seed=31)
    cfg.sequential_ip_id_frac = 0.9  # dense signal for accuracy tests
    return build_topology(cfg)


class TestOracle:
    def test_shared_counter_across_interfaces(self, topo):
        oracle = CounterOracle(topo, modulus=1 << 16, seed=1)
        router = next(
            d for d in topo.routers()
            if len(d.ipv4_interfaces) >= 2 and d.ip_id_rate > 0
        )
        a, b = router.ipv4_interfaces[0].address, router.ipv4_interfaces[1].address
        va = oracle.probe(a, 100.0)
        vb = oracle.probe(b, 100.5)
        if va is not None and vb is not None:
            assert (vb - va) % (1 << 16) < 1000

    def test_unknown_address_unanswered(self, topo):
        import ipaddress

        oracle = CounterOracle(topo, modulus=1 << 16, seed=1)
        assert oracle.probe(ipaddress.ip_address("203.0.113.199"), 0.0) is None

    def test_counter_advances_with_time(self, topo):
        oracle = CounterOracle(
            topo, modulus=1 << 16,
            responsive_prob={t: 1.0 for t in DeviceType}, seed=1,
        )
        device = next(d for d in topo.devices.values() if d.ip_id_rate > 1.0)
        addr = device.interfaces[0].address
        v1 = oracle.probe(addr, 0.0)
        v2 = oracle.probe(addr, 100.0)
        assert (v2 - v1) % (1 << 16) > 50


class TestMidar:
    def test_groups_shared_counter_router(self, topo):
        candidates = [
            i.address
            for d in topo.routers()
            for i in d.ipv4_interfaces
        ]
        sets = MidarResolver(topo).resolve(candidates)
        ev = evaluate_against_truth(sets, topo.true_alias_sets(4))
        assert ev.precision > 0.9
        assert ev.recall > 0.15  # bounded by responsiveness + counter styles

    def test_random_ip_id_devices_stay_singletons(self, topo):
        random_device = next(
            d for d in topo.routers()
            if d.ip_id_random and len(d.ipv4_interfaces) >= 2
        )
        candidates = [i.address for i in random_device.ipv4_interfaces]
        sets = MidarResolver(topo).resolve(candidates)
        assert sets.non_singleton_count == 0

    def test_ignores_v6_candidates(self, topo):
        v6 = topo.all_addresses(6)[:5]
        sets = MidarResolver(topo).resolve(v6)
        assert sets.count == 0

    def test_all_candidates_accounted_for(self, topo):
        candidates = topo.all_addresses(4)[:200]
        sets = MidarResolver(topo).resolve(candidates)
        grouped = {a for g in sets.sets for a in g}
        assert grouped == set(candidates)


class TestSpeedtrap:
    def test_v6_resolution_precision(self, topo):
        candidates = [
            i.address for d in topo.routers() for i in d.ipv6_interfaces
        ]
        sets = SpeedtrapResolver(topo).resolve(candidates)
        ev = evaluate_against_truth(sets, topo.true_alias_sets(6))
        assert ev.precision > 0.9

    def test_lower_coverage_than_midar(self, topo):
        v4 = [i.address for d in topo.routers() for i in d.ipv4_interfaces]
        v6 = [i.address for d in topo.routers() for i in d.ipv6_interfaces]
        midar = MidarResolver(topo).resolve(v4)
        speedtrap = SpeedtrapResolver(topo).resolve(v6)
        if v6 and v4:
            midar_rate = midar.addresses_in_non_singletons / max(1, len(v4))
            speed_rate = speedtrap.addresses_in_non_singletons / max(1, len(v6))
            assert speed_rate <= midar_rate + 0.05
