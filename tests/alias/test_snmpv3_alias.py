"""Unit tests for SNMPv3 alias resolution and alias-set containers."""

import ipaddress


from repro.alias.sets import AliasSets, evaluate_against_truth
from repro.alias.snmpv3 import (
    MatchVariant,
    Snmpv3AliasResolver,
    resolve_aliases,
    resolve_dual_stack,
)
from repro.net.mac import MacAddress
from repro.pipeline.records import ValidRecord
from repro.snmp.engine_id import EngineId

EID_A = EngineId.from_mac(9, MacAddress("00:00:0c:00:00:01"))
EID_B = EngineId.from_mac(9, MacAddress("00:00:0c:00:00:02"))


def record(address, engine_id=EID_A, boots=3, lrt=1000.0, lrt2=None):
    lrt2 = lrt if lrt2 is None else lrt2
    return ValidRecord(
        address=ipaddress.ip_address(address),
        engine_id=engine_id,
        engine_boots=boots,
        last_reboot_first=lrt,
        last_reboot_second=lrt2,
        recv_time_first=lrt + 500,
        recv_time_second=lrt2 + 900,
        engine_time_first=500,
        engine_time_second=900,
    )


class TestGrouping:
    def test_same_triple_grouped(self):
        sets = resolve_aliases([record("192.0.2.1"), record("192.0.2.2")])
        assert sets.count == 1
        assert sets.non_singleton_count == 1

    def test_different_engine_id_split(self):
        sets = resolve_aliases(
            [record("192.0.2.1", EID_A), record("192.0.2.2", EID_B)]
        )
        assert sets.count == 2

    def test_different_boots_split(self):
        sets = resolve_aliases(
            [record("192.0.2.1", boots=3), record("192.0.2.2", boots=4)]
        )
        assert sets.count == 2

    def test_reboot_bin_split(self):
        # 25 seconds apart: different 20-second bins.
        sets = resolve_aliases(
            [record("192.0.2.1", lrt=1000.0), record("192.0.2.2", lrt=1025.0)]
        )
        assert sets.count == 2

    def test_reboot_same_bin_grouped(self):
        sets = resolve_aliases(
            [record("192.0.2.1", lrt=1000.0), record("192.0.2.2", lrt=1008.0)]
        )
        assert sets.count == 1

    def test_shared_engine_id_different_reboots_split(self):
        """The CSCts87275 population: same engine ID, distinct devices."""
        sets = resolve_aliases(
            [
                record("192.0.2.1", lrt=1000.0),
                record("192.0.2.2", lrt=900_000.0),
                record("192.0.2.3", lrt=5_000_000.0),
            ]
        )
        assert sets.count == 3


class TestVariants:
    def test_exact_stricter_than_binned(self):
        records = [
            record("192.0.2.1", lrt=1000.2),
            record("192.0.2.2", lrt=1003.9),
        ]
        exact = Snmpv3AliasResolver(MatchVariant.EXACT).resolve(records)
        binned = Snmpv3AliasResolver(MatchVariant.DIVIDE_BY_20).resolve(records)
        assert exact.count == 2
        assert binned.count == 1

    def test_round_variant(self):
        assert MatchVariant.ROUND.key(1004.0) == 1000
        assert MatchVariant.ROUND.key(1006.0) == 1010

    def test_divide_keys(self):
        assert MatchVariant.DIVIDE_BY_20.key(399.0) == 19
        assert MatchVariant.DIVIDE_BY_20.key(400.0) == 20
        assert MatchVariant.DIVIDE_BY_20_ROUND.key(409.0) == 20
        assert MatchVariant.DIVIDE_BY_20_ROUND.key(411.0) == 21

    def test_both_scans_stricter_than_first(self):
        records = [
            record("192.0.2.1", lrt=1000.0, lrt2=1000.0),
            record("192.0.2.2", lrt=1000.0, lrt2=1050.0),  # drifted in scan 2
        ]
        first_only = Snmpv3AliasResolver(use_both_scans=False).resolve(records)
        both = Snmpv3AliasResolver(use_both_scans=True).resolve(records)
        assert first_only.count == 1
        assert both.count == 2


class TestDualStack:
    def test_cross_family_merge(self):
        v4 = [record("192.0.2.1", lrt=1000.0)]
        v6 = [record("2001:db8::1", lrt=1004.0)]
        sets = resolve_dual_stack(v4, v6)
        assert sets.count == 1
        assert sets.split_by_protocol()["dual"]

    def test_cross_family_split_on_boots(self):
        v4 = [record("192.0.2.1", boots=3)]
        v6 = [record("2001:db8::1", boots=4)]
        sets = resolve_dual_stack(v4, v6)
        assert sets.count == 2


class TestAliasSets:
    def make_sets(self):
        return AliasSets(
            sets=[
                frozenset({ipaddress.ip_address("192.0.2.1"), ipaddress.ip_address("192.0.2.2")}),
                frozenset({ipaddress.ip_address("192.0.2.3")}),
                frozenset({ipaddress.ip_address("2001:db8::1"), ipaddress.ip_address("192.0.2.4")}),
            ],
            technique="test",
        )

    def test_statistics(self):
        sets = self.make_sets()
        assert sets.count == 3
        assert sets.non_singleton_count == 2
        assert sets.addresses_in_non_singletons == 4
        assert sets.mean_non_singleton_size == 2.0
        assert sorted(sets.sizes()) == [1, 2, 2]
        assert sets.address_count == 5

    def test_protocol_split(self):
        split = self.make_sets().split_by_protocol()
        assert len(split["v4"]) == 2
        assert len(split["dual"]) == 1
        assert len(split["v6"]) == 0

    def test_set_of(self):
        sets = self.make_sets()
        addr = ipaddress.ip_address("192.0.2.1")
        assert addr in sets.set_of(addr)
        assert sets.set_of(ipaddress.ip_address("203.0.113.1")) is None

    def test_empty_mean(self):
        empty = AliasSets(sets=[frozenset({ipaddress.ip_address("192.0.2.1")})])
        assert empty.mean_non_singleton_size == 0.0


class TestEvaluation:
    def test_perfect_inference(self):
        a1, a2 = ipaddress.ip_address("192.0.2.1"), ipaddress.ip_address("192.0.2.2")
        truth = [frozenset({a1, a2})]
        inferred = AliasSets(sets=[frozenset({a1, a2})])
        ev = evaluate_against_truth(inferred, truth)
        assert ev.precision == 1.0
        assert ev.recall == 1.0
        assert ev.f1 == 1.0

    def test_false_merge_hurts_precision(self):
        a1 = ipaddress.ip_address("192.0.2.1")
        b1 = ipaddress.ip_address("192.0.2.9")
        truth = [frozenset({a1}), frozenset({b1})]
        inferred = AliasSets(sets=[frozenset({a1, b1})])
        ev = evaluate_against_truth(inferred, truth)
        assert ev.precision == 0.0
        assert ev.recall == 1.0  # no true pairs existed

    def test_missed_merge_hurts_recall(self):
        a1, a2 = ipaddress.ip_address("192.0.2.1"), ipaddress.ip_address("192.0.2.2")
        truth = [frozenset({a1, a2})]
        inferred = AliasSets(sets=[frozenset({a1}), frozenset({a2})])
        ev = evaluate_against_truth(inferred, truth)
        assert ev.precision == 1.0
        assert ev.recall == 0.0
        assert ev.f1 == 0.0

    def test_recall_scoped_to_emitted_addresses(self):
        a1, a2, a3 = (ipaddress.ip_address(f"192.0.2.{i}") for i in (1, 2, 3))
        truth = [frozenset({a1, a2, a3})]
        # Only two of the three addresses were responsive/emitted.
        inferred = AliasSets(sets=[frozenset({a1, a2})])
        ev = evaluate_against_truth(inferred, truth)
        assert ev.true_pairs == 1
        assert ev.recall == 1.0
