"""Unit tests for TCP-timestamp sibling detection (§7.3 comparator)."""

import pytest

from repro.alias.siblings import SiblingDetector, TcpTimestampOracle
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology
from repro.topology.model import DeviceType


@pytest.fixture(scope="module")
def topo():
    cfg = TopologyConfig.tiny(seed=41)
    cfg.server_dual_frac = 0.5       # plenty of dual-stack servers
    cfg.server_open_tcp_frac = 1.0   # all answer TCP (the method needs it)
    return build_topology(cfg)


@pytest.fixture(scope="module")
def detector(topo):
    return SiblingDetector(oracle=TcpTimestampOracle(topo))


def dual_stack_servers(topo):
    return [
        d for d in topo.devices.values()
        if d.device_type is DeviceType.SERVER and d.is_dual_stack and d.open_tcp_ports
    ]


class TestOracle:
    def test_counter_advances_at_device_rate(self, topo):
        oracle = TcpTimestampOracle(topo)
        device = next(d for d in topo.devices.values() if d.open_tcp_ports)
        addr = device.interfaces[0].address
        t0, t1 = oracle.probe(addr, 0.0), oracle.probe(addr, 10.0)
        rate = ((t1 - t0) % (1 << 32)) / 10.0
        assert 90 < rate < 1100  # one of the nominal classes

    def test_closed_device_silent(self, topo):
        device = next(d for d in topo.devices.values() if not d.open_tcp_ports)
        oracle = TcpTimestampOracle(topo)
        assert oracle.probe(device.interfaces[0].address, 0.0) is None

    def test_same_device_same_clock(self, topo):
        oracle = TcpTimestampOracle(topo)
        server = dual_stack_servers(topo)[0]
        v4 = server.ipv4_interfaces[0].address
        v6 = server.ipv6_interfaces[0].address
        a = oracle.probe(v4, 100.0)
        b = oracle.probe(v6, 100.0)
        assert abs(a - b) <= 1  # identical clock, quantization only


class TestDetector:
    def test_true_siblings_classified(self, topo, detector):
        hits = 0
        total = 0
        for server in dual_stack_servers(topo)[:20]:
            verdict = detector.classify_pair(
                server.ipv4_interfaces[0].address,
                server.ipv6_interfaces[0].address,
            )
            if verdict is None:
                continue
            total += 1
            hits += verdict.is_sibling
        assert total >= 5
        assert hits / total > 0.9

    def test_non_siblings_rejected(self, topo, detector):
        servers = dual_stack_servers(topo)
        rejected = 0
        total = 0
        for left, right in zip(servers[:10], servers[10:20]):
            verdict = detector.classify_pair(
                left.ipv4_interfaces[0].address,
                right.ipv6_interfaces[0].address,
            )
            if verdict is None:
                continue
            total += 1
            rejected += not verdict.is_sibling
        assert total >= 3
        assert rejected / total > 0.9

    def test_routers_mostly_untestable(self, topo, detector):
        """The paper's point: the technique cannot reach closed routers."""
        routers = [d for d in topo.routers() if d.is_dual_stack]
        untestable = 0
        for router in routers:
            verdict = detector.classify_pair(
                router.ipv4_interfaces[0].address,
                router.ipv6_interfaces[0].address,
            )
            if verdict is None:
                untestable += 1
        assert routers, "need dual-stack routers in the fixture"
        assert untestable / len(routers) > 0.5

    def test_classify_pairs_skips_silent(self, topo, detector):
        silent = next(d for d in topo.devices.values() if not d.open_tcp_ports)
        server = dual_stack_servers(topo)[0]
        verdicts = detector.classify_pairs(
            [
                (server.ipv4_interfaces[0].address, server.ipv6_interfaces[0].address),
                (silent.interfaces[0].address, server.ipv6_interfaces[0].address),
            ]
        )
        assert len(verdicts) == 1

    def test_rate_estimate_accuracy(self, topo, detector):
        oracle = detector.oracle
        server = dual_stack_servers(topo)[0]
        addr = server.ipv4_interfaces[0].address
        rate, __ = detector.estimate_rate(addr, start=0.0)
        true_rate = oracle._rate[server.device_id]
        assert abs(rate - true_rate) / true_rate < 1e-3
