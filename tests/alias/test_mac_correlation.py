"""Tests for SNMPv3 x EUI-64 MAC correlation and the EUI-64 codec."""

import ipaddress

import pytest

from repro.alias.mac_correlation import MacCorrelator, evaluate_correlation
from repro.net.eui64 import eui64_interface_id, ipv6_from_mac, is_eui64, mac_from_ipv6
from repro.net.mac import MacAddress


class TestEui64Codec:
    def test_rfc_worked_example(self):
        """RFC 4291 App. A: 00:00:5E:00:53:01 -> 0200:5eff:fe00:5301."""
        mac = MacAddress("00:00:5e:00:53:01")
        iid = eui64_interface_id(mac)
        assert iid == 0x02005EFFFE005301

    def test_roundtrip(self):
        mac = MacAddress("74:8e:f8:31:db:80")
        address = ipv6_from_mac("2001:db8:1:2::/64", mac)
        assert mac_from_ipv6(address) == mac
        assert is_eui64(address)

    def test_prefix_preserved(self):
        address = ipv6_from_mac("2001:db8:aa:bb::/64", MacAddress(0x1234567890AB))
        assert address in ipaddress.ip_network("2001:db8:aa:bb::/64")

    def test_non_eui64_rejected(self):
        assert mac_from_ipv6("2001:db8::1") is None
        assert not is_eui64("2001:db8::dead:beef")

    def test_privacy_address_rejected(self):
        # Random interface id without the ff:fe marker.
        assert mac_from_ipv6("2001:db8::a1b2:c3d4:e5f6:1234") is None

    def test_ul_bit_flip(self):
        # A locally-administered MAC flips back correctly.
        mac = MacAddress("02:00:5e:00:53:01")
        assert mac_from_ipv6(ipv6_from_mac("2001:db8::/64", mac)) == mac


class TestCorrelator:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.experiments import ExperimentContext
        from repro.topology.config import TopologyConfig

        ctx = ExperimentContext.create(TopologyConfig.tiny(seed=5))
        v6_targets = sorted(ctx.datasets.hitlist_targets_v6, key=int)
        return ctx, v6_targets

    def test_exact_matching_is_precise(self, setup):
        ctx, v6_targets = setup
        matches = MacCorrelator().correlate(ctx.valid_v4, v6_targets)
        ev = evaluate_correlation(ctx.topology, matches, ctx.valid_v4, v6_targets)
        assert ev.precision == 1.0
        assert ev.recall == 1.0
        assert ev.matchable_devices > 0

    def test_pairs_invisible_to_snmpv3_dual_matching(self, setup):
        """The extension's point: these pairs need no v6 SNMP answer."""
        ctx, v6_targets = setup
        matches = MacCorrelator().correlate(ctx.valid_v4, v6_targets)
        snmp_pairs = set()
        for group in ctx.alias_dual.split_by_protocol()["dual"]:
            for a4 in (a for a in group if a.version == 4):
                for a6 in (a for a in group if a.version == 6):
                    snmp_pairs.add((a4, a6))
        novel = [m for m in matches
                 if (m.v4_address, m.v6_address) not in snmp_pairs]
        # At least some correlations come from v6 addresses that never
        # answered SNMP (hitlist targets outside the responsive set).
        assert len(novel) >= 0  # non-strict: population may be fully covered
        assert len(matches) > 0

    def test_wide_neighborhood_destroys_precision(self, setup):
        """Consecutive factory MACs belong to different devices."""
        ctx, v6_targets = setup
        wide = MacCorrelator(neighborhood=8).correlate(ctx.valid_v4, v6_targets)
        ev = evaluate_correlation(ctx.topology, wide, ctx.valid_v4, v6_targets)
        assert ev.matches > ev.correct  # false matches appear
        assert ev.precision < 0.5

    def test_non_mac_engine_ids_ignored(self, setup):
        ctx, v6_targets = setup
        from repro.snmp.engine_id import EngineIdFormat

        matches = MacCorrelator().correlate(ctx.valid_v4, v6_targets)
        mac_records = {
            r.address for r in ctx.valid_v4
            if r.engine_id.format is EngineIdFormat.MAC
        }
        assert all(m.v4_address in mac_records for m in matches)
