"""Unit tests for alias-set overlap comparison."""

import ipaddress

from repro.alias.compare import compare_alias_sets
from repro.alias.sets import AliasSets


def addr(s):
    return ipaddress.ip_address(s)


def sets(groups, technique="x"):
    return AliasSets(sets=[frozenset(map(addr, g)) for g in groups], technique=technique)


class TestCompare:
    def test_exact_match_detected(self):
        ours = sets([["192.0.2.1", "192.0.2.2"]], "a")
        theirs = sets([["192.0.2.2", "192.0.2.1"]], "b")
        report = compare_alias_sets(ours, theirs)
        assert report.exact_matches == 1
        assert report.partial_overlaps_a == 1

    def test_partial_overlap_not_exact(self):
        ours = sets([["192.0.2.1", "192.0.2.2", "192.0.2.3"]])
        theirs = sets([["192.0.2.1", "192.0.2.2"]])
        report = compare_alias_sets(ours, theirs)
        assert report.exact_matches == 0
        assert report.partial_overlaps_a == 1
        assert report.partial_overlaps_b == 1

    def test_disjoint_sets(self):
        ours = sets([["192.0.2.1"]])
        theirs = sets([["203.0.113.1"]])
        report = compare_alias_sets(ours, theirs)
        assert report.exact_matches == 0
        assert report.partial_overlaps_a == 0
        assert report.shared_addresses == 0
        assert report.complementary

    def test_one_set_touching_many(self):
        ours = sets([["192.0.2.1", "192.0.2.5", "192.0.2.9"]])
        theirs = sets([["192.0.2.1"], ["192.0.2.5"], ["192.0.2.9"]])
        report = compare_alias_sets(ours, theirs)
        assert report.partial_overlaps_a == 1
        assert report.partial_overlaps_b == 3

    def test_address_accounting(self):
        ours = sets([["192.0.2.1", "192.0.2.2"]])
        theirs = sets([["192.0.2.2", "192.0.2.3"]])
        report = compare_alias_sets(ours, theirs)
        assert report.shared_addresses == 1
        assert report.only_a_addresses == 1
        assert report.only_b_addresses == 1

    def test_counts_carried(self):
        ours = sets([["192.0.2.1", "192.0.2.2"], ["192.0.2.9"]], "mine")
        theirs = sets([["203.0.113.1"]], "theirs")
        report = compare_alias_sets(ours, theirs)
        assert (report.sets_a, report.sets_b) == (2, 1)
        assert (report.non_singleton_a, report.non_singleton_b) == (1, 0)
        assert report.technique_a == "mine"
        assert report.complementary  # both collections hold exclusive addresses
