"""Unit tests for the Router Names rDNS technique."""

import pytest

from repro.alias.dns_names import RouterNamesResolver, _suffix_of
from repro.alias.sets import evaluate_against_truth
from repro.topology.config import TopologyConfig
from repro.topology.datasets import build_rdns_zone
from repro.topology.generator import build_topology


@pytest.fixture(scope="module")
def setup():
    cfg = TopologyConfig.tiny(seed=13)
    topo = build_topology(cfg)
    zone = build_rdns_zone(topo, cfg)
    return topo, zone


class TestSuffixExtraction:
    def test_two_label_suffix(self):
        assert _suffix_of("et-1.r0001.net64500.example") == "net64500.example"
        assert _suffix_of("r0001-eth1.net64500.example") == "net64500.example"
        assert _suffix_of("host-1-2-3-4.net64501.example") == "net64501.example"


class TestLearning:
    def test_learned_regexes_only_for_structured_suffixes(self, setup):
        topo, zone = setup
        learned = RouterNamesResolver(zone).learn(topo)
        for suffix in learned:
            assert zone.suffix_styles[suffix] in ("iface-router", "router-iface")

    def test_learned_regexes_meet_ppv_bar(self, setup):
        topo, zone = setup
        for regex in RouterNamesResolver(zone).learn(topo).values():
            assert regex.ppv >= 0.8

    def test_higher_bar_learns_fewer(self, setup):
        topo, zone = setup
        loose = RouterNamesResolver(zone, ppv_threshold=0.5).learn(topo)
        strict = RouterNamesResolver(zone, ppv_threshold=0.999).learn(topo)
        assert len(strict) <= len(loose)


class TestResolution:
    def test_precision_against_ground_truth(self, setup):
        topo, zone = setup
        sets = RouterNamesResolver(zone).resolve(topo)
        ev = evaluate_against_truth(sets, topo.true_alias_sets())
        assert ev.precision > 0.95

    def test_covers_only_ptr_addresses(self, setup):
        topo, zone = setup
        sets = RouterNamesResolver(zone).resolve(topo)
        for group in sets:
            for address in group:
                assert zone.ptr(address) is not None

    def test_dual_stack_sets_from_shared_hostname(self, setup):
        topo, zone = setup
        sets = RouterNamesResolver(zone).resolve(topo)
        split = sets.split_by_protocol()
        # Dual-stack routers with PTRs on both families coalesce.
        dual_routers_with_ptrs = sum(
            1
            for d in topo.routers()
            if d.is_dual_stack
            and any(zone.ptr(i.address) for i in d.ipv4_interfaces)
            and any(zone.ptr(i.address) for i in d.ipv6_interfaces)
            and topo.ases[d.asn].rdns_style in ("iface-router", "router-iface")
        )
        if dual_routers_with_ptrs:
            assert len(split["dual"]) > 0

    def test_smaller_than_snmpv3_universe(self, setup):
        """The paper's core §5.2 finding: rDNS grouping covers far fewer
        addresses than the device population, because of PTR gaps and
        unstructured naming."""
        topo, zone = setup
        sets = RouterNamesResolver(zone).resolve(topo)
        total_router_ifaces = sum(len(d.interfaces) for d in topo.routers())
        assert sets.address_count < total_router_ifaces
