"""Unit tests for the banner-grabbing comparator."""

import pytest

from repro.fingerprint.banner import (
    BannerGrabber,
    BannerOutcome,
    classify_banner,
)
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyConfig.tiny(seed=53))


class TestClassifier:
    @pytest.mark.parametrize(
        "banner,vendor",
        [
            ("SSH-2.0-Cisco-1.25", "Cisco"),
            ("SSH-2.0-HUAWEI-1.5", "Huawei"),
            ("SSH-2.0-Comware-7.1", "H3C"),
            ("SSH-2.0-ROSSSH", "MikroTik"),
            ("SSH-2.0-RomSShell_5.40", "Brocade"),
        ],
    )
    def test_known_banners(self, banner, vendor):
        assert classify_banner(banner) == vendor

    def test_generic_banner_unclassified(self):
        assert classify_banner("SSH-2.0-OpenSSH_8.2p1") is None
        assert classify_banner("Server: nginx") is None


class TestGrabber:
    def test_closed_device_has_no_service(self, topo):
        grabber = BannerGrabber(topo)
        device = next(d for d in topo.devices.values() if not d.open_tcp_ports)
        result = grabber.grab(device.interfaces[0].address)
        assert result.outcome is BannerOutcome.NO_SERVICE
        assert result.banner is None

    def test_cisco_with_ssh_identified(self, topo):
        grabber = BannerGrabber(topo)
        device = next(
            d for d in topo.devices.values()
            if d.vendor == "Cisco" and 22 in d.open_tcp_ports
        )
        result = grabber.grab(device.interfaces[0].address)
        assert result.outcome is BannerOutcome.IDENTIFIED
        assert result.vendor == "Cisco"
        assert "Cisco" in result.banner

    def test_hardened_vendor_uninformative(self, topo):
        grabber = BannerGrabber(topo)
        device = next(
            (d for d in topo.devices.values()
             if d.vendor == "Juniper" and 22 in d.open_tcp_ports),
            None,
        )
        if device is None:
            pytest.skip("no TCP-open Juniper in fixture")
        result = grabber.grab(device.interfaces[0].address)
        # Junos announces a FIPS OpenSSH string: a banner, but no vendor.
        assert result.outcome is BannerOutcome.UNINFORMATIVE

    def test_survey_routers_mostly_unreachable(self, topo):
        """The paper's §7.1 conclusion: routers are tightly secured and
        unresponsive to banner queries."""
        grabber = BannerGrabber(topo)
        router_ips = [d.interfaces[0].address for d in topo.routers()]
        histogram = grabber.survey(router_ips)
        total = sum(histogram.values())
        assert histogram[BannerOutcome.NO_SERVICE] / total > 0.6

    def test_survey_counts_sum(self, topo):
        grabber = BannerGrabber(topo)
        addresses = [d.interfaces[0].address for d in list(topo.devices.values())[:50]]
        histogram = grabber.survey(addresses)
        assert sum(histogram.values()) == 50

    def test_unassigned_address(self, topo):
        import ipaddress

        result = BannerGrabber(topo).grab(ipaddress.ip_address("203.0.113.254"))
        assert result.outcome is BannerOutcome.NO_SERVICE
