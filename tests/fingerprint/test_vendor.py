"""Unit tests for vendor fingerprinting."""

import ipaddress

from repro.fingerprint.vendor import UNKNOWN_VENDOR, infer_vendor, vendor_of_alias_set
from repro.net.mac import MacAddress
from repro.snmp.engine_id import EngineId


class TestInferVendor:
    def test_mac_oui_highest_confidence(self):
        eid = EngineId.from_mac(9, MacAddress("00:00:0c:01:02:03"))
        verdict = infer_vendor(eid)
        assert verdict.vendor == "Cisco"
        assert verdict.source == "mac-oui"
        assert verdict.confident
        assert verdict.corroborated  # OUI and enterprise agree

    def test_oui_enterprise_disagreement_prefers_oui(self):
        # Huawei enterprise number wrapping a Cisco MAC (re-badged gear).
        eid = EngineId.from_mac(2011, MacAddress("00:00:0c:01:02:03"))
        verdict = infer_vendor(eid)
        assert verdict.vendor == "Cisco"
        assert not verdict.corroborated
        assert verdict.enterprise_vendor == "Huawei"

    def test_unregistered_mac_falls_back_to_enterprise(self):
        eid = EngineId.from_mac(9, MacAddress("ee:ee:ee:00:00:01"))
        verdict = infer_vendor(eid)
        assert verdict.vendor == "Cisco"
        assert verdict.source == "enterprise"
        assert not verdict.confident

    def test_net_snmp_format(self):
        eid = EngineId.net_snmp_random(bytes(8))
        verdict = infer_vendor(eid)
        assert verdict.vendor == "Net-SNMP"
        assert verdict.source == "net-snmp"

    def test_ipv4_format_uses_enterprise(self):
        eid = EngineId.from_ipv4(2636, ipaddress.IPv4Address("8.8.8.8"))
        assert infer_vendor(eid).vendor == "Juniper"

    def test_unknown_everything(self):
        eid = EngineId(bytes.fromhex("80ffffff") + b"\x05" + b"\x01\x02")
        verdict = infer_vendor(eid)
        assert verdict.vendor == UNKNOWN_VENDOR
        assert verdict.source == "none"

    def test_legacy_engine_id_enterprise(self):
        eid = EngineId.legacy(9, bytes(8))
        assert infer_vendor(eid).vendor == "Cisco"


class TestAliasSetVendor:
    def test_empty_set(self):
        assert vendor_of_alias_set([]).vendor == UNKNOWN_VENDOR

    def test_prefers_most_confident_member(self):
        weak = EngineId.from_octets(9, b"\x01\x02\x03\x04")       # enterprise only
        strong = EngineId.from_mac(9, MacAddress("00:00:0c:00:00:09"))
        verdict = vendor_of_alias_set([weak, strong])
        assert verdict.source == "mac-oui"

    def test_single_member(self):
        eid = EngineId.from_mac(2011, MacAddress("00:e0:fc:00:00:01"))
        assert vendor_of_alias_set([eid]).vendor == "Huawei"
