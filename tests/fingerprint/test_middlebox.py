"""Unit tests for NAT / load-balancer inference (§9 extension)."""

import ipaddress

import pytest

from repro.fingerprint.middlebox import (
    LoadBalancerProber,
    MiddleboxDetector,
    detect_nat_gateways,
)
from repro.net.transport import LinkProfile, NetworkFabric
from repro.scanner.records import ScanObservation
from repro.snmp.agent import SnmpAgent
from repro.snmp.constants import SNMP_PORT
from repro.snmp.engine_id import EngineId
from repro.snmp.loadbalancer import AgentPool, BalancingPolicy
from repro.net.mac import MacAddress


def obs(address, engine_id):
    return ScanObservation(
        address=ipaddress.ip_address(address),
        recv_time=0.0,
        engine_id=engine_id,
        engine_boots=1,
        engine_time=100,
    )


class TestNatDetection:
    def test_private_embedded_address_flagged(self):
        eid = EngineId.from_ipv4(9, ipaddress.IPv4Address("192.168.4.9"))
        verdicts = detect_nat_gateways([obs("203.0.113.5", eid)])
        assert len(verdicts) == 1
        assert str(verdicts[0].embedded_address) == "192.168.4.9"

    def test_public_embedded_address_not_flagged(self):
        eid = EngineId.from_ipv4(9, ipaddress.IPv4Address("8.8.8.8"))
        assert detect_nat_gateways([obs("203.0.113.5", eid)]) == []

    def test_non_ipv4_formats_ignored(self):
        mac_eid = EngineId.from_mac(9, MacAddress("00:00:0c:01:02:03"))
        assert detect_nat_gateways([obs("203.0.113.5", mac_eid)]) == []

    def test_unparsed_responses_ignored(self):
        assert detect_nat_gateways([obs("203.0.113.5", None)]) == []


class TestAgentPool:
    def make_backends(self, n=3):
        return [
            SnmpAgent(
                engine_id=EngineId.net_snmp_random(bytes([i]) * 8),
                boot_time=0.0,
                engine_boots=1,
            )
            for i in range(n)
        ]

    def test_round_robin_rotates(self):
        from repro.net.packet import make_datagram

        pool = AgentPool(backends=self.make_backends(3))
        dg = make_datagram("198.51.100.1", "192.0.2.1", 40000, 161, b"")
        picked = [pool.pick(dg).engine_id.raw for __ in range(6)]
        assert len(set(picked[:3])) == 3
        assert picked[:3] == picked[3:]

    def test_source_hash_pins_client(self):
        from repro.net.packet import make_datagram

        pool = AgentPool(backends=self.make_backends(4),
                         policy=BalancingPolicy.SOURCE_HASH)
        dg = make_datagram("198.51.100.1", "192.0.2.1", 40000, 161, b"")
        picked = {pool.pick(dg).engine_id.raw for __ in range(8)}
        assert len(picked) == 1

    def test_source_hash_spreads_clients(self):
        from repro.net.packet import make_datagram

        pool = AgentPool(backends=self.make_backends(4),
                         policy=BalancingPolicy.SOURCE_HASH)
        picked = {
            pool.pick(make_datagram(f"198.51.100.{i}", "192.0.2.1", 40000, 161, b"")).engine_id.raw
            for i in range(1, 9)
        }
        assert len(picked) > 1

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            AgentPool(backends=[])

    def test_engine_ids_ground_truth(self):
        pool = AgentPool(backends=self.make_backends(2))
        assert len(pool.engine_ids) == 2


class TestBurstProber:
    def bind_pool(self, policy):
        fabric = NetworkFabric(seed=1, default_profile=LinkProfile(loss_probability=0.0))
        backends = [
            SnmpAgent(
                engine_id=EngineId.net_snmp_random(bytes([i]) * 8),
                boot_time=0.0,
                engine_boots=1,
            )
            for i in range(3)
        ]
        pool = AgentPool(backends=backends, policy=policy)
        vip = ipaddress.ip_address("192.0.2.1")
        fabric.bind(vip, "udp", SNMP_PORT, pool.handle_datagram)
        return fabric, vip

    def test_round_robin_pool_detected(self):
        fabric, vip = self.bind_pool(BalancingPolicy.ROUND_ROBIN)
        verdict = LoadBalancerProber(fabric).probe_target(vip, start=0.0)
        assert verdict is not None
        assert verdict.distinct_engine_ids >= 2

    def test_single_agent_not_flagged(self):
        fabric = NetworkFabric(seed=1, default_profile=LinkProfile(loss_probability=0.0))
        agent = SnmpAgent(
            engine_id=EngineId.from_mac(9, MacAddress("00:00:0c:00:00:07")),
            boot_time=0.0,
            engine_boots=1,
        )
        addr = ipaddress.ip_address("192.0.2.9")
        fabric.bind(addr, "udp", SNMP_PORT, agent.handle_datagram)
        assert LoadBalancerProber(fabric).probe_target(addr, start=0.0) is None

    def test_silent_target_not_flagged(self):
        fabric = NetworkFabric(seed=1)
        addr = ipaddress.ip_address("192.0.2.10")
        assert LoadBalancerProber(fabric).probe_target(addr, start=0.0) is None


class TestDetectorEndToEnd:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.scanner.campaign import ScanCampaign
        from repro.topology.config import TopologyConfig
        from repro.topology.generator import build_topology

        cfg = TopologyConfig.tiny(seed=5)
        topo = build_topology(cfg)
        result = ScanCampaign(topology=topo, config=cfg).run()
        observations = list(result.scans["v4-1"].observations.values()) + list(
            result.scans["v6-1"].observations.values()
        )
        return topo, observations

    def test_nat_precision_perfect(self, setup):
        topo, observations = setup
        report = MiddleboxDetector(topo).run(observations, lb_candidates=[])
        assert report.nat_precision == 1.0
        assert report.nat_recall > 0.5

    def test_lb_detection_quality(self, setup):
        topo, observations = setup
        from repro.topology.model import DeviceType

        vips = [
            d.interfaces[0].address
            for d in topo.devices.values()
            if d.device_type is DeviceType.LOAD_BALANCER and d.snmp_open
        ]
        report = MiddleboxDetector(topo).run(observations, lb_candidates=vips)
        assert report.lb_precision == 1.0
        assert report.lb_recall > 0.5
