"""Unit tests for the Nmap/TTL comparators and uptime statistics."""

import pytest

from repro.fingerprint.nmap import NmapEngine, NmapOutcome, SIGNATURE_DATABASE
from repro.fingerprint.ttl import TtlFingerprinter, infer_ittl
from repro.fingerprint.uptime import uptime_statistics
from repro.topology import timeline
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyConfig.tiny(seed=17))


class TestNmap:
    def test_no_open_port_no_result(self, topo):
        engine = NmapEngine(topo)
        device = next(d for d in topo.devices.values() if not d.open_tcp_ports)
        result = engine.fingerprint(device.interfaces[0].address)
        assert result.outcome is NmapOutcome.NO_RESULT
        assert result.vendor is None

    def test_known_stack_matches(self, topo):
        engine = NmapEngine(topo)
        device = next(
            d for d in topo.devices.values()
            if d.open_tcp_ports and d.os_family == "Linux"
        )
        results = [engine.fingerprint(device.interfaces[0].address) for __ in range(30)]
        matches = [r for r in results if r.outcome is NmapOutcome.MATCH]
        assert matches, "known stack should usually match"
        assert all(r.vendor == "Net-SNMP" for r in matches)
        assert all(r.os_detail for r in matches)

    def test_unknown_stack_guesses(self, topo):
        engine = NmapEngine(topo)
        device = next(
            d for d in topo.devices.values()
            if d.open_tcp_ports and d.os_family not in SIGNATURE_DATABASE
        )
        result = engine.fingerprint(device.interfaces[0].address)
        assert result.outcome is NmapOutcome.GUESS
        assert result.vendor in set(SIGNATURE_DATABASE.values())

    def test_probe_cost_much_higher_than_snmpv3(self, topo):
        engine = NmapEngine(topo)
        addresses = [d.interfaces[0].address for d in list(topo.devices.values())[:50]]
        results = engine.fingerprint_many(addresses)
        total = sum(r.probes_sent for r in results)
        assert total >= 10 * len(addresses)  # SNMPv3 sends exactly 1 each

    def test_unassigned_address_no_result(self, topo):
        import ipaddress

        engine = NmapEngine(topo)
        result = engine.fingerprint(ipaddress.ip_address("203.0.113.250"))
        assert result.outcome is NmapOutcome.NO_RESULT


class TestTtl:
    def test_infer_ittl_rounds_up(self):
        assert infer_ittl(52) == 64
        assert infer_ittl(64) == 64
        assert infer_ittl(120) == 128
        assert infer_ittl(243) == 255
        assert infer_ittl(300) == 255

    def test_cisco_huawei_ambiguity(self, topo):
        fingerprinter = TtlFingerprinter(topo)
        cisco = next(d for d in topo.devices.values() if d.vendor == "Cisco")
        verdict = fingerprinter.fingerprint(cisco.interfaces[0].address)
        assert "Cisco" in verdict.candidate_vendors
        assert "Huawei" in verdict.candidate_vendors
        assert verdict.ambiguous

    def test_juniper_signature_distinct_from_cisco(self, topo):
        fingerprinter = TtlFingerprinter(topo)
        juniper = next(
            (d for d in topo.devices.values() if d.vendor == "Juniper"), None
        )
        if juniper is None:
            pytest.skip("no Juniper device in tiny topology")
        verdict = fingerprinter.fingerprint(juniper.interfaces[0].address)
        assert verdict.signature == (64, 255)
        assert "Cisco" not in verdict.candidate_vendors

    def test_unknown_address(self, topo):
        import ipaddress

        assert TtlFingerprinter(topo).fingerprint(
            ipaddress.ip_address("203.0.113.250")
        ) is None


class TestUptime:
    def test_empty(self):
        stats = uptime_statistics([])
        assert stats.count == 0

    def test_fractions(self):
        now = timeline.REFERENCE_TIME
        day = 86_400
        reboots = [
            now - 5 * day,        # last month + this year
            now - 50 * day,       # this year (scan is mid-April)
            now - 400 * day,      # over a year
            now - 1000 * day,     # over a year
        ]
        stats = uptime_statistics(reboots, reference_time=now)
        assert stats.count == 4
        assert stats.frac_rebooted_last_month == 0.25
        assert stats.frac_uptime_over_one_year == 0.5
        assert 0.25 <= stats.frac_rebooted_this_year <= 0.75

    def test_headline_renders(self):
        stats = uptime_statistics([timeline.REFERENCE_TIME - 86_400])
        text = stats.headline()
        assert "%" in text and "year" in text
