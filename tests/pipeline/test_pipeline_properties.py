"""Property-based tests for filtering-pipeline invariants."""

import ipaddress

from hypothesis import given, settings, strategies as st

from repro.net.mac import MacAddress
from repro.pipeline.filters import FILTER_NAMES, FilterPipeline
from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.engine_id import EngineId

_T1, _T2 = 1_000_000.0, 1_500_000.0

_engine_ids = st.one_of(
    st.none(),
    st.just(EngineId(b"")),
    st.integers(min_value=0, max_value=50).map(
        lambda i: EngineId.from_mac(9, MacAddress(0x00000C000100 + i))
    ),
    st.binary(min_size=1, max_size=6).map(EngineId),       # short / odd
    st.integers(min_value=0, max_value=2**32 - 1).map(
        lambda v: EngineId.from_ipv4(9, ipaddress.IPv4Address(v))
    ),
)


@st.composite
def observation_pairs(draw):
    address = ipaddress.IPv4Address((203 << 24) + draw(st.integers(1, 2**20)))
    eid1 = draw(_engine_ids)
    eid2 = eid1 if draw(st.booleans()) else draw(_engine_ids)
    boots1 = draw(st.integers(min_value=0, max_value=10))
    boots2 = boots1 if draw(st.booleans()) else draw(st.integers(0, 10))
    uptime = draw(st.integers(min_value=0, max_value=500_000))
    drift = draw(st.integers(min_value=-100, max_value=100))
    return (
        ScanObservation(address=address, recv_time=_T1, engine_id=eid1,
                        engine_boots=boots1, engine_time=uptime),
        ScanObservation(address=address, recv_time=_T2, engine_id=eid2,
                        engine_boots=boots2,
                        engine_time=uptime + int(_T2 - _T1) + drift),
    )


pairs_lists = st.lists(
    observation_pairs(), max_size=30, unique_by=lambda p: p[0].address
)


def build_scans(pairs):
    s1 = ScanResult(label="1", ip_version=4, started_at=_T1)
    s2 = ScanResult(label="2", ip_version=4, started_at=_T2)
    for first, second in pairs:
        s1.add(first)
        s2.add(second)
    return s1, s2


@settings(max_examples=50)
@given(pairs_lists)
def test_accounting_balances(pairs):
    """input = kept + removed, always."""
    s1, s2 = build_scans(pairs)
    result = FilterPipeline().run(s1, s2)
    merged = len(pairs)
    assert merged == len(result.valid) + result.stats.removed_total()


@settings(max_examples=50)
@given(pairs_lists)
def test_valid_records_satisfy_every_filter_condition(pairs):
    """Survivors must actually satisfy the documented predicates."""
    s1, s2 = build_scans(pairs)
    result = FilterPipeline().run(s1, s2)
    for record in result.valid:
        assert len(record.engine_id.raw) >= 4
        assert record.engine_boots > 0
        assert record.engine_time_first > 0
        assert abs(record.last_reboot_second - record.last_reboot_first) <= 10.0


@settings(max_examples=30)
@given(pairs_lists, st.sampled_from(FILTER_NAMES))
def test_skipping_a_filter_is_monotone(pairs, skipped):
    """Disabling any single filter never shrinks the output."""
    s1, s2 = build_scans(pairs)
    full = FilterPipeline().run(s1, s2)
    ablated = FilterPipeline(skip={skipped}).run(s1, s2)
    assert len(ablated.valid) >= len(full.valid)


@settings(max_examples=30)
@given(pairs_lists, st.floats(min_value=0.0, max_value=200.0))
def test_threshold_is_monotone(pairs, threshold):
    """A looser reboot threshold never removes more records."""
    s1, s2 = build_scans(pairs)
    tight = FilterPipeline(reboot_threshold=threshold).run(s1, s2)
    loose = FilterPipeline(reboot_threshold=threshold + 50).run(s1, s2)
    assert len(loose.valid) >= len(tight.valid)


@settings(max_examples=30)
@given(pairs_lists)
def test_pipeline_deterministic(pairs):
    s1, s2 = build_scans(pairs)
    a = FilterPipeline().run(s1, s2)
    b = FilterPipeline().run(s1, s2)
    assert [r.address for r in a.valid] == [r.address for r in b.valid]
    assert a.stats.removed == b.stats.removed
