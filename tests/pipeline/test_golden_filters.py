"""Golden-file regression for the ten-step filter pipeline.

``tests/pipeline/golden/`` holds a frozen pair of raw-scan JSONL exports
whose records were hand-designed so that *every* named filter removes at
least one of them, plus survivors in three engine-ID encodings (MAC,
Net-SNMP random, legacy non-conforming) and one non-overlapping address
per scan.  ``expected.json`` freezes the per-step removal counts and the
surviving records.

Any behavioural drift in a filter predicate, the merge join, the JSONL
readers or the streaming pipeline shows up here as an exact count diff —
the fixtures must never be regenerated to make a failing test pass
without understanding which step moved.
"""

import json
from pathlib import Path

import pytest

from repro.io.exports import iter_scan_jsonl, load_scan_jsonl
from repro.pipeline.filters import FILTER_NAMES, FilterPipeline

GOLDEN = Path(__file__).parent / "golden"
FIRST = GOLDEN / "scan-first.jsonl"
SECOND = GOLDEN / "scan-second.jsonl"


@pytest.fixture(scope="module")
def expected():
    return json.loads((GOLDEN / "expected.json").read_text())


def _check(result, expected):
    stats = result.stats
    assert stats.input_first == expected["input_first"]
    assert stats.input_second == expected["input_second"]
    assert stats.non_overlapping == expected["non_overlapping"]
    assert stats.removed == expected["removed"]
    assert stats.valid_engine_id_count == expected["valid_engine_id_count"]
    assert stats.valid_count == expected["valid_count"]
    got = [
        {
            "ip": str(r.address),
            "engine_id": r.engine_id.raw.hex(),
            "engine_boots": r.engine_boots,
            "last_reboot_first": r.last_reboot_first,
            "last_reboot_second": r.last_reboot_second,
        }
        for r in result.valid
    ]
    assert got == expected["valid"]


class TestGoldenCounts:
    def test_batch_pipeline_reproduces_frozen_counts(self, expected):
        result = FilterPipeline().run(
            load_scan_jsonl(FIRST), load_scan_jsonl(SECOND)
        )
        _check(result, expected)

    def test_streaming_pipeline_reproduces_frozen_counts(self, expected):
        result = FilterPipeline().run_stream(
            iter_scan_jsonl(FIRST), iter_scan_jsonl(SECOND)
        )
        _check(result, expected)

    def test_every_filter_step_is_exercised(self, expected):
        """The fixture set is only a regression net if no step is vacuous."""
        assert set(expected["removed"]) == set(FILTER_NAMES)
        for name, count in expected["removed"].items():
            assert count > 0, f"golden fixtures never trigger {name}"
        assert expected["valid_count"] > 0
        assert expected["non_overlapping"] > 0

    def test_skipping_a_step_shifts_its_records_downstream(self, expected):
        """Ablation cross-check: with ``inconsistent-boots`` disabled, its
        record (a mid-scan reboot, which also resets engine time) falls
        through to the reboot-time filter instead of surviving."""
        result = FilterPipeline(skip={"inconsistent-boots"}).run(
            load_scan_jsonl(FIRST), load_scan_jsonl(SECOND)
        )
        assert result.stats.removed["inconsistent-boots"] == 0
        assert (
            result.stats.removed["inconsistent-reboot-time"]
            == expected["removed"]["inconsistent-reboot-time"]
            + expected["removed"]["inconsistent-boots"]
        )
        assert result.stats.valid_count == expected["valid_count"]
