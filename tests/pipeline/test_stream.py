"""Streaming pipeline equivalence: run_stream must match run exactly."""

import pytest

from repro.pipeline.filters import FILTER_NAMES, FilterPipeline
from repro.pipeline.records import merge_scan_pair, merge_scan_stream
from repro.scanner.campaign import ScanCampaign
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology


@pytest.fixture(scope="module")
def scan_pairs():
    cfg = TopologyConfig.tiny(seed=21)
    topo = build_topology(cfg)
    result = ScanCampaign(topology=topo, config=cfg).run()
    return {v: result.scan_pair(v) for v in (4, 6)}


class TestMergeStream:
    @pytest.mark.parametrize("version", [4, 6])
    def test_matches_materialized_merge(self, scan_pairs, version):
        first, second = scan_pairs[version]
        expected, non_overlap = merge_scan_pair(first, second)
        stream = merge_scan_stream(iter(first), iter(second))
        merged = sorted(stream, key=lambda m: int(m.address))
        assert merged == expected
        assert stream.non_overlapping == non_overlap
        assert stream.input_first == first.responsive_count
        assert stream.input_second == second.responsive_count

    def test_duplicate_addresses_keep_first(self, scan_pairs):
        first, second = scan_pairs[4]
        obs = list(first)[:3]
        stream = merge_scan_stream(obs + obs, list(second))
        list(stream)
        assert stream.input_first == 3


class TestRunStreamEquivalence:
    @pytest.mark.parametrize("version", [4, 6])
    def test_identical_valid_and_stats(self, scan_pairs, version):
        first, second = scan_pairs[version]
        materialized = FilterPipeline().run(first, second)
        streamed = FilterPipeline().run_stream(iter(first), iter(second))
        assert streamed.valid == materialized.valid
        assert streamed.stats == materialized.stats

    @pytest.mark.parametrize("skipped", FILTER_NAMES)
    def test_equivalent_under_every_ablation(self, scan_pairs, skipped):
        first, second = scan_pairs[4]
        materialized = FilterPipeline(skip={skipped}).run(first, second)
        streamed = FilterPipeline(skip={skipped}).run_stream(
            iter(first), iter(second)
        )
        assert streamed.valid == materialized.valid
        assert streamed.stats == materialized.stats


class TestDeprecatedConstructor:
    def test_positional_pipeline_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="positional FilterPipeline"):
            pipeline = FilterPipeline(None, 42.0)
        assert pipeline.reboot_threshold == 42.0

    def test_positional_and_keyword_registry_conflict(self):
        from repro.oui.registry import default_registry

        registry = default_registry()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                FilterPipeline(registry, registry=registry)
