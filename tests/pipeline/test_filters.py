"""Unit tests for the §4.4 filtering pipeline.

Uses hand-built scan results so each filter's trigger condition is
exercised in isolation, plus combined runs verifying ordering and stats.
"""

import ipaddress

import pytest

from repro.net.mac import MacAddress
from repro.pipeline.filters import FILTER_NAMES, FilterPipeline
from repro.pipeline.records import merge_scan_pair
from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.engine_id import EngineId

T1 = 1_000_000.0
T2 = 1_500_000.0

GOOD_EID = EngineId.from_mac(9, MacAddress("00:00:0c:aa:bb:01"))


def obs(address, recv, engine_id=GOOD_EID, boots=4, engine_time=5000, **kwargs):
    return ScanObservation(
        address=ipaddress.ip_address(address),
        recv_time=recv,
        engine_id=engine_id,
        engine_boots=boots,
        engine_time=engine_time,
        **kwargs,
    )


def scans(*pairs):
    """Build (scan1, scan2) from (obs1 | None, obs2 | None) pairs."""
    s1 = ScanResult(label="1", ip_version=4, started_at=T1)
    s2 = ScanResult(label="2", ip_version=4, started_at=T2)
    for first, second in pairs:
        if first is not None:
            s1.add(first)
        if second is not None:
            s2.add(second)
    return s1, s2


def good_pair(address="192.0.2.1", engine_id=GOOD_EID, boots=4, uptime=5000):
    """A record that passes every filter: consistent engine triple."""
    return (
        obs(address, T1, engine_id, boots, uptime),
        obs(address, T2, engine_id, boots, uptime + int(T2 - T1)),
    )


class TestMergeAndConsistency:
    def test_clean_record_survives(self):
        result = FilterPipeline().run(*scans(good_pair()))
        assert len(result.valid) == 1
        assert result.stats.removed_total() == 0

    def test_non_overlapping_counted_not_removed(self):
        s1, s2 = scans(good_pair())
        s1.add(obs("192.0.2.50", T1))
        result = FilterPipeline().run(s1, s2)
        assert result.stats.non_overlapping == 1
        assert len(result.valid) == 1

    def test_missing_engine_id_filtered(self):
        pair = (obs("192.0.2.1", T1, engine_id=None), obs("192.0.2.1", T2, engine_id=None))
        result = FilterPipeline().run(*scans(pair, good_pair("192.0.2.2")))
        assert result.stats.removed["missing-engine-id"] == 1

    def test_empty_engine_id_filtered(self):
        empty = EngineId(b"")
        pair = (
            obs("192.0.2.1", T1, engine_id=empty),
            obs("192.0.2.1", T2, engine_id=empty),
        )
        result = FilterPipeline().run(*scans(pair))
        assert result.stats.removed["missing-engine-id"] == 1

    def test_inconsistent_engine_id_filtered(self):
        other = EngineId.from_mac(9, MacAddress("00:00:0c:aa:bb:02"))
        pair = (obs("192.0.2.1", T1, GOOD_EID), obs("192.0.2.1", T2, other))
        result = FilterPipeline().run(*scans(pair))
        assert result.stats.removed["inconsistent-engine-id"] == 1


class TestEngineIdShapeFilters:
    def test_short_engine_id_filtered(self):
        short = EngineId(b"\x01\x02\x03")
        result = FilterPipeline().run(*scans(good_pair(engine_id=short)))
        assert result.stats.removed["short-engine-id"] == 1

    def test_four_byte_engine_id_kept(self):
        four = EngineId(b"\x01\x02\x03\x04")
        result = FilterPipeline().run(*scans(good_pair(engine_id=four)))
        assert result.stats.removed["short-engine-id"] == 0

    def test_promiscuous_data_filtered(self):
        data = b"\xde\xad\xbe\xef\x00\x01"
        cisco = EngineId(bytes.fromhex("80000009") + b"\x03" + data)
        huawei = EngineId(bytes.fromhex("800007db") + b"\x03" + data)  # 2011
        result = FilterPipeline().run(
            *scans(
                good_pair("192.0.2.1", engine_id=cisco),
                good_pair("192.0.2.2", engine_id=huawei),
                good_pair("192.0.2.3"),
            )
        )
        assert result.stats.removed["promiscuous-engine-id"] == 2
        assert len(result.valid) == 1

    def test_same_data_same_enterprise_not_promiscuous(self):
        data = b"\xde\xad\xbe\xef\x00\x01"
        eid = EngineId(bytes.fromhex("80000009") + b"\x03" + data)
        result = FilterPipeline().run(
            *scans(
                good_pair("192.0.2.1", engine_id=eid),
                good_pair("192.0.2.2", engine_id=eid),
            )
        )
        assert result.stats.removed["promiscuous-engine-id"] == 0

    def test_unroutable_ipv4_engine_id_filtered(self):
        private = EngineId.from_ipv4(9, ipaddress.IPv4Address("192.168.1.1"))
        result = FilterPipeline().run(*scans(good_pair(engine_id=private)))
        assert result.stats.removed["unroutable-ipv4-engine-id"] == 1

    def test_routable_ipv4_engine_id_kept(self):
        public = EngineId.from_ipv4(9, ipaddress.IPv4Address("8.8.8.8"))
        result = FilterPipeline().run(*scans(good_pair(engine_id=public)))
        assert result.stats.removed["unroutable-ipv4-engine-id"] == 0

    def test_unregistered_mac_filtered(self):
        unknown = EngineId.from_mac(9, MacAddress("ee:ee:ee:00:00:01"))
        result = FilterPipeline().run(*scans(good_pair(engine_id=unknown)))
        assert result.stats.removed["unregistered-mac"] == 1


class TestTimeFilters:
    def test_zero_engine_time_filtered(self):
        pair = (
            obs("192.0.2.1", T1, engine_time=0, boots=0),
            obs("192.0.2.1", T2, engine_time=0, boots=0),
        )
        result = FilterPipeline().run(*scans(pair))
        assert result.stats.removed["zero-time-or-boots"] == 1

    def test_zero_boots_filtered_even_with_time(self):
        pair = (
            obs("192.0.2.1", T1, boots=0, engine_time=55),
            obs("192.0.2.1", T2, boots=0, engine_time=55 + int(T2 - T1)),
        )
        result = FilterPipeline().run(*scans(pair))
        assert result.stats.removed["zero-time-or-boots"] == 1

    def test_future_engine_time_filtered(self):
        pair = (
            obs("192.0.2.1", T1, engine_time=int(T1) + 999),
            obs("192.0.2.1", T2, engine_time=int(T2) + 999),
        )
        result = FilterPipeline().run(*scans(pair))
        assert result.stats.removed["future-engine-time"] == 1

    def test_inconsistent_boots_filtered(self):
        pair = (
            obs("192.0.2.1", T1, boots=4),
            obs("192.0.2.1", T2, boots=5, engine_time=100),
        )
        result = FilterPipeline().run(*scans(pair))
        assert result.stats.removed["inconsistent-boots"] == 1

    def test_reboot_drift_over_threshold_filtered(self):
        pair = (
            obs("192.0.2.1", T1, engine_time=5000),
            obs("192.0.2.1", T2, engine_time=5000 + int(T2 - T1) + 11),
        )
        result = FilterPipeline().run(*scans(pair))
        assert result.stats.removed["inconsistent-reboot-time"] == 1

    def test_reboot_drift_under_threshold_kept(self):
        pair = (
            obs("192.0.2.1", T1, engine_time=5000),
            obs("192.0.2.1", T2, engine_time=5000 + int(T2 - T1) + 9),
        )
        result = FilterPipeline().run(*scans(pair))
        assert result.stats.removed["inconsistent-reboot-time"] == 0

    def test_threshold_configurable(self):
        pair = (
            obs("192.0.2.1", T1, engine_time=5000),
            obs("192.0.2.1", T2, engine_time=5000 + int(T2 - T1) + 15),
        )
        loose = FilterPipeline(reboot_threshold=20.0).run(*scans(pair))
        assert loose.stats.removed["inconsistent-reboot-time"] == 0


class TestConfiguration:
    def test_skip_filter(self):
        pair = (
            obs("192.0.2.1", T1, boots=4),
            obs("192.0.2.1", T2, boots=5, engine_time=100),
        )
        result = FilterPipeline(skip={"inconsistent-boots", "inconsistent-reboot-time"}).run(
            *scans(pair)
        )
        assert result.stats.removed["inconsistent-boots"] == 0
        assert len(result.valid) == 1

    def test_unknown_skip_rejected(self):
        with pytest.raises(ValueError):
            FilterPipeline(skip={"no-such-filter"})

    def test_all_filter_names_covered(self):
        result = FilterPipeline().run(*scans(good_pair()))
        assert set(result.stats.removed) == set(FILTER_NAMES)

    def test_valid_engine_id_count_is_intermediate(self):
        pair_bad_time = (
            obs("192.0.2.1", T1, boots=0, engine_time=0),
            obs("192.0.2.1", T2, boots=0, engine_time=0),
        )
        result = FilterPipeline().run(*scans(pair_bad_time, good_pair("192.0.2.2")))
        assert result.stats.valid_engine_id_count == 2
        assert result.stats.valid_count == 1

    def test_valid_record_fields(self):
        result = FilterPipeline().run(*scans(good_pair()))
        record = result.valid[0]
        assert record.engine_id.raw == GOOD_EID.raw
        assert record.engine_boots == 4
        assert record.last_reboot_first == pytest.approx(T1 - 5000)
        assert abs(record.last_reboot_second - record.last_reboot_first) <= 10.0


class TestMerge:
    def test_merge_counts(self):
        s1, s2 = scans(good_pair("192.0.2.1"), good_pair("192.0.2.2"))
        s1.add(obs("192.0.2.77", T1))
        s2.add(obs("192.0.2.88", T2))
        merged, non_overlap = merge_scan_pair(s1, s2)
        assert len(merged) == 2
        assert non_overlap == 2

    def test_merge_sorted_by_address(self):
        s1, s2 = scans(good_pair("192.0.2.9"), good_pair("192.0.2.1"))
        merged, __ = merge_scan_pair(s1, s2)
        assert [str(m.address) for m in merged] == ["192.0.2.1", "192.0.2.9"]
