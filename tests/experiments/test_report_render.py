"""Report-rendering coverage, including the extension sections."""

from repro.experiments.report import render_full_report


class TestExtensionRendering:
    def test_extensions_render(self, ctx):
        text = render_full_report(ctx, include_comparators=False,
                                  include_extensions=True)
        for needle in (
            "amplification vectors", "NAT and load-balancer inference",
            "longitudinal monitoring", "persistence",
        ):
            assert needle in text

    def test_extensions_off_by_default(self, ctx):
        text = render_full_report(ctx, include_comparators=False)
        assert "longitudinal monitoring" not in text

    def test_figure12_carries_confidence_intervals(self, ctx):
        text = render_full_report(ctx, include_comparators=False)
        assert "share" in text and "%]" in text
