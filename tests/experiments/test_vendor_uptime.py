"""Tests for the per-vendor uptime breakdown."""

from repro.experiments.figures_vendor import figure13_by_vendor


class TestFigure13ByVendor:
    def test_major_vendors_present(self, ctx):
        stats = figure13_by_vendor(ctx, min_routers=5)
        assert "Cisco" in stats

    def test_fractions_valid(self, ctx):
        for vendor, s in figure13_by_vendor(ctx, min_routers=3).items():
            assert 0.0 <= s.frac_uptime_over_one_year <= 1.0
            assert 0.0 <= s.frac_rebooted_last_month <= 1.0
            assert s.count >= 3

    def test_min_routers_threshold(self, ctx):
        loose = figure13_by_vendor(ctx, min_routers=1)
        strict = figure13_by_vendor(ctx, min_routers=50)
        assert len(strict) <= len(loose)
