"""Tests for the figure/table CSV publisher."""

import csv

import pytest

from repro.experiments.publish import publish_all


@pytest.fixture(scope="class")
def published(ctx, tmp_path_factory):
    out = tmp_path_factory.mktemp("publish")
    files = publish_all(ctx, out)
    return out, files


class TestPublish:
    def test_all_expected_files_written(self, published):
        out, files = published
        for name in ("table1.csv", "table3.csv", "fig05_engine_id_formats.csv",
                     "fig12_router_vendors.csv", "fig16_top_networks.csv"):
            assert name in files
            assert (out / name).exists()

    def test_files_are_valid_csv_with_headers(self, published):
        out, files = published
        for name in files:
            rows = list(csv.reader((out / name).read_text().splitlines()))
            assert len(rows) >= 1
            assert all(rows[0]), f"{name} has an empty header cell"

    def test_table1_matches_context(self, published, ctx):
        out, __ = published
        rows = list(csv.DictReader((out / "table1.csv").read_text().splitlines()))
        scan1, __scan2 = ctx.campaign.scan_pair(4)
        v4_row = next(r for r in rows if r["scan"] == "v4-1")
        assert int(v4_row["responsive_ips"]) == scan1.responsive_count

    def test_ecdf_files_monotonic(self, published):
        out, files = published
        for name in files:
            if "fig08" not in name and "fig17" not in name:
                continue
            rows = list(csv.DictReader((out / name).read_text().splitlines()))
            cdf = [float(r["cdf"]) for r in rows]
            assert cdf == sorted(cdf)
            if cdf:
                assert cdf[-1] == pytest.approx(1.0)

    def test_vendor_csv_totals_consistent(self, published):
        out, __ = published
        rows = list(csv.DictReader(
            (out / "fig12_router_vendors.csv").read_text().splitlines()
        ))
        for row in rows:
            parts = int(row["v4_only"]) + int(row["v6_only"]) + int(row["dual"])
            assert parts == int(row["total"])

    def test_publish_is_deterministic(self, ctx, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        publish_all(ctx, a)
        publish_all(ctx, b)
        for name in ("table1.csv", "fig12_router_vendors.csv"):
            assert (a / name).read_text() == (b / name).read_text()
