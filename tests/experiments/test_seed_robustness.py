"""Seed-robustness: the paper's headline claims must not hinge on one RNG
draw.  Three small-scale Internets with different seeds all have to
satisfy the core qualitative results."""

import pytest

from repro.experiments import ExperimentContext
from repro.experiments import figures_engine as fe
from repro.experiments import figures_vendor as fv
from repro.snmp.engine_id import EngineIdFormat
from repro.topology.config import TopologyConfig


@pytest.fixture(scope="module", params=[7, 99, 31337])
def seeded_ctx(request):
    return ExperimentContext.create(
        TopologyConfig.paper_scale(divisor=400, seed=request.param)
    )


class TestCoreClaimsAcrossSeeds:
    def test_mac_dominant_format(self, seeded_ctx):
        f5 = fe.figure5(seeded_ctx)
        assert f5.share(4, EngineIdFormat.MAC) > 0.35

    def test_router_vendor_leaders(self, seeded_ctx):
        f12 = fv.figure12(seeded_ctx)
        top = f12.top(3)
        assert top[0][0] == "Cisco"
        assert "Huawei" in [v for v, __ in top]

    def test_device_vendor_leaders(self, seeded_ctx):
        f11 = fv.figure11(seeded_ctx)
        assert {"Net-SNMP", "Cisco"} <= {v for v, __ in f11.top(4)}

    def test_alias_precision(self, seeded_ctx):
        from repro.alias.sets import evaluate_against_truth

        ev = evaluate_against_truth(
            seeded_ctx.alias_dual, seeded_ctx.topology.true_alias_sets()
        )
        assert ev.precision > 0.99
        assert ev.recall > 0.8

    def test_reboot_consistency_knee(self, seeded_ctx):
        f8 = fe.figure8(seeded_ctx)
        assert f8.routers_v4.at(10) > 0.9

    def test_uptime_shape(self, seeded_ctx):
        f13 = fv.figure13(seeded_ctx)
        assert f13.frac_uptime_over_one_year < 0.45
        assert f13.frac_rebooted_this_year > 0.35

    def test_high_dominance(self, seeded_ctx):
        f17 = fv.figure17(seeded_ctx)
        assert f17.high_dominance_fraction(2, 0.7) > 0.55
