"""Shared experiment context for shape tests.

One medium-scale measurement run (1/250 of the paper's Internet) is built
per test session; every table/figure test projects from it, exactly as
the evaluation modules do.
"""

import pytest

from repro.experiments import ExperimentContext
from repro.topology.config import TopologyConfig


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext.create(TopologyConfig.paper_scale(divisor=250, seed=2021))
