"""Tests for the extension experiments (middlebox inference, monitoring)."""

import pytest

from repro.experiments.extensions import longitudinal_experiment, middlebox_experiment


class TestMiddleboxExperiment:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return middlebox_experiment(ctx)

    def test_nat_mining(self, result):
        assert result.nats_found > 0
        assert result.report.nat_precision == 1.0
        assert result.report.nat_recall > 0.4

    def test_lb_burst(self, result):
        assert result.report.lb_precision == 1.0
        # Triage catches round-robin pools; source-hash pools can hide.
        assert 0.3 < result.report.lb_recall <= 1.0

    def test_triage_is_selective(self, result, ctx):
        scan1, __ = ctx.campaign.scan_pair(4)
        assert result.lb_candidates_probed < scan1.responsive_count


class TestLongitudinalExperiment:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return longitudinal_experiment(ctx, offsets_days=(30.0, 180.0))

    def test_snapshots_in_order(self, result):
        assert [s.offset_days for s in result.snapshots] == [30.0, 180.0]

    def test_engine_ids_persistent(self, result):
        """The property the whole technique rests on: the identifier does
        not drift over months."""
        for snapshot in result.snapshots:
            assert snapshot.persistence_fraction > 0.99

    def test_population_roughly_stable(self, result):
        for snapshot in result.snapshots:
            churn = snapshot.new_addresses + snapshot.gone_addresses
            assert churn < 0.2 * snapshot.responsive

    def test_uptime_grows_between_snapshots(self, result):
        first, second = result.snapshots
        assert second.median_uptime_days > first.median_uptime_days + 100
