"""Unit tests for the shared ExperimentContext plumbing."""


from repro.experiments import ExperimentContext
from repro.topology.config import TopologyConfig


class TestContextCaching:
    def test_cached_properties_are_stable(self, ctx):
        assert ctx.alias_dual is ctx.alias_dual
        assert ctx.router_sets is ctx.router_sets
        assert ctx.record_by_address is ctx.record_by_address

    def test_valid_records_match_pipeline(self, ctx):
        assert len(ctx.valid_v4) == ctx.pipeline_v4.stats.valid_count
        assert len(ctx.valid_v6) == ctx.pipeline_v6.stats.valid_count

    def test_record_index_covers_both_families(self, ctx):
        versions = {a.version for a in ctx.record_by_address}
        assert versions == {4, 6}

    def test_merged_views_cached(self, ctx):
        assert ctx.merged_v4 is ctx.merged_v4
        assert len(ctx.merged_v4) > 0


class TestRouterTagging:
    def test_router_sets_subset_of_dual(self, ctx):
        dual_ids = {id(g) for g in ctx.alias_dual.sets}
        assert all(id(g) in dual_ids for g in ctx.router_sets.sets)

    def test_is_router_set_consistency(self, ctx):
        for group in ctx.router_sets.sets[:50]:
            assert ctx.is_router_set(group)

    def test_responsive_router_ips_within_dataset(self, ctx):
        assert ctx.responsive_router_ips_v4 <= set(ctx.datasets.union_v4)


class TestAsAttribution:
    def test_as_of_set_matches_ground_truth(self, ctx):
        checked = 0
        for group in ctx.alias_dual.sets[:100]:
            asn = ctx.as_of_set(group)
            if asn is None:
                continue
            device = ctx.topology.device_of_address(next(iter(group)))
            if device is not None:
                assert asn == device.asn
                checked += 1
        assert checked > 50

    def test_as_of_empty_counts(self, ctx):
        import ipaddress

        unknown = frozenset({ipaddress.ip_address("203.0.113.199")})
        assert ctx.as_of_set(unknown) is None


class TestVendorViews:
    def test_device_vendor_count_matches_sets(self, ctx):
        assert len(ctx.device_vendors) == ctx.alias_dual.count

    def test_router_vendor_count_matches_router_sets(self, ctx):
        assert len(ctx.router_vendors) == ctx.router_sets.count

    def test_router_reboots_one_per_set(self, ctx):
        assert len(ctx.router_last_reboots) <= ctx.router_sets.count


class TestCustomPipeline:
    def test_custom_pipeline_threads_through(self):
        from repro.pipeline.filters import FilterPipeline

        loose = ExperimentContext.create(
            TopologyConfig.tiny(seed=19),
            pipeline=FilterPipeline(reboot_threshold=120.0),
        )
        strict = ExperimentContext.create(
            TopologyConfig.tiny(seed=19),
            pipeline=FilterPipeline(reboot_threshold=2.0),
        )
        assert len(loose.valid_v4) >= len(strict.valid_v4)
