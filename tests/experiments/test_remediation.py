"""Tests for the §8 remediation experiment."""

import pytest

from repro.experiments.remediation import MITIGATIONS, remediation_experiment
from repro.topology.config import TopologyConfig


@pytest.fixture(scope="module")
def experiment():
    return remediation_experiment(TopologyConfig.tiny(seed=5))


class TestMitigations:
    def test_all_mitigations_measured(self, experiment):
        assert set(experiment.outcomes) == set(MITIGATIONS)

    def test_acl_silences_everything(self, experiment):
        """Segregated management: the Internet-side scan sees nothing."""
        assert experiment.outcomes["acl"].responsive_ips == 0
        assert experiment.outcomes["all"].responsive_ips == 0

    def test_explicit_v3_removes_implicit_population(self, experiment):
        baseline = experiment.outcomes["none"]
        explicit = experiment.outcomes["explicit-v3"]
        assert explicit.responsive_ips < baseline.responsive_ips
        assert explicit.reduction_vs(baseline) > 0.05

    def test_random_engine_ids_kill_mac_fingerprinting(self, experiment):
        baseline = experiment.outcomes["none"]
        randomized = experiment.outcomes["random-engine-id"]
        assert baseline.mac_identified_vendors > 0
        assert randomized.mac_identified_vendors == 0
        # But the devices still respond — persistence without identity.
        assert randomized.responsive_ips == baseline.responsive_ips

    def test_random_engine_ids_keep_alias_resolution(self, experiment):
        """Random-but-persistent engine IDs still resolve aliases — the
        mitigation blinds fingerprinting, not aliasing."""
        baseline = experiment.outcomes["none"]
        randomized = experiment.outcomes["random-engine-id"]
        assert randomized.non_singleton_alias_sets > 0.7 * baseline.non_singleton_alias_sets

    def test_render(self, experiment):
        text = experiment.render()
        assert "mitigation" in text
        assert "random-engine-id" in text


class TestPartialAdoption:
    def test_partial_adoption_partial_protection(self):
        experiment = remediation_experiment(
            TopologyConfig.tiny(seed=5), adoption=0.5, mitigations=("none", "all")
        )
        baseline = experiment.outcomes["none"]
        mitigated = experiment.outcomes["all"]
        reduction = mitigated.reduction_vs(baseline)
        assert 0.2 < reduction < 0.8  # half the networks, roughly half the view

    def test_unknown_mitigation_rejected(self):
        with pytest.raises(ValueError):
            remediation_experiment(
                TopologyConfig.tiny(seed=5), mitigations=("voodoo",)
            )
