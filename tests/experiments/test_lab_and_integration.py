"""Lab-validation tests (§6.2.1) and cross-stage integration checks."""

import pytest

from repro.alias.sets import evaluate_against_truth
from repro.experiments.lab import LabRouter, default_lab, run_lab_experiment
from repro.experiments.report import render_full_report
from repro.oui.registry import default_registry


class TestLabValidation:
    @pytest.fixture(scope="class")
    def reports(self):
        return [run_lab_experiment(router) for router in default_lab()]

    def test_three_bench_routers(self, reports):
        assert [r.router for r in reports] == [
            "cisco-ios-15.2", "cisco-iosxr-6.0.1", "juniper-junos-17.3",
        ]

    def test_silent_out_of_the_box(self, reports):
        assert all(not r.answers_before_config for r in reports)

    def test_v2c_after_single_config_line(self, reports):
        assert all(r.v2c_works_after_config for r in reports)

    def test_v3_implicitly_enabled(self, reports):
        """The paper's headline lab finding."""
        assert all(r.v3_discovery_after_config for r in reports)

    def test_engine_id_is_vendor_mac(self, reports):
        assert reports[0].engine_mac_vendor == "Cisco"
        assert reports[2].engine_mac_vendor == "Juniper"

    def test_same_engine_id_all_interfaces(self, reports):
        assert all(r.same_engine_id_on_all_interfaces for r in reports)

    def test_first_interface_not_smallest_mac(self, reports):
        """Contradicts RFC 3411 guidance — the paper's observation."""
        for report in reports:
            assert report.engine_mac_is_first_interface
            assert not report.engine_mac_is_smallest

    def test_custom_router_buildable(self):
        router = LabRouter.build(
            "h3c-test", "H3C", "H3C Comware 7",
            enterprise=25506,
            first_mac=default_registry().make_mac("H3C", 0, 0x9000),
        )
        report = run_lab_experiment(router, community=b"readonly")
        assert report.v3_discovery_after_config
        assert report.engine_mac_vendor == "H3C"


class TestEndToEndAccuracy:
    """The accuracy claims the operators' survey (§6.2.2) supports."""

    def test_alias_precision_near_perfect(self, ctx):
        ev = evaluate_against_truth(ctx.alias_dual, ctx.topology.true_alias_sets())
        assert ev.precision > 0.99

    def test_alias_recall_high(self, ctx):
        ev = evaluate_against_truth(ctx.alias_dual, ctx.topology.true_alias_sets())
        assert ev.recall > 0.85

    def test_vendor_fingerprints_match_ground_truth(self, ctx):
        correct = 0
        total = 0
        for group, verdict in ctx.device_vendors:
            if verdict.vendor == "unknown":
                continue
            device = ctx.topology.device_of_address(next(iter(group)))
            if device is None:
                continue
            total += 1
            if device.vendor == verdict.vendor:
                correct += 1
        assert total > 100
        assert correct / total > 0.95

    def test_router_tags_mostly_true_routers(self, ctx):
        from repro.topology.model import DeviceType

        routers = 0
        total = 0
        for group in ctx.router_sets.sets:
            device = ctx.topology.device_of_address(next(iter(group)))
            if device is None:
                continue
            total += 1
            if device.device_type is DeviceType.ROUTER:
                routers += 1
        assert total > 0
        assert routers / total > 0.7


class TestReport:
    def test_full_report_renders(self, ctx):
        text = render_full_report(ctx, include_comparators=False)
        for needle in (
            "Table 1", "Table 2", "Table 3", "Figure 4", "Figure 5",
            "Figure 13", "Figure 17", "Section 8", "lab validation",
        ):
            assert needle in text
        assert len(text) > 3000

    def test_report_with_comparators(self, ctx):
        text = render_full_report(ctx, include_comparators=True)
        for needle in ("MIDAR", "Router Names", "Nmap", "5.4"):
            assert needle in text
