"""Shape tests for Tables 1–3: the paper's headline count structure."""

from repro.experiments import tables


class TestTable1:
    def test_four_rows_in_schedule_order(self, ctx):
        table = tables.table1(ctx)
        assert [row.label for row in table.rows] == ["v6-1", "v6-2", "v4-1", "v4-2"]

    def test_count_ordering_invariants(self, ctx):
        """responsive >= unique engine IDs; valid-eid <= responsive;
        valid-eid+time <= valid-eid — Table 1's column structure."""
        for row in tables.table1(ctx).rows:
            assert row.unique_engine_ids <= row.responsive_ips
            assert row.valid_engine_id_time_ips <= row.valid_engine_id_ips
            assert row.valid_engine_id_ips <= row.responsive_ips

    def test_v4_dwarfs_v6(self, ctx):
        """Paper: 31M IPv4 responders vs 180k IPv6."""
        table = tables.table1(ctx)
        v4 = table.rows[2].responsive_ips
        v6 = table.rows[0].responsive_ips
        assert v4 > 2 * v6

    def test_scan_pairs_similar_size(self, ctx):
        table = tables.table1(ctx)
        for first, second in ((table.rows[0], table.rows[1]), (table.rows[2], table.rows[3])):
            ratio = first.responsive_ips / second.responsive_ips
            assert 0.9 < ratio < 1.1

    def test_filtering_keeps_most_v6_times_but_fewer_v4(self, ctx):
        """Paper: IPv6 time filtering is mild (140k of 152k) while IPv4
        loses over half (12.5M of 27M)."""
        table = tables.table1(ctx)
        v6_keep = table.rows[0].valid_engine_id_time_ips / table.rows[0].valid_engine_id_ips
        v4_keep = table.rows[2].valid_engine_id_time_ips / table.rows[2].valid_engine_id_ips
        assert v6_keep > v4_keep

    def test_render(self, ctx):
        text = tables.table1(ctx).render()
        assert "v4-1" in text and "#EngineIDs" in text


class TestTable2:
    def test_structure(self, ctx):
        table = tables.table2(ctx)
        assert [r.dataset for r in table.rows] == [
            "ITDK", "RIPE Atlas", "IPv6 Hitlist", "Union",
        ]

    def test_itdk_is_largest_v4_source(self, ctx):
        table = tables.table2(ctx)
        assert table.row("ITDK").ipv4_addresses > table.row("RIPE Atlas").ipv4_addresses

    def test_union_bounds(self, ctx):
        table = tables.table2(ctx)
        union = table.row("Union")
        itdk = table.row("ITDK")
        assert union.ipv4_addresses >= itdk.ipv4_addresses
        assert union.ipv4_addresses <= itdk.ipv4_addresses + table.row("RIPE Atlas").ipv4_addresses

    def test_snmpv3_overlap_partial(self, ctx):
        """Paper: 447k of 2.9M ITDK IPs responsive — a strict subset."""
        row = tables.table2(ctx).row("ITDK")
        assert 0 < row.ipv4_snmpv3 < row.ipv4_addresses

    def test_hitlist_largest_v6_source(self, ctx):
        table = tables.table2(ctx)
        assert (
            table.row("IPv6 Hitlist").ipv6_addresses
            >= table.row("RIPE Atlas").ipv6_addresses
        )


class TestTable3:
    def test_eight_variants(self, ctx):
        assert len(tables.table3(ctx).rows) == 8

    def test_exact_produces_most_sets(self, ctx):
        """Appendix A: exact matching splits most aggressively."""
        table = tables.table3(ctx)
        exact = table.row("Exact both").alias_sets
        binned = table.row("Divide by 20 both").alias_sets
        assert exact >= binned

    def test_binned_groups_more_ips(self, ctx):
        table = tables.table3(ctx)
        exact = table.row("Exact both").ips_in_non_singletons
        binned = table.row("Divide by 20 both").ips_in_non_singletons
        assert binned >= exact

    def test_divide_variants_nearly_identical(self, ctx):
        """Paper: 'Divide by 20' and 'Divide by 20+round' rows match."""
        table = tables.table3(ctx)
        a = table.row("Divide by 20 both")
        b = table.row("Divide by 20+round both")
        assert abs(a.alias_sets - b.alias_sets) <= 0.02 * a.alias_sets

    def test_ips_per_set_plausible(self, ctx):
        for row in tables.table3(ctx).rows:
            assert 1.5 < row.ips_per_non_singleton < 50
