"""Shape tests for every figure: the paper's prose claims, checked."""

import pytest

from repro.experiments import figures_alias as fa
from repro.experiments import figures_engine as fe
from repro.experiments import figures_vendor as fv
from repro.snmp.engine_id import EngineIdFormat
from repro.topology.model import Region


class TestFigure4:
    def test_majority_singleton(self, ctx):
        f4 = fe.figure4(ctx)
        assert f4.singleton_fraction_v4 > 0.8
        assert f4.singleton_fraction_v6 > 0.5

    def test_heavy_tail_exists(self, ctx):
        """Some engine IDs cover very many IPs (bug populations/routers)."""
        f4 = fe.figure4(ctx)
        assert f4.max_ips_single_engine_id_v4 >= 20


class TestFigure5:
    def test_mac_is_dominant_format(self, ctx):
        f5 = fe.figure5(ctx)
        assert f5.share(4, EngineIdFormat.MAC) > 0.4
        assert f5.share(6, EngineIdFormat.MAC) > 0.4
        for fmt in EngineIdFormat:
            if fmt is not EngineIdFormat.MAC:
                assert f5.share(4, fmt) < f5.share(4, EngineIdFormat.MAC)

    def test_middle_formats_10_to_25_percent(self, ctx):
        """Paper: Octets, non-conforming, Net-SNMP contribute 10-20% each
        in IPv4."""
        f5 = fe.figure5(ctx)
        for fmt in (EngineIdFormat.OCTETS, EngineIdFormat.NON_CONFORMING,
                    EngineIdFormat.NET_SNMP):
            assert 0.05 < f5.share(4, fmt) < 0.30

    def test_v6_has_notable_ipv4_format_share(self, ctx):
        """Paper: >15% of IPv6-scan engine IDs contain IPv4 addresses."""
        f5 = fe.figure5(ctx)
        assert f5.share(6, EngineIdFormat.IPV4) > 0.10
        assert f5.share(6, EngineIdFormat.IPV4) > f5.share(4, EngineIdFormat.IPV4)


class TestFigure6:
    def test_octets_centered_at_half(self, ctx):
        f6 = fe.figure6(ctx)
        assert abs(f6.octets_mean - 0.5) < 0.05

    def test_non_conforming_sparse_and_skewed(self, ctx):
        f6 = fe.figure6(ctx)
        assert f6.non_conforming_mean < 0.45
        assert f6.non_conforming_skewness > 0


class TestFigure7:
    def test_top_shared_ids_span_years(self, ctx):
        """Paper: five of the six most popular engine IDs span multiple
        years of last-reboot values."""
        f7 = fe.figure7(ctx)
        spanning = [
            ecdf for __, ecdf in f7.top_v4 + f7.top_v6
            if f7.reboot_span_years(ecdf) > 1.0
        ]
        assert len(spanning) >= 3

    def test_top_ids_cover_many_ips(self, ctx):
        f7 = fe.figure7(ctx)
        assert f7.top_v4[0][1].count >= 20


class TestFigure8:
    def test_routers_tighter_than_all(self, ctx):
        f8 = fe.figure8(ctx)
        assert f8.routers_v4.at(10) >= f8.all_v4.at(10)

    def test_v6_tighter_than_v4(self, ctx):
        """One day between IPv6 scans vs ~six days for IPv4."""
        f8 = fe.figure8(ctx)
        assert f8.all_v6.at(10) > f8.all_v4.at(10)

    def test_router_knee_at_10_seconds(self, ctx):
        f8 = fe.figure8(ctx)
        assert f8.routers_v4.at(10) > 0.9

    def test_v4_long_tail(self, ctx):
        f8 = fe.figure8(ctx)
        assert f8.all_v4.at(120) > f8.all_v4.at(10)


class TestFigure19:
    def test_tuple_nearly_unique(self, ctx):
        f19 = fe.figure19(ctx)
        assert f19.unique_fraction_v4 > 0.95
        assert f19.unique_fraction_v6 > 0.95


class TestSection51:
    def test_substantial_grouping(self, ctx):
        s51 = fa.section51(ctx)
        assert s51.v4.grouped_fraction > 0.3
        assert s51.v6.grouped_fraction > 0.2

    def test_v4_only_dominates(self, ctx):
        s51 = fa.section51(ctx)
        assert s51.v4_only_sets > s51.v6_only_sets > s51.dual_sets


class TestFigure9:
    def test_router_sets_larger(self, ctx):
        f9 = fa.figure9(ctx)
        assert f9.router_sets_are_larger
        assert f9.router_sets.quantile(0.9) >= f9.ipv4_sets.quantile(0.9)


class TestSection52:
    def test_snmpv3_more_dual_sets_than_router_names(self, ctx):
        """Paper: 2.5x more dual-stack non-singleton sets than Router
        Names."""
        s52 = fa.section52(ctx)
        assert s52.snmpv3_dual_non_singleton > s52.router_names_dual_non_singleton

    def test_few_exact_many_partial(self, ctx):
        s52 = fa.section52(ctx)
        assert s52.overlap.exact_matches < s52.overlap.partial_overlaps_a

    def test_complementary(self, ctx):
        assert fa.section52(ctx).overlap.complementary


class TestSection53:
    @pytest.fixture(scope="class")
    def s53(self, ctx):
        return fa.section53(ctx)

    def test_midar_mostly_singletons(self, ctx, s53):
        """Paper: the overwhelming majority of MIDAR sets are singletons."""
        assert s53.midar.non_singleton_count < 0.2 * s53.midar.count

    def test_speedtrap_smaller_than_midar(self, ctx, s53):
        assert s53.speedtrap.non_singleton_count <= s53.midar.non_singleton_count

    def test_complementary_views(self, ctx, s53):
        assert s53.midar_overlap.complementary

    def test_snmpv3_finds_more_or_comparable_nonsingletons(self, ctx, s53):
        assert ctx.alias_v4.non_singleton_count > 0.3 * s53.midar.non_singleton_count


class TestSection54:
    def test_combined_exceeds_each(self, ctx):
        s53 = fa.section53(ctx)
        s54 = fa.section54(ctx, s53.midar)
        c = s54.coverage
        assert c.combined_fraction > c.midar_fraction
        assert c.combined_fraction > c.snmpv3_fraction
        assert c.combined_fraction <= c.midar_fraction + c.snmpv3_fraction

    def test_responsive_fraction_near_16_percent(self, ctx):
        s54 = fa.section54(ctx)
        assert 0.08 < s54.snmpv3_responsive_fraction < 0.30


class TestFigure10:
    def test_coverage_varies_substantially(self, ctx):
        f10 = fv.figure10(ctx)
        ecdf = f10.coverage.ecdf(min_total=2)
        assert ecdf.at(0.1) > 0.2          # many networks barely covered
        assert ecdf.fraction_above(0.5) > 0.02  # some networks wide open

    def test_overall_near_16_percent(self, ctx):
        assert 0.08 < fv.figure10(ctx).coverage.overall < 0.30


class TestFigures11And12:
    def test_device_popularity_ordering(self, ctx):
        """Figure 11: Net-SNMP and Cisco on top, then the CPE vendors;
        top-10 above 80%."""
        f11 = fv.figure11(ctx)
        top = [vendor for vendor, __ in f11.top(10)]
        assert set(top[:2]) == {"Net-SNMP", "Cisco"}
        assert {"Broadcom", "Thomson", "Netgear"} <= set(top)
        assert f11.top_n_share(10) > 0.8

    def test_router_popularity_ordering(self, ctx):
        """Figure 12: Cisco first, Huawei second, both far ahead."""
        f12 = fv.figure12(ctx)
        top = f12.top(10)
        assert top[0][0] == "Cisco"
        assert top[1][0] == "Huawei"
        assert top[0][1] > 2 * top[1][1]

    def test_router_major_vendor_concentration(self, ctx):
        f12 = fv.figure12(ctx)
        total = sum(f12.counts.values())
        majors = sum(f12.count(v) for v in ("Cisco", "Huawei", "Juniper", "H3C", "Net-SNMP"))
        assert majors / total > 0.75

    def test_routers_are_a_small_slice_of_devices(self, ctx):
        f11, f12 = fv.figure11(ctx), fv.figure12(ctx)
        assert sum(f12.counts.values()) < 0.25 * sum(f11.counts.values())


class TestFigure13:
    def test_uptime_claims(self, ctx):
        f13 = fv.figure13(ctx)
        assert f13.frac_uptime_over_one_year < 0.40      # "less than 25%" +margin
        assert f13.frac_rebooted_this_year > 0.40        # "more than 50%"
        assert 0.08 < f13.frac_rebooted_last_month < 0.40  # "around 20%"


class TestFigure14:
    def test_many_single_vendor_networks(self, ctx):
        f14 = fv.figure14(ctx)
        if 5 in f14.ecdf_by_min_routers:
            assert 0.2 < f14.single_vendor_fraction(5) < 0.7

    def test_few_networks_exceed_five_vendors(self, ctx):
        f14 = fv.figure14(ctx)
        if 5 in f14.ecdf_by_min_routers:
            assert f14.ecdf_by_min_routers[5].fraction_above(5) < 0.15


class TestFigure15:
    def test_cisco_dominant_in_major_regions(self, ctx):
        f15 = fv.figure15(ctx)
        for region in (Region.EU, Region.NA):
            shares = f15.shares.get(region)
            assert shares is not None
            assert shares["Cisco"] == max(shares.values())

    def test_huawei_absent_in_north_america(self, ctx):
        f15 = fv.figure15(ctx)
        assert f15.share(Region.NA, "Huawei") < 0.02

    def test_huawei_strong_in_asia_or_europe(self, ctx):
        f15 = fv.figure15(ctx)
        assert max(f15.share(Region.AS, "Huawei"), f15.share(Region.EU, "Huawei")) > 0.08


class TestFigure16:
    def test_top_networks_run_major_vendors(self, ctx):
        rows = fv.figure16(ctx)
        assert len(rows) == 10
        for row in rows[:5]:
            assert row.dominant_vendor in ("Cisco", "Huawei", "Net-SNMP", "Other")

    def test_mostly_cisco_dominated(self, ctx):
        rows = fv.figure16(ctx)
        cisco = sum(1 for r in rows if r.dominant_vendor == "Cisco")
        assert cisco >= 5

    def test_rows_sorted_by_size(self, ctx):
        rows = fv.figure16(ctx)
        sizes = [r.router_count for r in rows]
        assert sizes == sorted(sizes, reverse=True)


class TestFigure17:
    def test_high_dominance_everywhere(self, ctx):
        f17 = fv.figure17(ctx)
        assert f17.high_dominance_fraction(2, 0.7) > 0.6

    def test_dominance_values_valid(self, ctx):
        f17 = fv.figure17(ctx)
        for ecdf in f17.ecdf_by_min_routers.values():
            assert all(0.0 <= v <= 1.0 for v in ecdf.values)


class TestFigure18:
    def test_regional_dominance_ecdfs(self, ctx):
        f18 = fv.figure18(ctx, min_routers=5)
        assert f18  # at least one region populated
        for ecdf in f18.values():
            assert ecdf.median > 0.4


class TestFigure20:
    def test_regions_have_heavy_tails(self, ctx):
        f20 = fv.figure20(ctx)
        assert Region.EU in f20 and Region.NA in f20
        big_regions = [f20[r] for r in (Region.EU, Region.NA)]
        # Every big region is skewed; at least one markedly so.
        assert all(max(e.values) >= 2 * e.median for e in big_regions)
        assert any(max(e.values) >= 3 * e.median for e in big_regions)


class TestSection62:
    def test_nmap_mostly_fails_on_routers(self, ctx):
        s62 = fv.section62(ctx)
        assert s62.no_result_fraction > 0.6

    def test_matches_agree_with_snmpv3(self, ctx):
        s62 = fv.section62(ctx)
        if s62.matches:
            assert s62.agreeing_matches / s62.matches > 0.7

    def test_nmap_probe_cost_dwarfs_snmpv3(self, ctx):
        s62 = fv.section62(ctx)
        assert s62.nmap_probes_total > 5 * s62.snmpv3_probes_total


class TestSection8:
    def test_rare_amplifiers_exist(self, ctx):
        s8 = fv.section8(ctx)
        assert s8.multi_response_ips > 0
        assert s8.multi_response_fraction < 0.05
        assert s8.max_responses_single_ip >= 10
