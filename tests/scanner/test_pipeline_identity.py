"""Legacy-vs-batch byte identity for the staged scan pipeline.

The ``ExecutorConfig.pipeline`` switch may never change a single output
bit: every observation (address, recv time, engine triplet, reply count,
wire bytes), every scan aggregate and every shard counter must match the
historical per-probe loop — at every worker count, under every fault
profile, across the generated topology's adversarial personalities, with
and without retry policies, at every window geometry.
"""

from __future__ import annotations

import pytest

from repro.scanner.campaign import ScanCampaign
from repro.scanner.executor import ExecutionOptions, RetryPolicy
from repro.topology.config import TopologyConfig
from repro.topology.generator import TopologyGenerator

#: Small but adversarial-rich world: chaos-profile sweeps still hit
#: garbage/malformed/amplifying/rebooting agents and load balancers.
DIVISOR = 4000.0

COUNTER_FIELDS = (
    "targets", "probes_sent", "replies", "observations",
    "dropped_loss", "dropped_reply_loss", "dropped_no_endpoint",
    "dropped_rate_limited", "retries", "timed_out", "unparsed",
    "breaker_tripped", "duplicated", "reordered", "truncated",
    "corrupted", "probe_bytes", "reply_bytes",
)


def run_campaign(pipeline: bool, *, window=None, workers=None,
                 fault_profile=None, retry=None, num_shards=4, batch_size=16):
    topology = TopologyGenerator(
        config=TopologyConfig(seed=1177, scale_divisor=DIVISOR)
    ).build()
    campaign = ScanCampaign(
        topology=topology,
        options=ExecutionOptions(
            workers=workers,
            num_shards=num_shards,
            batch_size=batch_size,
            window=window,
            pipeline=pipeline,
            fault_profile=fault_profile,
            retry=retry,
        ),
    )
    result = campaign.run()
    fingerprint = []
    for label in sorted(result.scans):
        scan = result.scans[label]
        for observation in scan.observations.values():
            fingerprint.append((
                label,
                str(observation.address),
                observation.recv_time,
                None if observation.engine_id is None else observation.engine_id.raw,
                observation.engine_boots,
                observation.engine_time,
                observation.response_count,
                observation.wire_bytes,
            ))
        fingerprint.append((
            label, scan.targets_probed, scan.probe_bytes_sent,
            scan.reply_bytes_received, tuple(sorted(
                (str(a), n) for a, n in scan.multi_responders.items()
            )),
        ))
    counters = {
        label: [
            tuple(getattr(shard, f) for f in COUNTER_FIELDS)
            for shard in sorted(metrics.shards, key=lambda s: s.shard_index)
        ]
        for label, metrics in result.metrics.items()
    }
    return fingerprint, counters


def assert_identical(**case):
    batch_fp, batch_counters = run_campaign(True, **case)
    legacy_fp, legacy_counters = run_campaign(False, **case)
    assert batch_fp == legacy_fp
    assert batch_counters == legacy_counters


@pytest.mark.parametrize(
    "fault_profile", [None, "conformance", "rate-limited", "chaos"]
)
def test_identity_across_fault_profiles(fault_profile):
    assert_identical(fault_profile=fault_profile)


def test_identity_with_two_workers_under_chaos():
    assert_identical(fault_profile="chaos", workers=2)


def test_identity_with_retries():
    assert_identical(retry=RetryPolicy(max_retries=2, timeout=1.0))


def test_identity_with_retries_and_breaker_under_chaos():
    """Chaos loss rates trip the circuit breaker mid-shard; the per-target
    retry path must account streaks and trips exactly like the legacy loop."""
    retry = RetryPolicy(max_retries=2, timeout=0.5, breaker_threshold=2)
    batch_fp, batch_counters = run_campaign(
        True, fault_profile="chaos", retry=retry
    )
    legacy_fp, legacy_counters = run_campaign(
        False, fault_profile="chaos", retry=retry
    )
    assert batch_fp == legacy_fp
    assert batch_counters == legacy_counters
    tripped = sum(
        shard[COUNTER_FIELDS.index("breaker_tripped")]
        for shards in batch_counters.values()
        for shard in shards
    )
    assert tripped > 0  # the scenario genuinely exercised the breaker


@pytest.mark.parametrize("window", [1, 7, 100_000])
def test_identity_is_window_invariant(window):
    """window=1 degenerates to per-probe staging; 100k exceeds every
    shard (one mega-batch); 7 leaves ragged final windows."""
    assert_identical(fault_profile="chaos", window=window)


def test_identity_with_batch_size_one():
    """batch_size=1 streams observations one per IPC batch."""
    assert_identical(fault_profile="chaos", batch_size=1)


def test_pipeline_switch_defaults_on():
    """An options object with pipeline unset runs the batch pipeline."""
    topology = TopologyGenerator(
        config=TopologyConfig(seed=1177, scale_divisor=DIVISOR)
    ).build()
    campaign = ScanCampaign(
        topology=topology, options=ExecutionOptions(workers=1)
    )
    assert campaign._executor_config.pipeline is True
    assert campaign._executor_config.window >= 1
