"""Integration tests for the four-scan campaign."""

import ipaddress

import pytest

from repro.scanner.campaign import SCAN_LABELS, ScanCampaign
from repro.snmp.agent import SnmpAgent
from repro.snmp.constants import SNMP_PORT
from repro.snmp.engine_id import EngineId
from repro.snmp.loadbalancer import AgentPool
from repro.topology import timeline
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology
from repro.topology.model import Device, DeviceType, Interface, Region, Topology


@pytest.fixture(scope="module")
def campaign_result():
    cfg = TopologyConfig.tiny(seed=21)
    topo = build_topology(cfg)
    return topo, ScanCampaign(topology=topo, config=cfg).run()


class TestCampaign:
    def test_all_four_scans_present(self, campaign_result):
        __, result = campaign_result
        assert set(result.scans) == set(SCAN_LABELS)

    def test_scan_times_follow_paper_schedule(self, campaign_result):
        __, result = campaign_result
        assert result.scans["v6-1"].started_at == timeline.SCAN1_V6_START
        assert result.scans["v4-2"].started_at == timeline.SCAN2_V4_START
        assert result.scans["v6-1"].started_at < result.scans["v4-1"].started_at

    def test_v4_targets_all_assigned_addresses(self, campaign_result):
        topo, result = campaign_result
        assert result.scans["v4-1"].targets_probed == len(topo.all_addresses(4))

    def test_v6_targets_hitlist_only(self, campaign_result):
        topo, result = campaign_result
        assert result.scans["v6-1"].targets_probed == len(
            result.datasets.hitlist_targets_v6
        )
        assert result.scans["v6-1"].targets_probed < len(topo.all_addresses(6))

    def test_closed_devices_never_respond(self, campaign_result):
        topo, result = campaign_result
        responsive = set(result.scans["v4-1"].observations)
        for device in topo.devices.values():
            if not device.snmp_open:
                for interface in device.interfaces:
                    assert interface.address not in responsive

    def test_acl_interfaces_never_respond(self, campaign_result):
        topo, result = campaign_result
        responsive = set(result.scans["v4-1"].observations) | set(
            result.scans["v4-2"].observations
        )
        for device in topo.devices.values():
            for interface in device.interfaces:
                if not interface.snmp_reachable:
                    assert interface.address not in responsive

    def test_reboots_between_v4_scans_bump_boots(self, campaign_result):
        topo, result = campaign_result
        scan1, scan2 = result.scan_pair(4)
        bumped = 0
        for address, obs1 in scan1.observations.items():
            obs2 = scan2.observations.get(address)
            if obs2 is None or obs1.engine_id is None or obs2.engine_id is None:
                continue
            if obs1.engine_id.raw == obs2.engine_id.raw \
                    and obs2.engine_boots > obs1.engine_boots:
                bumped += 1
        assert bumped > 0

    def test_churn_creates_inconsistent_engine_ids(self, campaign_result):
        __, result = campaign_result
        scan1, scan2 = result.scan_pair(4)
        inconsistent = sum(
            1
            for address, obs1 in scan1.observations.items()
            if (obs2 := scan2.observations.get(address)) is not None
            and obs1.engine_id is not None
            and obs2.engine_id is not None
            and obs1.engine_id.raw != obs2.engine_id.raw
        )
        assert inconsistent > 0

    def test_bindings_recorded_per_scan(self, campaign_result):
        topo, result = campaign_result
        for label in SCAN_LABELS:
            assert result.bindings[label]
        # Churned addresses differ between the v4 bindings.
        changed = {
            a
            for a, d in result.bindings["v4-1"].items()
            if result.bindings["v4-2"].get(a) not in (None, d)
        }
        assert changed

    def test_metrics_empty_under_legacy_engine(self, campaign_result):
        __, result = campaign_result
        assert result.metrics == {}

    def test_open_router_interfaces_respond(self, campaign_result):
        topo, result = campaign_result
        responsive = set(result.scans["v4-1"].observations) | set(
            result.scans["v4-2"].observations
        )
        missing = 0
        total = 0
        for device in topo.devices.values():
            if device.device_type is not DeviceType.ROUTER or not device.snmp_open:
                continue
            for interface in device.interfaces:
                if interface.version == 4 and interface.snmp_reachable:
                    total += 1
                    if interface.address not in responsive:
                        missing += 1
        # Only packet loss (2% per direction, two scans) may hide them.
        assert total == 0 or missing / total < 0.05


def _pooled_device(device_id: int, address: str) -> Device:
    backends = [
        SnmpAgent(EngineId(bytes([0x80, 0, 0, 9, 3, 0, 0, 0, device_id, n])))
        for n in (1, 2)
    ]
    return Device(
        device_id=device_id,
        device_type=DeviceType.LOAD_BALANCER,
        vendor="Cisco",
        asn=1,
        region=Region.EU,
        interfaces=[Interface(address=ipaddress.ip_address(address))],
        agent=backends[0],
        dhcp_pool=True,
        agent_pool=AgentPool(backends=backends),
    )


class TestChurnRebinding:
    def test_churn_rebinds_pooled_devices_through_their_pool(self):
        """Regression: churn used to rebind a load-balancer VIP to its
        first backend agent directly, silently bypassing the pool's
        scheduling policy after re-addressing."""
        devices = {
            1: _pooled_device(1, "192.0.2.1"),
            2: _pooled_device(2, "192.0.2.2"),
        }
        topo = Topology(ases={}, devices=devices, seed=9)
        campaign = ScanCampaign(topology=topo)
        campaign._bind_initial()
        campaign._rng.random = lambda: 0.0  # force churn for every candidate
        campaign._apply_churn(4)
        # Addresses swapped owners...
        addr1 = ipaddress.ip_address("192.0.2.1")
        addr2 = ipaddress.ip_address("192.0.2.2")
        assert campaign._binding[addr1] == 2
        assert campaign._binding[addr2] == 1
        # ...and each rebound handler is the new owner's *pool*, not a
        # bare backend agent.
        for address, owner in ((addr1, 2), (addr2, 1)):
            handler = campaign._fabric._endpoints[(address, "udp", SNMP_PORT)]
            assert handler.__self__ is devices[owner].agent_pool


class TestDeprecatedConstructors:
    def test_positional_campaign_warns_but_works(self):
        cfg = TopologyConfig.tiny(seed=21)
        topo = build_topology(cfg)
        with pytest.warns(DeprecationWarning, match="positional ScanCampaign"):
            campaign = ScanCampaign(topo, cfg)
        assert campaign.topology is topo
        assert campaign.config is cfg

    def test_positional_and_keyword_topology_conflict(self):
        cfg = TopologyConfig.tiny(seed=21)
        topo = build_topology(cfg)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                ScanCampaign(topo, topology=topo, config=cfg)
