"""Round-trip tests for the columnar IPC observation format."""

import ipaddress
import pickle
import random

import pytest

from repro.scanner.records import ScanObservation
from repro.scanner.wire import (
    WIRE_VERSION,
    WireFormatError,
    decode_observations,
    encode_observations,
)
from repro.snmp.engine_id import EngineId


def _obs(
    address="192.0.2.1",
    recv_time=1234.5,
    engine_id=b"\x80\x00\x00\x09\x03\x00\x00\x0c\x01\x02\x03",
    engine_boots=1,
    engine_time=1000,
    response_count=1,
    wire_bytes=64,
):
    return ScanObservation(
        address=ipaddress.ip_address(address),
        recv_time=recv_time,
        engine_id=None if engine_id is None else EngineId(engine_id),
        engine_boots=engine_boots,
        engine_time=engine_time,
        response_count=response_count,
        wire_bytes=wire_bytes,
    )


def _random_obs(rng):
    if rng.random() < 0.5:
        address = str(ipaddress.IPv4Address(rng.getrandbits(32)))
    else:
        address = str(ipaddress.IPv6Address(rng.getrandbits(128)))
    parsed = rng.random() < 0.8
    engine_id = bytes(
        rng.getrandbits(8) for __ in range(rng.randint(0, 40))
    ) if parsed else None
    magnitude = rng.choice((1 << 6, 1 << 14, 1 << 30, 1 << 62, 1 << 100))
    return _obs(
        address=address,
        recv_time=rng.random() * 1e6,
        engine_id=engine_id,
        engine_boots=rng.randint(-magnitude, magnitude),
        engine_time=rng.randint(-magnitude, magnitude),
        response_count=rng.randint(1, 300),
        wire_bytes=rng.randint(0, 5000),
    )


class TestRoundTrip:
    def test_empty_batch(self):
        assert decode_observations(encode_observations([])) == []

    def test_single_observation(self):
        batch = [_obs()]
        assert decode_observations(encode_observations(batch)) == batch

    def test_mixed_families_and_unparsed(self):
        batch = [
            _obs(),
            _obs(address="2001:db8::1", engine_id=b"", engine_boots=0),
            _obs(address="198.51.100.7", engine_id=None, engine_time=-3),
            _obs(address="2001:db8::ffff", response_count=250, wire_bytes=65507),
        ]
        assert decode_observations(encode_observations(batch)) == batch

    def test_randomized_batches_round_trip(self):
        """Property test over the whole value space the scan can produce."""
        rng = random.Random(2021)
        for __ in range(50):
            batch = [_random_obs(rng) for __ in range(rng.randint(0, 40))]
            assert decode_observations(encode_observations(batch)) == batch

    def test_bigint_escape(self):
        """Corrupted-but-parseable BER can yield arbitrary-size integers."""
        batch = [
            _obs(engine_boots=1 << 200, engine_time=-(1 << 90)),
            _obs(engine_boots=-1, engine_time=0),
        ]
        assert decode_observations(encode_observations(batch)) == batch

    def test_adaptive_width_boundaries(self):
        for value in (127, 128, -128, -129, 32767, 32768, 2**31 - 1,
                      2**31, 2**63 - 1, 2**63, -(2**63), -(2**63) - 1):
            batch = [_obs(engine_boots=value)]
            assert decode_observations(encode_observations(batch)) == batch

    def test_order_preserved(self):
        batch = [_obs(address=f"192.0.2.{i}") for i in range(1, 20)]
        assert decode_observations(encode_observations(batch)) == batch

    def test_compact_versus_per_instance_pickle(self):
        """The reason this module exists: well over 3x smaller."""
        rng = random.Random(7)
        batch = [_random_obs(rng) for __ in range(256)]
        blob = encode_observations(batch)
        pickled = sum(len(pickle.dumps(obs)) for obs in batch)
        assert len(blob) * 3 <= pickled


class TestMalformedBlobs:
    def test_truncated_header(self):
        with pytest.raises(WireFormatError):
            decode_observations(b"\x01")

    def test_unsupported_version(self):
        blob = bytearray(encode_observations([_obs()]))
        blob[0] = WIRE_VERSION + 1
        with pytest.raises(WireFormatError, match="version"):
            decode_observations(bytes(blob))

    @pytest.mark.parametrize("cut", [6, 9, 12, -10, -3, -1])
    def test_truncated_body(self, cut):
        blob = encode_observations([_obs(), _obs(address="2001:db8::9")])
        with pytest.raises(WireFormatError):
            decode_observations(blob[:cut])

    def test_trailing_bytes_rejected(self):
        blob = encode_observations([_obs()])
        with pytest.raises(WireFormatError, match="trailing"):
            decode_observations(blob + b"\x00")
