"""Tests for the persistent fork-based worker pool."""

import ipaddress

import pytest

from repro.scanner.metrics import ShardMetrics
from repro.scanner.pool import (
    MSG_BATCH,
    MSG_METRICS,
    WorkerPool,
    WorkerPoolError,
)
from repro.scanner.records import ScanObservation
from repro.scanner.wire import decode_observations
from repro.snmp.engine_id import EngineId

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="fork start method unavailable",
)


def _obs(scan_key, shard_index, row):
    return ScanObservation(
        address=ipaddress.ip_address(
            (hash(scan_key) & 0xFF) << 16 | shard_index << 8 | row
        ),
        recv_time=float(row),
        engine_id=EngineId(b"\x80\x00\x00\x09\x05" + bytes([shard_index, row])),
        engine_boots=shard_index,
        engine_time=row,
        response_count=1,
        wire_bytes=40,
    )


class _SyntheticRunner:
    """Deterministic fake shard runner (captured by workers at fork)."""

    def __init__(self, shard_sizes, fail_shard=None):
        self.shard_sizes = shard_sizes
        self.fail_shard = fail_shard

    def run_shard(self, scan_key, shard_index, batch_size):
        if shard_index == self.fail_shard:
            raise RuntimeError(f"shard {shard_index} exploded")
        size = self.shard_sizes[shard_index]
        metrics = ShardMetrics(shard_index=shard_index, targets=size)

        def batches():
            batch = []
            for row in range(size):
                batch.append(_obs(scan_key, shard_index, row))
                if len(batch) >= batch_size:
                    yield batch
                    batch = []
            if batch:
                yield batch
            metrics.observations = size

        return batches(), metrics


def _drain(pool, scan_key, num_shards, batch_size):
    observations, metrics = [], []
    for shard_index, kind, payload in pool.run_scan(
        scan_key, num_shards=num_shards, batch_size=batch_size
    ):
        if kind == MSG_METRICS:
            metrics.append(payload)
        else:
            assert kind == MSG_BATCH
            observations.extend(decode_observations(payload))
    return observations, metrics


def _expected(scan_key, shard_sizes):
    return [
        _obs(scan_key, shard_index, row)
        for shard_index, size in enumerate(shard_sizes)
        for row in range(size)
    ]


class TestWorkerPool:
    def test_messages_arrive_in_shard_order(self):
        sizes = [5, 0, 13, 1, 7, 3]
        with WorkerPool(workers=3, runner=_SyntheticRunner(sizes)) as pool:
            observations, metrics = _drain(pool, "s1", len(sizes), 4)
        assert observations == _expected("s1", sizes)
        assert [m.shard_index for m in metrics] == list(range(len(sizes)))
        assert [m.observations for m in metrics] == sizes

    def test_pool_survives_multiple_scans(self):
        """The tentpole: one fork, many scans."""
        sizes = [4, 6, 2]
        with WorkerPool(workers=2, runner=_SyntheticRunner(sizes)) as pool:
            for scan_key in ("a", "b", "c"):
                observations, __ = _drain(pool, scan_key, len(sizes), 3)
                assert observations == _expected(scan_key, sizes)

    def test_ipc_bytes_counted(self):
        sizes = [8]
        blobs = []
        with WorkerPool(workers=2, runner=_SyntheticRunner(sizes)) as pool:
            for __, kind, payload in pool.run_scan(
                "s", num_shards=1, batch_size=3
            ):
                if kind == MSG_BATCH:
                    blobs.append(payload)
                else:
                    metrics = payload
        assert blobs
        assert metrics.ipc_bytes == sum(len(blob) for blob in blobs)

    def test_worker_exception_raises_pool_error(self):
        runner = _SyntheticRunner([3, 3, 3], fail_shard=1)
        with WorkerPool(workers=2, runner=runner) as pool:
            with pytest.raises(WorkerPoolError, match="shard 1.*exploded"):
                _drain(pool, "s", 3, 2)
        with pytest.raises(RuntimeError, match="closed"):
            next(pool.run_scan("s", num_shards=1, batch_size=1))

    def test_abandoned_scan_does_not_poison_the_next(self):
        """Stale messages from a half-consumed scan are discarded."""
        sizes = [9, 9, 9, 9]
        with WorkerPool(workers=2, runner=_SyntheticRunner(sizes)) as pool:
            stream = pool.run_scan("first", num_shards=len(sizes), batch_size=2)
            next(stream)  # take one message, then walk away
            stream.close()
            observations, metrics = _drain(pool, "second", len(sizes), 2)
        assert observations == _expected("second", sizes)
        assert len(metrics) == len(sizes)

    def test_batch_boundaries_match_runner(self):
        sizes = [10]
        with WorkerPool(workers=2, runner=_SyntheticRunner(sizes)) as pool:
            lengths = [
                len(decode_observations(payload))
                for __, kind, payload in pool.run_scan(
                    "s", num_shards=1, batch_size=4
                )
                if kind == MSG_BATCH
            ]
        assert lengths == [4, 4, 2]

    def test_rejects_single_worker(self):
        with pytest.raises(ValueError, match=">= 2"):
            WorkerPool(workers=1, runner=_SyntheticRunner([1]))

    def test_close_is_idempotent(self):
        pool = WorkerPool(workers=2, runner=_SyntheticRunner([1]))
        pool.close()
        pool.close()


class TestResourceLifecycle:
    """The leaks RES001 caught: every exit path releases the IPC queue."""

    def test_close_also_closes_the_ipc_queue(self):
        pool = WorkerPool(workers=2, runner=_SyntheticRunner([1]))
        queue = pool._queue
        pool.close()
        assert queue._reader.closed and queue._writer.closed

    def test_worker_error_shutdown_closes_the_queue(self):
        runner = _SyntheticRunner([3, 3], fail_shard=0)
        pool = WorkerPool(workers=2, runner=runner)
        with pytest.raises(WorkerPoolError):
            _drain(pool, "s", 2, 2)
        assert pool.closed
        assert pool._queue._reader.closed and pool._queue._writer.closed

    def test_fork_failure_closes_the_queue(self, monkeypatch):
        import multiprocessing as mp

        real = mp.get_context("fork")
        queues = []

        class FailingPoolContext:
            def SimpleQueue(self):
                queue = real.SimpleQueue()
                queues.append(queue)
                return queue

            def Pool(self, processes):
                raise OSError("fork failed")

        monkeypatch.setattr(
            "repro.scanner.pool.multiprocessing.get_context",
            lambda method: FailingPoolContext(),
        )
        with pytest.raises(OSError, match="fork failed"):
            WorkerPool(workers=2, runner=_SyntheticRunner([1]))
        assert len(queues) == 1
        assert queues[0]._reader.closed and queues[0]._writer.closed
