"""Tests for the sharded, streaming scan executor."""

import ipaddress

import pytest

from repro.net.transport import NetworkFabric
from repro.scanner.campaign import SCAN_LABELS, ScanCampaign
from repro.scanner.executor import (
    ExecutorConfig,
    RetryPolicy,
    ShardedScanExecutor,
    plan_shards,
    shard_seed,
)
from repro.snmp.agent import AgentBehavior
from repro.snmp.messages import build_discovery_probe, encode_discovery_probe
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology


def _run_campaign(**kwargs):
    cfg = TopologyConfig.tiny(seed=21)
    topo = build_topology(cfg)
    campaign = ScanCampaign(topology=topo, config=cfg, **kwargs)
    return topo, campaign


def _scan_fingerprint(scan):
    return (
        scan.observations,
        scan.multi_responders,
        scan.targets_probed,
        scan.probe_bytes_sent,
        scan.reply_bytes_received,
        scan.started_at,
        scan.finished_at,
    )


@pytest.fixture(scope="module")
def serial_result():
    __, campaign = _run_campaign(workers=1)
    return campaign.run()


class TestDeterminism:
    def test_worker_count_does_not_change_results(self, serial_result):
        """The tentpole contract: 1-worker and 4-worker runs are identical."""
        __, campaign = _run_campaign(workers=4)
        parallel_result = campaign.run()
        assert set(parallel_result.scans) == set(SCAN_LABELS)
        for label in SCAN_LABELS:
            assert _scan_fingerprint(parallel_result.scans[label]) == \
                _scan_fingerprint(serial_result.scans[label]), label

    def test_rerun_is_reproducible(self, serial_result):
        __, campaign = _run_campaign(workers=1)
        again = campaign.run()
        for label in SCAN_LABELS:
            assert again.scans[label].observations == \
                serial_result.scans[label].observations

    def test_metrics_cover_all_probes(self, serial_result):
        __, campaign = _run_campaign(workers=1)
        result = campaign.run()
        for label, metrics in result.metrics.items():
            scan = result.scans[label]
            assert metrics.probes_sent == metrics.targets == scan.targets_probed
            assert metrics.observations == len(scan.observations)
            assert len(metrics.shards) == metrics.num_shards


class TestStreaming:
    def test_stream_matches_materialized(self, serial_result):
        __, campaign = _run_campaign(workers=1)
        streamed = {}
        for stream in campaign.run_streaming():
            observations = {}
            for batch in stream.batches():
                for obs in batch:
                    observations.setdefault(obs.address, obs)
            streamed[stream.label] = observations
        for label in SCAN_LABELS:
            assert streamed[label] == serial_result.scans[label].observations

    def test_batches_respect_batch_size(self):
        __, campaign = _run_campaign(workers=1, batch_size=50)
        stream = next(campaign.run_streaming())
        sizes = [len(batch) for batch in stream.batches()]
        assert sizes
        assert max(sizes) <= 50
        assert stream.execution.metrics.peak_batch <= 50

    def test_stream_consumed_once(self):
        __, campaign = _run_campaign(workers=1)
        stream = next(campaign.run_streaming())
        list(stream.batches())
        with pytest.raises(RuntimeError):
            stream.batches()


class TestWallTimeFinalization:
    def test_abandoned_stream_still_records_wall_time(self):
        """Regression: breaking out of a stream early (pipeline
        short-circuit, partial export) must still finalize wall_time."""
        __, campaign = _run_campaign(workers=1, batch_size=10)
        stream = next(campaign.run_streaming())
        batches = stream.batches()
        next(batches)  # consume one batch, then walk away
        batches.close()
        assert stream.execution.metrics.wall_time > 0.0

    def test_abandoned_parallel_stream_still_records_wall_time(self):
        __, campaign = _run_campaign(workers=2, batch_size=10)
        stream = next(campaign.run_streaming())
        batches = stream.batches()
        next(batches)
        batches.close()
        assert stream.execution.metrics.wall_time > 0.0


class TestBatchBoundaries:
    def _batch_lengths(self, **kwargs):
        __, campaign = _run_campaign(**kwargs)
        stream = next(campaign.run_streaming())
        return [len(batch) for batch in stream.batches()], stream.execution

    def test_batch_size_one(self):
        lengths, execution = self._batch_lengths(workers=1, batch_size=1)
        assert lengths and set(lengths) == {1}
        assert execution.metrics.peak_batch == 1
        assert sum(lengths) == execution.metrics.observations

    def test_batch_larger_than_any_shard(self):
        """A huge batch_size degenerates to one batch per non-empty shard."""
        lengths, execution = self._batch_lengths(workers=1, batch_size=10**6)
        nonempty = [
            s.observations for s in execution.metrics.shards if s.observations
        ]
        assert lengths == nonempty
        assert execution.metrics.peak_batch == max(nonempty)

    def test_batches_never_span_shards(self):
        """peak_batch accounting across shard boundaries: a shard's tail
        remainder flushes before the next shard starts a fresh batch."""
        lengths, execution = self._batch_lengths(workers=1, batch_size=7)
        per_shard = [
            s.observations for s in execution.metrics.shards if s.observations
        ]
        expected = []
        for count in per_shard:
            expected.extend([7] * (count // 7))
            if count % 7:
                expected.append(count % 7)
        assert lengths == expected

    @pytest.mark.parametrize("batch_size", [1, 7, 10**6])
    def test_worker_count_invariant_boundaries(self, batch_size):
        serial, __ = self._batch_lengths(workers=1, batch_size=batch_size)
        pooled, __ = self._batch_lengths(workers=4, batch_size=batch_size)
        assert serial == pooled


class TestStateIsolation:
    def test_executor_scan_leaves_agent_state_pristine(self):
        topo, campaign = _run_campaign(workers=1)
        campaign._bind_initial()
        before = {
            d.device_id: (
                d.agent.engine_boots,
                d.agent.stats_unknown_engine_ids,
                None if d.agent_pool is None else d.agent_pool._rr_counter,
            )
            for d in topo.devices.values()
        }
        executor = campaign._make_executor()
        targets = sorted(topo.all_addresses(4), key=int)
        executor.scan(targets, label="probe", ip_version=4, start_time=0.0)
        after = {
            d.device_id: (
                d.agent.engine_boots,
                d.agent.stats_unknown_engine_ids,
                None if d.agent_pool is None else d.agent_pool._rr_counter,
            )
            for d in topo.devices.values()
        }
        assert after == before


class TestShardPlan:
    def test_plan_is_deterministic(self):
        topo, campaign = _run_campaign()
        campaign._bind_initial()
        targets = sorted(topo.all_addresses(4), key=int)
        owner = lambda a: (d := topo.device_of_address(a)) and d.device_id
        kwargs = dict(label="v4-1", num_shards=16, seed=21,
                      shuffle_seed=0xABCD, owner_of=owner)
        assert plan_shards(targets, **kwargs) == plan_shards(targets, **kwargs)

    def test_device_addresses_colocated(self):
        topo, campaign = _run_campaign()
        targets = sorted(topo.all_addresses(4), key=int)
        owner = lambda a: (d := topo.device_of_address(a)) and d.device_id
        plan = plan_shards(targets, label="v4-1", num_shards=8, seed=21,
                           shuffle_seed=0xABCD, owner_of=owner)
        shard_of_device = {}
        for spec in plan:
            for __, target in spec.items:
                device_id = owner(target)
                if device_id is None:
                    continue
                assert shard_of_device.setdefault(device_id, spec.index) == \
                    spec.index
        # All targets present exactly once.
        planned = [t for spec in plan for __, t in spec.items]
        assert sorted(planned, key=int) == targets

    def test_shard_seeds_distinct(self):
        seeds = {shard_seed(21, "v4-1", i) for i in range(64)}
        assert len(seeds) == 64
        assert shard_seed(21, "v4-1", 0) != shard_seed(21, "v4-2", 0)

    def test_mismatched_family_rejected(self):
        topo, campaign = _run_campaign()
        targets = sorted(topo.all_addresses(4), key=int)
        executor = campaign._make_executor()
        with pytest.raises(ValueError):
            executor.execute(targets, label="x", ip_version=6, start_time=0.0)


class TestRetryPolicy:
    def test_retries_require_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(max_retries=1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"timeout": 0.0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"breaker_threshold": -1},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_exponential_backoff_schedule(self):
        policy = RetryPolicy(
            max_retries=3, timeout=2.0, backoff_base=0.5, backoff_factor=2.0
        )
        assert policy.retry_send_time(10.0, 1) == 10.0 + 2.0 + 0.5
        assert policy.retry_send_time(10.0, 2) == 10.0 + 2.0 + 1.0
        assert policy.retry_send_time(10.0, 3) == 10.0 + 2.0 + 2.0


class _FakeDevice:
    """Just enough of Device for snapshot/restore: an agent, no pool."""

    def __init__(self, agent):
        self.agent = agent
        self.agent_pool = None


class TestCircuitBreaker:
    def _dead_executor(self, retry):
        from repro.net.mac import MacAddress
        from repro.snmp.agent import SnmpAgent
        from repro.snmp.engine_id import EngineId

        agent = SnmpAgent(
            engine_id=EngineId.from_mac(9, MacAddress("00:00:0c:00:00:01"))
        )
        # Nothing is bound on the fabric: the device is dead to probes.
        return ShardedScanExecutor(
            fabric=NetworkFabric(seed=3),
            devices={1: _FakeDevice(agent)},
            owner_of=lambda address: 1,
            config=ExecutorConfig(num_shards=1, retry=retry),
        )

    def test_breaker_stops_retrying_dead_device(self):
        executor = self._dead_executor(
            RetryPolicy(max_retries=3, timeout=1.0, breaker_threshold=2)
        )
        targets = [ipaddress.ip_address(f"192.0.2.{i}") for i in range(1, 6)]
        execution = executor.execute(
            targets, label="dead", ip_version=4, start_time=0.0
        )
        list(execution.batches())
        [shard] = execution.metrics.shards
        # First two targets earn full retries; once the streak reaches the
        # threshold the remaining three get their single ethical probe.
        assert shard.breaker_tripped == 1
        assert shard.retries == 2 * 3
        assert shard.probes_sent == 2 * (1 + 3) + 3 * 1

    def test_no_breaker_retries_every_target(self):
        executor = self._dead_executor(
            RetryPolicy(max_retries=3, timeout=1.0, breaker_threshold=0)
        )
        targets = [ipaddress.ip_address(f"192.0.2.{i}") for i in range(1, 6)]
        execution = executor.execute(
            targets, label="dead", ip_version=4, start_time=0.0
        )
        list(execution.batches())
        [shard] = execution.metrics.shards
        assert shard.breaker_tripped == 0
        assert shard.probes_sent == 5 * (1 + 3)


class TestFaultsAndRetries:
    RETRY = RetryPolicy(max_retries=2, timeout=1.5)

    def test_default_policy_reproduces_legacy_engine(self, serial_result):
        """retry=RetryPolicy() must not shift a single RNG draw."""
        __, campaign = _run_campaign(workers=1, retry=RetryPolicy())
        result = campaign.run()
        for label in SCAN_LABELS:
            assert _scan_fingerprint(result.scans[label]) == \
                _scan_fingerprint(serial_result.scans[label]), label

    def test_faulted_run_is_worker_count_invariant(self):
        """Tentpole contract under fire: faults + retries stay
        byte-identical across worker counts."""
        kwargs = dict(fault_profile="chaos", retry=self.RETRY, num_shards=8)
        __, serial = _run_campaign(workers=1, **kwargs)
        __, parallel = _run_campaign(workers=4, **kwargs)
        serial_scans, parallel_scans = serial.run(), parallel.run()
        for label in SCAN_LABELS:
            assert _scan_fingerprint(parallel_scans.scans[label]) == \
                _scan_fingerprint(serial_scans.scans[label]), label

    def test_retries_recover_lost_replies(self):
        plain_kwargs = dict(loss_probability=0.25, workers=1)
        __, no_retry = _run_campaign(**plain_kwargs)
        __, with_retry = _run_campaign(retry=self.RETRY, **plain_kwargs)
        lossy = no_retry.run().scans["v4-1"]
        recovered = with_retry.run().scans["v4-1"]
        assert len(recovered.observations) > len(lossy.observations)

    def test_retry_metrics_populated(self):
        __, campaign = _run_campaign(
            loss_probability=0.25, workers=1, retry=self.RETRY
        )
        result = campaign.run()
        assert sum(m.retries for m in result.metrics.values()) > 0

    def test_fault_counters_reach_metrics(self):
        __, campaign = _run_campaign(
            workers=1, fault_profile="chaos", retry=self.RETRY
        )
        result = campaign.run()
        total = sum(m.faults_injected for m in result.metrics.values())
        assert total > 0
        for metrics in result.metrics.values():
            assert "faults_injected" in metrics.to_dict()

    def test_rate_limiter_visible_in_metrics(self):
        from repro.net.faults import FaultProfile, RateLimit

        # A bucket this starved cannot refill between a probe and its
        # retry, so every retry to a live-but-lossy target is policed.
        profile = FaultProfile(
            name="starved", rate_limit=RateLimit(rate=0.01, burst=1)
        )
        __, campaign = _run_campaign(
            workers=1,
            loss_probability=0.25,
            fault_profile=profile,
            retry=RetryPolicy(max_retries=1, timeout=0.5),
        )
        result = campaign.run()
        assert sum(m.rate_limited for m in result.metrics.values()) > 0

    def test_adversarial_agents_never_crash_a_shard(self):
        """Garbage replies are counted and skipped, not fatal."""
        topo, campaign = _run_campaign(workers=2, retry=self.RETRY)
        poisoned = 0
        for device in topo.devices.values():
            if device.snmp_open and poisoned < 25:
                device.agent.behavior = AgentBehavior(garbage_reports=True)
                poisoned += 1
        result = campaign.run()
        assert poisoned == 25
        assert sum(m.unparsed for m in result.metrics.values()) > 0
        summaries = [m.summary() for m in result.metrics.values()]
        assert any("unparsed" in line for line in summaries)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"num_shards": 0}, {"batch_size": 0}, {"workers": -1}]
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutorConfig(**kwargs)


class TestFastProbeEncoder:
    @pytest.mark.parametrize("msg_id", [1, 2, 127, 128, 255, 256, 65535,
                                        2**20, 2**31 - 1])
    def test_matches_message_object_encoding(self, msg_id):
        assert encode_discovery_probe(msg_id) == \
            build_discovery_probe(msg_id).encode()

    def test_request_id_override(self):
        fast = encode_discovery_probe(7, request_id=42)
        slow = build_discovery_probe(7, request_id=42).encode()
        assert fast == slow
