"""Tests for the sharded, streaming scan executor."""

import pytest

from repro.scanner.campaign import SCAN_LABELS, ScanCampaign
from repro.scanner.executor import (
    ExecutorConfig,
    plan_shards,
    shard_seed,
)
from repro.snmp.messages import build_discovery_probe, encode_discovery_probe
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology


def _run_campaign(**kwargs):
    cfg = TopologyConfig.tiny(seed=21)
    topo = build_topology(cfg)
    campaign = ScanCampaign(topology=topo, config=cfg, **kwargs)
    return topo, campaign


def _scan_fingerprint(scan):
    return (
        scan.observations,
        scan.multi_responders,
        scan.targets_probed,
        scan.probe_bytes_sent,
        scan.reply_bytes_received,
        scan.started_at,
        scan.finished_at,
    )


@pytest.fixture(scope="module")
def serial_result():
    __, campaign = _run_campaign(workers=1)
    return campaign.run()


class TestDeterminism:
    def test_worker_count_does_not_change_results(self, serial_result):
        """The tentpole contract: 1-worker and 4-worker runs are identical."""
        __, campaign = _run_campaign(workers=4)
        parallel_result = campaign.run()
        assert set(parallel_result.scans) == set(SCAN_LABELS)
        for label in SCAN_LABELS:
            assert _scan_fingerprint(parallel_result.scans[label]) == \
                _scan_fingerprint(serial_result.scans[label]), label

    def test_rerun_is_reproducible(self, serial_result):
        __, campaign = _run_campaign(workers=1)
        again = campaign.run()
        for label in SCAN_LABELS:
            assert again.scans[label].observations == \
                serial_result.scans[label].observations

    def test_metrics_cover_all_probes(self, serial_result):
        __, campaign = _run_campaign(workers=1)
        result = campaign.run()
        for label, metrics in result.metrics.items():
            scan = result.scans[label]
            assert metrics.probes_sent == metrics.targets == scan.targets_probed
            assert metrics.observations == len(scan.observations)
            assert len(metrics.shards) == metrics.num_shards


class TestStreaming:
    def test_stream_matches_materialized(self, serial_result):
        __, campaign = _run_campaign(workers=1)
        streamed = {}
        for stream in campaign.run_streaming():
            observations = {}
            for batch in stream.batches():
                for obs in batch:
                    observations.setdefault(obs.address, obs)
            streamed[stream.label] = observations
        for label in SCAN_LABELS:
            assert streamed[label] == serial_result.scans[label].observations

    def test_batches_respect_batch_size(self):
        __, campaign = _run_campaign(workers=1, batch_size=50)
        stream = next(campaign.run_streaming())
        sizes = [len(batch) for batch in stream.batches()]
        assert sizes
        assert max(sizes) <= 50
        assert stream.execution.metrics.peak_batch <= 50

    def test_stream_consumed_once(self):
        __, campaign = _run_campaign(workers=1)
        stream = next(campaign.run_streaming())
        list(stream.batches())
        with pytest.raises(RuntimeError):
            stream.batches()


class TestStateIsolation:
    def test_executor_scan_leaves_agent_state_pristine(self):
        topo, campaign = _run_campaign(workers=1)
        campaign._bind_initial()
        before = {
            d.device_id: (
                d.agent.engine_boots,
                d.agent.stats_unknown_engine_ids,
                None if d.agent_pool is None else d.agent_pool._rr_counter,
            )
            for d in topo.devices.values()
        }
        executor = campaign._make_executor()
        targets = sorted(topo.all_addresses(4), key=int)
        executor.scan(targets, label="probe", ip_version=4, start_time=0.0)
        after = {
            d.device_id: (
                d.agent.engine_boots,
                d.agent.stats_unknown_engine_ids,
                None if d.agent_pool is None else d.agent_pool._rr_counter,
            )
            for d in topo.devices.values()
        }
        assert after == before


class TestShardPlan:
    def test_plan_is_deterministic(self):
        topo, campaign = _run_campaign()
        campaign._bind_initial()
        targets = sorted(topo.all_addresses(4), key=int)
        owner = lambda a: (d := topo.device_of_address(a)) and d.device_id
        kwargs = dict(label="v4-1", num_shards=16, seed=21,
                      shuffle_seed=0xABCD, owner_of=owner)
        assert plan_shards(targets, **kwargs) == plan_shards(targets, **kwargs)

    def test_device_addresses_colocated(self):
        topo, campaign = _run_campaign()
        targets = sorted(topo.all_addresses(4), key=int)
        owner = lambda a: (d := topo.device_of_address(a)) and d.device_id
        plan = plan_shards(targets, label="v4-1", num_shards=8, seed=21,
                           shuffle_seed=0xABCD, owner_of=owner)
        shard_of_device = {}
        for spec in plan:
            for __, target in spec.items:
                device_id = owner(target)
                if device_id is None:
                    continue
                assert shard_of_device.setdefault(device_id, spec.index) == \
                    spec.index
        # All targets present exactly once.
        planned = [t for spec in plan for __, t in spec.items]
        assert sorted(planned, key=int) == targets

    def test_shard_seeds_distinct(self):
        seeds = {shard_seed(21, "v4-1", i) for i in range(64)}
        assert len(seeds) == 64
        assert shard_seed(21, "v4-1", 0) != shard_seed(21, "v4-2", 0)

    def test_mismatched_family_rejected(self):
        topo, campaign = _run_campaign()
        targets = sorted(topo.all_addresses(4), key=int)
        executor = campaign._make_executor()
        with pytest.raises(ValueError):
            executor.execute(targets, label="x", ip_version=6, start_time=0.0)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"num_shards": 0}, {"batch_size": 0}, {"workers": -1}]
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutorConfig(**kwargs)


class TestFastProbeEncoder:
    @pytest.mark.parametrize("msg_id", [1, 2, 127, 128, 255, 256, 65535,
                                        2**20, 2**31 - 1])
    def test_matches_message_object_encoding(self, msg_id):
        assert encode_discovery_probe(msg_id) == \
            build_discovery_probe(msg_id).encode()

    def test_request_id_override(self):
        fast = encode_discovery_probe(7, request_id=42)
        slow = build_discovery_probe(7, request_id=42).encode()
        assert fast == slow
