"""Streaming (windowed, constant-memory) campaigns over streamed worlds.

The streamed campaign path never materializes a scan's target list: the
executor pulls targets through planning windows, and on a lazy topology
devices come into existence only when the fabric resolver first needs
them.  These tests pin the properties that make that safe:

* the full four-scan campaign — including the inter-scan reboot window
  and per-family DHCP churn — is byte-identical between a lazy view and
  the eagerly built streamed world (the churn scheduling regression);
* results are lazy/eager-identical at every planning-window size and
  worker-invariant at a fixed window (the window, like the shard count,
  is part of the deterministic result geometry);
* the residency cap genuinely bounds live devices while changing nothing;
* ground truth on lazy campaigns is queried from the topology
  (``result.bindings`` stays empty by contract).
"""

from __future__ import annotations

import pytest

from repro.scanner.campaign import ScanCampaign
from repro.scanner.executor import ExecutionOptions
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology
from repro.topology.lazy import LazyTopology

DIVISOR = 4000.0
SEED = 1177


def make_config(seed: int = SEED, **overrides) -> TopologyConfig:
    return TopologyConfig(
        seed=seed, scale_divisor=DIVISOR, layout="streamed", **overrides
    )


def run_streamed(topology, config, **options_kw):
    campaign = ScanCampaign(
        topology=topology, config=config,
        options=ExecutionOptions(**options_kw),
    )
    return campaign.run()


def scans_fingerprint(result):
    fingerprint = []
    for label in sorted(result.scans):
        scan = result.scans[label]
        fingerprint.append((
            label, scan.targets_probed, scan.probe_bytes_sent,
            scan.reply_bytes_received,
        ))
        for observation in scan.observations.values():
            fingerprint.append((
                label,
                str(observation.address),
                observation.recv_time,
                None if observation.engine_id is None else observation.engine_id.raw,
                observation.engine_boots,
                observation.engine_time,
                observation.response_count,
                observation.wire_bytes,
            ))
    return fingerprint


@pytest.fixture(scope="module")
def eager_result():
    config = make_config()
    return run_streamed(build_topology(config), config)


@pytest.fixture(scope="module")
def eager_fingerprint(eager_result):
    return scans_fingerprint(eager_result)


# -- churn / reboot scheduling regression ---------------------------------------


def test_multi_scan_family_is_byte_identical_lazy_vs_eager(eager_fingerprint):
    """The whole campaign — both rounds of both families, with reboots
    applied in the inter-scan window and churn active for round two —
    matches the eager world observation for observation."""
    config = make_config()
    lazy_result = run_streamed(LazyTopology(config=config), config)
    assert scans_fingerprint(lazy_result) == eager_fingerprint


def test_campaign_genuinely_churns_and_reboots(eager_result):
    """Guard the regression test's power: round two must actually differ
    from round one (addresses changed hands, boot counters moved) —
    otherwise the byte-identity above proves nothing about scheduling."""
    moved = 0
    rebooted = 0
    for version in (4, 6):
        first, second = (
            eager_result.scans[f"v{version}-1"],
            eager_result.scans[f"v{version}-2"],
        )
        for address, observation in first.observations.items():
            after = second.observations.get(address)
            if after is None or observation.engine_id is None:
                continue
            if after.engine_id is not None and (
                after.engine_id.raw != observation.engine_id.raw
            ):
                moved += 1
            elif (
                after.engine_boots is not None
                and observation.engine_boots is not None
                and after.engine_boots > observation.engine_boots
            ):
                rebooted += 1
    assert moved > 0
    assert rebooted > 0


# -- window / worker geometry ---------------------------------------------------
#
# The planning-window size is part of the deterministic result geometry
# (each window is shard-planned independently, so it keys the fault
# streams the way the shard count does).  The contract is therefore NOT
# window invariance but lazy/eager identity at every window size, plus
# worker invariance at a fixed window.


@pytest.mark.parametrize("target_window", [64, 512, 100_000])
def test_lazy_matches_eager_at_every_window_size(target_window):
    """64 forces many ragged windows; 100k exceeds every scan (one
    window); lazy and eager never diverge at any of them."""
    config = make_config()
    lazy_result = run_streamed(
        LazyTopology(config=config), config, target_window=target_window
    )
    eager = run_streamed(
        build_topology(config), config, target_window=target_window
    )
    assert scans_fingerprint(lazy_result) == scans_fingerprint(eager)


def test_lazy_results_are_worker_invariant_at_fixed_window():
    config = make_config()
    serial = run_streamed(
        LazyTopology(config=config), config, workers=1, target_window=4096
    )
    pooled = run_streamed(
        LazyTopology(config=config), config, workers=2, target_window=4096
    )
    assert scans_fingerprint(pooled) == scans_fingerprint(serial)


# -- constant-memory contract ---------------------------------------------------


def test_residency_cap_bounds_live_devices():
    config = make_config()
    lazy = LazyTopology(config=config, max_resident=512)
    assert lazy.device_count > 512  # the cap must actually bite
    result = run_streamed(lazy, config, target_window=2048)
    eager = run_streamed(build_topology(config), config, target_window=2048)
    assert scans_fingerprint(result) == scans_fingerprint(eager)
    # Two strong-reference pools each honour the cap (the topology's
    # recent-derivation window and the campaign's resolved-handler
    # cache), so residency is bounded by twice the knob — O(cap), never
    # O(world).
    assert lazy.peak_resident <= 2 * lazy.max_resident
    assert lazy.peak_resident < lazy.device_count
    # Eviction forced re-derivation (the materialized working set
    # exceeded the cap); correctness came from purity, not from keeping
    # state alive.  Derivations stay below the device count because the
    # snapshot filter keeps closed devices from ever materializing.
    assert lazy.derivations > lazy.max_resident


def test_streaming_never_prebinds_the_fabric():
    """Before the first scan a lazy campaign has touched no devices at
    all; after it, only what the probes demanded."""
    config = make_config()
    lazy = LazyTopology(config=config)
    campaign = ScanCampaign(
        topology=lazy, config=config, options=ExecutionOptions()
    )
    assert lazy.derivations == 0
    campaign.run()
    assert lazy.derivations > 0


# -- ground-truth surface -------------------------------------------------------


def test_lazy_bindings_empty_but_queryable(eager_result):
    """Lazy campaigns leave per-scan ``result.bindings`` empty by
    contract; the topology answers ownership queries instead, and agrees
    with the eager campaign's recorded final bindings."""
    config = make_config()
    lazy = LazyTopology(config=config)
    result = run_streamed(lazy, config)
    assert set(result.bindings) == set(eager_result.bindings)
    assert all(not snapshot for snapshot in result.bindings.values())
    # v4-2 is the campaign's last scan (the v4 inter-scan gap is six
    # days to IPv6's one), so its snapshot has both churn rounds applied.
    final = eager_result.bindings["v4-2"]
    assert final
    for address, device_id in list(final.items())[:500]:
        assert lazy.owner_of(address) == device_id


def test_streamed_campaign_still_populates_eager_bindings(eager_result):
    for label, scan in eager_result.scans.items():
        bound = set(eager_result.bindings[label])
        assert bound
        assert set(scan.observations) <= bound
