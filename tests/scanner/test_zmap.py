"""Unit tests for the ZMap-style scanner."""

import ipaddress

import pytest

from repro.net.transport import LinkProfile, NetworkFabric
from repro.scanner.records import ScanObservation, ScanResult
from repro.scanner.zmap import ZmapConfig, ZmapScanner
from repro.snmp.agent import AgentBehavior, SnmpAgent
from repro.snmp.constants import SNMP_PORT
from repro.snmp.engine_id import EngineId
from repro.net.mac import MacAddress


def make_agent(mac="00:00:0c:00:00:01", **kwargs):
    return SnmpAgent(
        engine_id=EngineId.from_mac(9, MacAddress(mac)),
        boot_time=0.0,
        engine_boots=3,
        **kwargs,
    )


@pytest.fixture
def fabric():
    return NetworkFabric(seed=4, default_profile=LinkProfile(loss_probability=0.0))


def bind(fabric, address, agent):
    addr = ipaddress.ip_address(address)
    fabric.bind(addr, "udp", SNMP_PORT, agent.handle_datagram)
    return addr


class TestScan:
    def test_responsive_target_observed(self, fabric):
        addr = bind(fabric, "192.0.2.1", make_agent())
        scanner = ZmapScanner(fabric=fabric)
        result = scanner.scan([addr], label="t", ip_version=4, start_time=100.0)
        assert result.responsive_count == 1
        obs = result.observations[addr]
        assert obs.engine_boots == 3
        assert obs.engine_time == 100  # boot at t=0, probe at t=100
        assert obs.engine_id.raw == make_agent().engine_id.raw

    def test_silent_target_not_observed(self, fabric):
        scanner = ZmapScanner(fabric=fabric)
        target = ipaddress.ip_address("192.0.2.99")
        result = scanner.scan([target], label="t", ip_version=4, start_time=0.0)
        assert result.responsive_count == 0
        assert result.targets_probed == 1

    def test_one_probe_per_target(self, fabric):
        addr = bind(fabric, "192.0.2.1", make_agent())
        scanner = ZmapScanner(fabric=fabric)
        scanner.scan([addr], label="t", ip_version=4, start_time=0.0)
        assert fabric.stats.injected == 1

    def test_rate_controls_virtual_duration(self, fabric):
        targets = [ipaddress.ip_address(f"192.0.2.{i}") for i in range(1, 101)]
        scanner = ZmapScanner(fabric=fabric)
        result = scanner.scan(targets, label="t", ip_version=4, start_time=0.0,
                              rate_pps=50.0)
        assert result.finished_at == pytest.approx(100 / 50.0)

    def test_family_mismatch_rejected(self, fabric):
        scanner = ZmapScanner(fabric=fabric)
        with pytest.raises(ValueError):
            scanner.scan(
                [ipaddress.ip_address("2001:db8::1")],
                label="t", ip_version=4, start_time=0.0,
            )

    def test_amplifier_counted(self, fabric):
        agent = make_agent(behavior=AgentBehavior(amplification_count=7))
        addr = bind(fabric, "192.0.2.1", agent)
        result = ZmapScanner(fabric=fabric).scan([addr], label="t", ip_version=4, start_time=0.0)
        assert result.multi_responders[addr] == 7
        assert result.observations[addr].response_count == 7

    def test_malformed_reply_recorded_without_engine_id(self, fabric):
        agent = make_agent(behavior=AgentBehavior(malformed=True))
        addr = bind(fabric, "192.0.2.1", agent)
        result = ZmapScanner(fabric=fabric).scan([addr], label="t", ip_version=4, start_time=0.0)
        obs = result.observations[addr]
        assert obs.engine_id is None
        assert not obs.parsed

    def test_shuffle_is_deterministic_per_label(self, fabric):
        targets = [ipaddress.ip_address(f"192.0.2.{i}") for i in range(1, 50)]
        for addr in targets:
            bind(fabric, str(addr), make_agent(mac=f"00:00:0c:00:01:{int(addr) % 250:02x}"))
        scanner = ZmapScanner(fabric=fabric)
        a = scanner.scan(targets, label="x", ip_version=4, start_time=0.0)
        fabric2 = NetworkFabric(seed=4, default_profile=LinkProfile(loss_probability=0.0))
        for addr in targets:
            bind(fabric2, str(addr), make_agent(mac=f"00:00:0c:00:01:{int(addr) % 250:02x}"))
        b = ZmapScanner(fabric=fabric2).scan(targets, label="x", ip_version=4, start_time=0.0)
        assert {a: o.recv_time for a, o in a.observations.items()} == {
            a: o.recv_time for a, o in b.observations.items()
        }

    def test_ipv6_scan(self, fabric):
        addr = ipaddress.ip_address("2001:db8::5")
        fabric.bind(addr, "udp", SNMP_PORT, make_agent().handle_datagram)
        result = ZmapScanner(fabric=fabric).scan([addr], label="v6", ip_version=6, start_time=0.0)
        assert result.responsive_count == 1


class TestScanResult:
    def make_obs(self, address="192.0.2.1", **kwargs):
        defaults = dict(
            address=ipaddress.ip_address(address),
            recv_time=1000.0,
            engine_id=EngineId(b"\x80\x00\x00\x09\x01\x02"),
            engine_boots=2,
            engine_time=400,
        )
        defaults.update(kwargs)
        return ScanObservation(**defaults)

    def test_last_reboot_derivation(self):
        obs = self.make_obs(recv_time=1000.0, engine_time=400)
        assert obs.last_reboot_time == 600.0

    def test_first_observation_kept(self):
        result = ScanResult(label="t", ip_version=4, started_at=0.0)
        first = self.make_obs(engine_time=100)
        second = self.make_obs(engine_time=999)
        result.add(first)
        result.add(second)
        assert result.observations[first.address].engine_time == 100

    def test_unique_engine_ids_ignores_unparsed(self):
        result = ScanResult(label="t", ip_version=4, started_at=0.0)
        result.add(self.make_obs(address="192.0.2.1"))
        result.add(self.make_obs(address="192.0.2.2", engine_id=None))
        assert result.unique_engine_ids() == 1
        assert result.responsive_count == 2


class TestDeprecatedConstructor:
    def test_positional_scanner_warns_but_works(self, fabric):
        config = ZmapConfig()
        with pytest.warns(DeprecationWarning, match="positional ZmapScanner"):
            scanner = ZmapScanner(fabric, config)
        assert scanner.fabric is fabric
        assert scanner.config is config

    def test_positional_and_keyword_fabric_conflict(self, fabric):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                ZmapScanner(fabric, fabric=fabric)
