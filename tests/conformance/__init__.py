"""Differential conformance harness (see test_conformance)."""
