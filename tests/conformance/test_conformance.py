"""Differential conformance: fault-injected retrying scans must converge.

The harness runs the same four-scan campaign twice over one topology:

* **baseline** — loss-free, fault-free, single probe per target: the
  ground-truth measurement;
* **faulted** — 10% packet loss plus the ``"conformance"`` fault profile
  (duplication, reordering, per-address rate limiting — *delivery* noise
  only, content is never altered), with bounded retries to claw the
  answers back.

The contract: after the filter pipeline and alias resolution, the two
campaigns describe the *same Internet*.  Raw observation sets (on stable
content keys — receive times legitimately shift under retries), filtered
record sets and alias sets must all be equal.

Two populations are excluded from the comparisons, both for the same
reason — their *reported identity legitimately depends on when (or how
often) they are probed*, which is exactly what fault injection perturbs:

* **load-balancer VIPs** — the
  :class:`~repro.snmp.loadbalancer.AgentPool` answers with whichever
  backend the round-robin cursor points at, so a retried probe (one
  extra handled request) gets a different engine ID than the baseline's
  single probe;
* **threshold-borderline responders** — devices whose baseline
  inter-scan reboot-time delta sits within a guard band of the
  10-second "inconsistent reboot time" cut-off.  Engine time is
  reported in whole seconds, so shifting a probe by a retry delay moves
  the derived last-reboot time by up to ±1s per scan; a delta of 9.7s
  vs 10.2s is measurement noise, not a different router.  The same
  quantization applies to alias resolution's 20-second reboot-time
  bins, so addresses whose baseline last-reboot lands within the guard
  band of a bin boundary are excluded too.

Both exclusion sets are computed from ground truth / the baseline run
alone (never from the faulted run), so the comparison cannot mask a
real regression in the faulted path.

``CONFORMANCE_WORKERS`` selects the faulted campaign's worker count so CI
exercises the harness in both serial and multi-worker modes; a dedicated
test additionally proves the faulted run is byte-identical across worker
counts.
"""

import os

import pytest

from repro.alias.snmpv3 import resolve_aliases
from repro.pipeline.filters import FilterPipeline
from repro.scanner.campaign import SCAN_LABELS, ScanCampaign
from repro.scanner.executor import RetryPolicy
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology

SEED = 33
FAULTED_WORKERS = int(os.environ.get("CONFORMANCE_WORKERS", "1"))

#: Residual per-target failure after 6 retries at 10% loss per path is
#: ~0.19^7 ≈ 9e-6 — and the run is deterministic per seed, so "converged
#: at this seed" is a stable property, not a flaky one.
RETRY = RetryPolicy(max_retries=6, timeout=2.0)


def _run_campaign(**kwargs):
    config = TopologyConfig.tiny(seed=SEED)
    topology = build_topology(config)
    return ScanCampaign(topology=topology, config=config, **kwargs).run()


@pytest.fixture(scope="module")
def vips():
    """Ground-truth load-balancer VIP addresses (excluded everywhere)."""
    topology = build_topology(TopologyConfig.tiny(seed=SEED))
    return {
        interface.address
        for device in topology.devices.values()
        if device.agent_pool is not None
        for interface in device.interfaces
    }


#: Guard band around the reboot-time filter threshold: per-scan engine
#: times quantize to whole seconds, so probe-time shifts move the
#: inter-scan delta by up to ~2s.
REBOOT_GUARD_BAND = 2.0


@pytest.fixture(scope="module")
def baseline():
    return _run_campaign(loss_probability=0.0, workers=1)


def _baseline_reboot_pairs(baseline):
    for version in (4, 6):
        first, second = baseline.scan_pair(version)
        for address, obs_1 in first.observations.items():
            obs_2 = second.observations.get(address)
            if obs_2 is None or obs_1.engine_id is None or obs_2.engine_id is None:
                continue
            yield address, obs_1.last_reboot_time, obs_2.last_reboot_time


@pytest.fixture(scope="module")
def excluded(baseline, vips):
    """VIPs plus threshold-borderline responders (see module docstring)."""
    from repro.pipeline.filters import DEFAULT_REBOOT_THRESHOLD

    out = set(vips)
    for address, reboot_1, reboot_2 in _baseline_reboot_pairs(baseline):
        if abs(abs(reboot_2 - reboot_1) - DEFAULT_REBOOT_THRESHOLD) \
                <= REBOOT_GUARD_BAND:
            out.add(address)
    return out


@pytest.fixture(scope="module")
def alias_excluded(baseline, excluded):
    """``excluded`` plus bin-boundary responders, for the alias stage only.

    Alias resolution bins last-reboot times into 20-second buckets; the
    generated topology boots many devices at round timestamps, so a large
    slice of the population sits within quantization range of a bucket
    edge.  Those edges only matter to binning — the raw and filtered
    comparisons keep the full population.
    """

    def near_bin_boundary(last_reboot):
        distance = last_reboot % 20.0
        return min(distance, 20.0 - distance) <= REBOOT_GUARD_BAND

    out = set(excluded)
    for address, reboot_1, reboot_2 in _baseline_reboot_pairs(baseline):
        if near_bin_boundary(reboot_1) or near_bin_boundary(reboot_2):
            out.add(address)
    return out


@pytest.fixture(scope="module")
def faulted():
    return _run_campaign(
        loss_probability=0.1,
        fault_profile="conformance",
        retry=RETRY,
        workers=FAULTED_WORKERS,
    )


def _stable_keys(scan, vips):
    """Content-only view of a scan: what the target *said*, not when.

    Receive times (and therefore engine times) shift under retries, and
    duplication inflates response counts — none of that is identity.
    """
    return {
        address: (
            None if obs.engine_id is None else obs.engine_id.raw,
            obs.engine_boots,
        )
        for address, obs in scan.observations.items()
        if address not in vips
    }


def _filtered_views(result, vips):
    pipeline = FilterPipeline()
    views = {}
    for version in (4, 6):
        valid = pipeline.run(*result.scan_pair(version)).valid
        views[version] = {
            r.address: r.engine_id.raw for r in valid if r.address not in vips
        }
    return views


class TestConvergence:
    def test_raw_observation_sets_converge(self, baseline, faulted, vips):
        for label in SCAN_LABELS:
            assert _stable_keys(faulted.scans[label], vips) == \
                _stable_keys(baseline.scans[label], vips), label

    def test_filtered_record_sets_converge(self, baseline, faulted, excluded):
        base_views = _filtered_views(baseline, excluded)
        fault_views = _filtered_views(faulted, excluded)
        for version in (4, 6):
            assert fault_views[version] == base_views[version], f"IPv{version}"

    def test_alias_sets_converge(self, baseline, faulted, alias_excluded):
        pipeline = FilterPipeline()
        for version in (4, 6):
            base_sets = resolve_aliases([
                r for r in pipeline.run(*baseline.scan_pair(version)).valid
                if r.address not in alias_excluded
            ])
            fault_sets = resolve_aliases([
                r for r in pipeline.run(*faulted.scan_pair(version)).valid
                if r.address not in alias_excluded
            ])
            assert set(fault_sets.sets) == set(base_sets.sets), f"IPv{version}"
            assert base_sets.sets, f"IPv{version} comparison is vacuous"


class TestHarnessIsNotVacuous:
    def test_exclusions_are_a_small_minority(self, baseline, excluded,
                                             alias_excluded):
        responsive = {
            address
            for label in SCAN_LABELS
            for address in baseline.scans[label].observations
        }
        assert len(excluded & responsive) < 0.1 * len(responsive)
        # The alias stage tolerates a bigger cut (bin-edge clustering),
        # but the compared population must stay substantial.
        assert len(responsive - alias_excluded) > 1000

    def test_faults_actually_fired(self, faulted):
        retries = sum(m.retries for m in faulted.metrics.values())
        duplicated = sum(
            s.duplicated for m in faulted.metrics.values() for s in m.shards
        )
        losses = sum(m.losses for m in faulted.metrics.values())
        assert retries > 0
        assert duplicated > 0
        assert losses > 0

    def test_baseline_is_clean(self, baseline):
        assert sum(m.retries for m in baseline.metrics.values()) == 0
        assert sum(m.losses for m in baseline.metrics.values()) == 0
        assert sum(m.faults_injected for m in baseline.metrics.values()) == 0

    def test_single_probe_would_not_converge(self, baseline):
        """Without retries the faulted campaign loses targets — the
        convergence above is earned by the retry machinery."""
        crippled = _run_campaign(
            loss_probability=0.1, fault_profile="conformance", workers=1
        )
        for label in SCAN_LABELS:
            assert len(crippled.scans[label].observations) < \
                len(baseline.scans[label].observations), label


class TestWorkerInvariance:
    def test_faulted_run_identical_across_worker_counts(self, faulted):
        other_workers = 2 if FAULTED_WORKERS == 1 else 1
        other = _run_campaign(
            loss_probability=0.1,
            fault_profile="conformance",
            retry=RETRY,
            workers=other_workers,
        )
        for label in SCAN_LABELS:
            assert other.scans[label].observations == \
                faulted.scans[label].observations, label
