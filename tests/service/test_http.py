"""The stdlib HTTP front-end: routing, status codes, lifecycle."""

import json
import urllib.error
import urllib.request

import pytest

from repro.clock import ManualClock
from repro.net.ratelimit import RateLimit
from repro.service.http import ServiceHttpServer
from repro.service.query import QueryService

from .conftest import populate


def fetch(address, path):
    host, port = address
    try:
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def server(served_store):
    service = QueryService(store=served_store)
    with ServiceHttpServer(service=service, port=0) as server:
        server.start()
        yield server


class TestRouting:
    def test_healthz(self, server):
        status, body = fetch(server.address, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["generation"] >= 1

    def test_v1_endpoint_carries_the_pinned_generation(self, server):
        status, body = fetch(server.address, "/v1/rounds")
        assert status == 200
        assert body["value"] == [1, 2]
        assert body["endpoint"] == "rounds"
        assert isinstance(body["generation"], int)

    def test_repeat_requests_hit_the_cache(self, server):
        fetch(server.address, "/v1/device-count")
        status, body = fetch(server.address, "/v1/device-count")
        assert status == 200
        assert body["cached"] is True

    def test_arg_parameter_reaches_the_endpoint(self, server):
        status, body = fetch(server.address, "/v1/round-summary?arg=1")
        assert status == 200
        assert body["value"]["round"] == 1

    def test_unknown_endpoint_is_404(self, server):
        status, body = fetch(server.address, "/v1/nope")
        assert status == 404
        assert "unknown endpoint" in body["error"]

    def test_bad_argument_is_400(self, server):
        status, body = fetch(server.address, "/v1/round-summary?arg=zzz")
        assert status == 400
        assert "invalid round id" in body["error"]

    def test_unknown_path_is_404(self, server):
        status, body = fetch(server.address, "/elsewhere")
        assert status == 404
        assert "no such path" in body["error"]

    def test_metrics_rolls_up_the_traffic(self, server):
        fetch(server.address, "/v1/stats")
        status, body = fetch(server.address, "/metrics")
        assert status == 200
        assert body["requests"] >= 1
        assert "stats" in body["endpoints"]


class TestRateLimiting:
    def test_shed_requests_are_429(self, tmp_path):
        service = QueryService(
            store=populate(tmp_path / "obs"),
            rate_limit=RateLimit(rate=0.001, burst=2.0),
            clock=ManualClock(0.0),
        )
        with ServiceHttpServer(service=service, port=0) as server:
            server.start()
            codes = [
                fetch(server.address, "/v1/rounds?client=alice")[0]
                for _ in range(3)
            ]
        assert codes == [200, 200, 429]

    def test_client_parameter_scopes_the_bucket(self, tmp_path):
        service = QueryService(
            store=populate(tmp_path / "obs"),
            rate_limit=RateLimit(rate=0.001, burst=1.0),
            clock=ManualClock(0.0),
        )
        with ServiceHttpServer(service=service, port=0) as server:
            server.start()
            assert fetch(server.address, "/v1/rounds?client=a")[0] == 200
            assert fetch(server.address, "/v1/rounds?client=b")[0] == 200
            assert fetch(server.address, "/v1/rounds?client=a")[0] == 429


class TestLifecycle:
    def test_close_is_idempotent_and_releases_the_port(self, tmp_path):
        service = QueryService(store=populate(tmp_path / "obs"))
        server = ServiceHttpServer(service=service, port=0)
        server.start()
        host, port = server.address
        server.close()
        server.close()  # idempotent
        # The port is free again: a new server can bind it immediately.
        rebound = ServiceHttpServer(service=service, host=host, port=port)
        rebound.close()
