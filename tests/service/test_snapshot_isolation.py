"""Snapshot isolation under fire: readers vs concurrent ingest + compaction.

The store's claim is that a reader pinned to one manifest generation can
never observe a torn mix of two generations.  These tests race real
reader threads against a writer that keeps ingesting multi-part rounds
and compacting them; the ``integrity`` endpoint recounts every scan's
rows against the manifest totals, so any torn read fails loudly.
"""

import threading

from repro.service.query import QueryService
from repro.store import Store

from .conftest import populate, synthetic_round

READERS = 4
WRITER_ROUNDS = 10


class TestSnapshotIsolation:
    def test_readers_never_observe_a_torn_generation(self, tmp_path):
        root = tmp_path / "obs"
        populate(root, rounds=2)
        service = QueryService(store=root, cache_entries=8)
        writer = Store(root=root, segment_rows=4)

        stop = threading.Event()
        failures: list[str] = []
        generations: dict[int, list[int]] = {}

        def read(worker: int) -> None:
            seen: list[int] = generations.setdefault(worker, [])
            while not stop.is_set():
                try:
                    response = service.request("integrity")
                    if response.value["consistent"] is not True:
                        failures.append(f"inconsistent: {response.value}")
                    seen.append(response.generation)
                    rounds = service.request("rounds")
                    if rounds.value != sorted(rounds.value):
                        failures.append(f"unsorted rounds: {rounds.value}")
                except Exception as error:  # noqa: BLE001 - collected
                    failures.append(f"{type(error).__name__}: {error}")
                    return

        threads = [
            threading.Thread(target=read, args=(n,)) for n in range(READERS)
        ]
        for thread in threads:
            thread.start()
        try:
            # Interleave ingest and compaction: every ingest bumps the
            # generation; every compaction additionally deletes the
            # obsolete parts readers may still be holding.
            for round_id in range(3, 3 + WRITER_ROUNDS):
                for scan in synthetic_round(round_id):
                    writer.ingest_result(scan, round_id=round_id)
                if round_id % 2:
                    writer.compact()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        assert not failures, failures[:5]

        for worker, seen in generations.items():
            assert seen, f"reader {worker} never completed a query"
            # Generations are monotonic per reader: the service never
            # falls back to an older manifest once it adopted a newer one.
            assert seen == sorted(seen), f"reader {worker} went backwards"
        # The writer's churn was actually observed while it was running.
        final = max(max(seen) for seen in generations.values())
        assert final >= service.generation - 1

    def test_cache_keys_pin_generations_across_compaction(self, tmp_path):
        root = tmp_path / "obs"
        service = QueryService(store=populate(root, rounds=3))
        before = service.request("device-count")
        writer = Store(root=root, segment_rows=4)
        writer.compact()
        after = service.request("device-count")
        # Compaction changed the physical layout (new generation, cold
        # cache) but not a single answer.
        assert after.generation > before.generation
        assert after.cached is False
        assert after.value == before.value
