"""The scheduler daemon: determinism, overlap, resume, graceful drain."""

import pytest

from repro.api import Session
from repro.clock import ManualClock, PerfCounterClock
from repro.service.scheduler import DEFAULT_JOBS, JobSpec, ServiceScheduler

#: A compressed schedule: one sweep then interleaved re-probes.
FAST_JOBS = (
    JobSpec(name="sweep", kind="sweep", period=100.0, jitter=5.0),
    JobSpec(name="reprobe", kind="reprobe", period=40.0, offset=50.0,
            jitter=2.0),
)

SCALE = 16_000.0


def make_scheduler(root, *, seed=11, jobs=FAST_JOBS, clock=None):
    session = Session(scale=SCALE, seed=seed, store=root)
    return session.scheduler(
        jobs=jobs, clock=clock if clock is not None else ManualClock(0.0)
    )


class TestJobSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec(name="x", kind="audit", period=1.0)

    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError, match="period"):
            JobSpec(name="x", kind="sweep", period=0.0)

    def test_rejects_negative_offset_or_jitter(self):
        with pytest.raises(ValueError, match=">= 0"):
            JobSpec(name="x", kind="sweep", period=1.0, jitter=-1.0)

    def test_default_jobs_cover_both_kinds(self):
        assert {job.kind for job in DEFAULT_JOBS} == {"sweep", "reprobe"}


class TestConstruction:
    def test_requires_a_store(self):
        session = Session(scale=SCALE, seed=1)
        with pytest.raises(ValueError, match="store"):
            session.scheduler()

    def test_rejects_duplicate_job_names(self, tmp_path):
        session = Session(scale=SCALE, seed=1, store=tmp_path / "obs")
        twin = (FAST_JOBS[0], JobSpec(name="sweep", kind="reprobe", period=9.0))
        with pytest.raises(ValueError, match="unique"):
            session.scheduler(jobs=twin)

    def test_run_requires_a_bound(self, tmp_path):
        scheduler = make_scheduler(tmp_path / "obs")
        with pytest.raises(ValueError, match="bound"):
            scheduler.run()

    def test_non_manual_clock_requires_a_waiter(self, tmp_path):
        session = Session(scale=SCALE, seed=1, store=tmp_path / "obs")
        scheduler = session.scheduler(jobs=FAST_JOBS, clock=PerfCounterClock())
        with pytest.raises(ValueError, match="waiter"):
            scheduler.run(max_runs=1)


class TestDeterminism:
    def test_replay_is_byte_identical(self, tmp_path):
        """Same seed, fresh store, fresh clock: identical runs end to end.

        The fingerprint field hashes the round's segment bytes, so
        equality here is the acceptance bar: same job order, same due
        times, same scan results, byte-identical segments.
        """
        first = make_scheduler(tmp_path / "a").run(max_runs=4)
        second = make_scheduler(tmp_path / "b").run(max_runs=4)
        assert [r.to_dict() for r in first] == [r.to_dict() for r in second]
        assert all(run.fingerprint for run in first)

    def test_jitter_is_seeded_per_job_and_firing(self, tmp_path):
        runs = make_scheduler(tmp_path / "a", seed=3).run(max_runs=3)
        other = make_scheduler(tmp_path / "b", seed=4).run(max_runs=3)
        assert [r.due for r in runs] != [r.due for r in other]

    def test_jobs_fire_in_due_order(self, tmp_path):
        runs = make_scheduler(tmp_path / "obs").run(max_runs=4)
        assert [r.due for r in runs] == sorted(r.due for r in runs)
        assert [r.job for r in runs] == ["sweep", "reprobe", "reprobe", "sweep"]

    def test_until_bound_stops_before_future_jobs(self, tmp_path):
        runs = make_scheduler(tmp_path / "obs").run(until=60.0)
        assert [r.job for r in runs] == ["sweep", "reprobe"]
        assert all(r.due <= 60.0 for r in runs)


class TestExecution:
    def test_sweep_ingests_a_full_round(self, tmp_path):
        scheduler = make_scheduler(tmp_path / "obs")
        (run,) = scheduler.run(max_runs=1)
        store = Session(scale=SCALE, seed=11, store=tmp_path / "obs").store
        assert run.kind == "sweep"
        assert run.round_id == 1
        assert set(store.labels(1)) == {"v4-1", "v4-2", "v6-1", "v6-2"}
        assert run.rows > 0

    def test_reprobe_rounds_only_carry_reprobe_labels(self, tmp_path):
        scheduler = make_scheduler(tmp_path / "obs")
        runs = scheduler.run(max_runs=2)
        store = scheduler._store
        assert runs[1].kind == "reprobe"
        labels = store.labels(runs[1].round_id)
        assert labels
        assert all(label.startswith("reprobe-") for label in labels)

    def test_quiet_network_still_checkpoints_an_empty_round(self, tmp_path):
        """With no prior round there is no churn: the reprobe ingests an
        empty scan so the firing still counts across restarts."""
        jobs = (JobSpec(name="reprobe", kind="reprobe", period=10.0),)
        session = Session(scale=SCALE, seed=11, store=tmp_path / "obs")
        scheduler = session.scheduler(jobs=jobs)
        (run,) = scheduler.run(max_runs=1)
        assert run.rows == 0 and run.targets == 0
        assert session.store.labels(run.round_id) == ["reprobe-v4"]


class TestOverlapSuppression:
    def test_overrunning_job_skips_missed_firings(self, tmp_path):
        clock = ManualClock(0.0)
        scheduler = make_scheduler(tmp_path / "obs", clock=clock)

        def slow_execute(job, firing):
            clock.advance(250.0)  # overruns both periods several times
            return None, 0, 0, ""

        scheduler._execute = slow_execute
        runs = scheduler.run(max_runs=4)
        assert runs[0].skipped_firings >= 2
        # Suppression is per-job: each job rejoins at a slot strictly in
        # the future of its own overrun (no backlog of missed firings).
        for name in ("sweep", "reprobe"):
            mine = [r for r in runs if r.job == name]
            for earlier, later in zip(mine, mine[1:]):
                assert later.due >= earlier.finished
                assert later.firing > earlier.firing + earlier.skipped_firings

    def test_on_time_jobs_skip_nothing(self, tmp_path):
        runs = make_scheduler(tmp_path / "obs").run(max_runs=3)
        assert all(run.skipped_firings == 0 for run in runs)


class TestResume:
    def test_firing_counters_resume_from_the_manifest(self, tmp_path):
        root = tmp_path / "obs"
        first = make_scheduler(root).run(max_runs=3)  # sweep, reprobe x2
        resumed = make_scheduler(root)
        assert resumed.incomplete_rounds == []
        runs = resumed.run(max_runs=2)
        # Continues numbering: sweep firing 1, reprobe firing 2.
        assert [(r.job, r.firing) for r in runs] == [
            ("sweep", 1), ("reprobe", 2),
        ]
        assert runs[0].round_id == first[-1].round_id + 1

    def test_resumed_schedule_matches_an_uninterrupted_run(self, tmp_path):
        """The manifest checkpoint reconstructs the exact schedule.

        Due times, job order, firing numbers and round ids all line up
        with the uninterrupted run; scan *contents* may differ because
        the simulated world's aging state lives in the session (a real
        network carries its own state across daemon restarts).
        """
        whole = make_scheduler(tmp_path / "a").run(max_runs=5)
        make_scheduler(tmp_path / "b").run(max_runs=3)
        tail = make_scheduler(tmp_path / "b").run(max_runs=2)
        assert [
            (r.job, r.firing, r.due, r.round_id) for r in tail
        ] == [
            (r.job, r.firing, r.due, r.round_id) for r in whole[3:]
        ]

    def test_partial_rounds_are_surfaced_never_reused(self, tmp_path):
        from .conftest import make_obs

        root = tmp_path / "obs"
        scheduler = make_scheduler(root)
        scheduler.run(max_runs=1)
        # A crash mid-sweep leaves a round with only some campaign labels.
        store = scheduler._store
        store.ingest_scan(
            [make_obs("10.9.0.1", 1.0, None)],
            round_id=2,
            label="v4-1",
            ip_version=4,
            started_at=1.0,
            finished_at=2.0,
        )
        resumed = make_scheduler(root)
        assert resumed.incomplete_rounds == [2]
        (run,) = resumed.run(max_runs=1)
        assert run.round_id == 3  # fresh id; round 2 left as evidence
        assert resumed.summary()["incomplete_rounds"] == [2]


class TestDrain:
    def test_stop_request_finishes_the_inflight_job(self, tmp_path):
        scheduler = make_scheduler(tmp_path / "obs")
        original = scheduler._execute

        def stopping_execute(job, firing):
            scheduler.request_stop()
            return original(job, firing)

        scheduler._execute = stopping_execute
        runs = scheduler.run(max_runs=5)
        assert len(runs) == 1
        assert runs[0].fingerprint  # the job completed and ingested

    def test_summary_reports_progress(self, tmp_path):
        scheduler = make_scheduler(tmp_path / "obs")
        scheduler.run(max_runs=3)
        summary = scheduler.summary()
        assert summary["runs"] == 3
        assert summary["jobs"]["sweep"]["completed"] == 1
        assert summary["jobs"]["reprobe"]["completed"] == 2
        assert summary["jobs"]["reprobe"]["next_firing"] == 2
