"""Fixtures for the service suite: small synthetic stores, fast worlds."""

import ipaddress

import pytest

from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.engine_id import EngineId
from repro.store import Store


def make_engine(tag: int) -> EngineId:
    mac = tag.to_bytes(6, "big")
    return EngineId(b"\x80\x00\x00\x09\x03" + mac)


def make_obs(
    ip: str,
    recv_time: float,
    engine: "EngineId | None",
    boots: int = 1,
    engine_time: int = 100,
) -> ScanObservation:
    return ScanObservation(
        address=ipaddress.ip_address(ip),
        recv_time=recv_time,
        engine_id=engine,
        engine_boots=boots,
        engine_time=engine_time,
        response_count=1,
        wire_bytes=64,
    )


def make_scan(label, started_at, observations, *, ip_version=4):
    scan = ScanResult(
        label=label,
        ip_version=ip_version,
        started_at=started_at,
        finished_at=started_at + 50.0,
        targets_probed=len(observations) + 5,
    )
    for obs in observations:
        scan.add(obs)
    return scan


def synthetic_round(round_id: int, *, devices: int = 8) -> "list[ScanResult]":
    """Two scans of ``devices`` stable engines; uptimes grow per round."""
    start = 10_000.0 * round_id
    scans = []
    for pair, label in enumerate(("v4-1", "v4-2")):
        observations = [
            make_obs(
                f"10.{round_id}.0.{n + 1}",
                start + pair * 100.0,
                make_engine(0x2000 + n),
                boots=2,
                engine_time=round_id * 1000 + pair * 100,
            )
            for n in range(devices)
        ]
        scans.append(make_scan(label, start + pair * 100.0, observations))
    return scans


def populate(root, *, rounds: int = 2, devices: int = 8) -> Store:
    """A store with ``rounds`` synthetic two-scan rounds (multi-part)."""
    store = Store(root=root, segment_rows=4)
    for round_id in range(1, rounds + 1):
        for scan in synthetic_round(round_id, devices=devices):
            store.ingest_result(scan, round_id=round_id)
    return store


@pytest.fixture(scope="module")
def served_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("served-store")
    return populate(root / "obs", rounds=2)
