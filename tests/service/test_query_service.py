"""The concurrent query service: snapshots, cache, shedding, metrics."""

import pytest

from repro.clock import ManualClock
from repro.net.ratelimit import RateLimit
from repro.service.query import (
    ENDPOINTS,
    QueryService,
    RateLimitExceeded,
    ServiceError,
)
from repro.store import Store

from .conftest import populate, synthetic_round


class TestEndpoints:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("qsvc") / "obs"
        populate(root, rounds=2)
        return QueryService(store=root)

    def test_accepts_a_path_and_serves_rounds(self, service):
        response = service.request("rounds")
        assert response.value == [1, 2]
        assert response.endpoint == "rounds"
        assert response.generation >= 1

    def test_every_registered_endpoint_is_listed(self, service):
        assert service.endpoints() == sorted(ENDPOINTS)

    def test_device_count(self, service):
        assert service.request("device-count").value == 8

    def test_engine_ids_are_hex(self, service):
        value = service.request("engine-ids").value
        assert len(value) == 8
        assert all(raw == raw.lower() and len(raw) > 10 for raw in value)

    def test_round_summary_requires_argument(self, service):
        with pytest.raises(ServiceError, match="requires a round id"):
            service.request("round-summary")

    def test_round_summary_rejects_garbage_argument(self, service):
        with pytest.raises(ServiceError, match="invalid round id"):
            service.request("round-summary", "not-a-number")

    def test_round_summary_of_missing_round_is_an_error(self, service):
        with pytest.raises(ServiceError, match="no such round"):
            service.request("round-summary", "99")

    def test_round_summary_shape(self, service):
        value = service.request("round-summary", "1").value
        assert value["round"] == 1
        assert set(value["scans"]) == {"v4-1", "v4-2"}
        assert value["scans"]["v4-1"]["rows"] == 8

    def test_history_requires_argument(self, service):
        with pytest.raises(ServiceError, match="requires an address"):
            service.request("history")

    def test_history_is_json_safe(self, service):
        value = service.request("history", "10.1.0.1").value
        assert [row["label"] for row in value] == ["v4-1", "v4-2"]
        assert all(isinstance(row["engine_id"], str) for row in value)

    def test_unknown_endpoint_lists_known_ones(self, service):
        with pytest.raises(ServiceError, match="unknown endpoint 'nope'"):
            service.request("nope")

    def test_integrity_passes_on_a_quiet_store(self, service):
        value = service.request("integrity").value
        assert value["consistent"] is True
        assert value["scans"] == 4
        assert value["rows"] == 32

    def test_cache_entries_must_be_positive(self, tmp_path):
        populate(tmp_path / "obs")
        with pytest.raises(ServiceError, match="cache_entries"):
            QueryService(store=tmp_path / "obs", cache_entries=0)


class TestCache:
    def test_second_request_hits_the_cache(self, tmp_path):
        service = QueryService(store=populate(tmp_path / "obs"))
        assert service.request("rounds").cached is False
        assert service.request("rounds").cached is True

    def test_argument_is_part_of_the_key(self, tmp_path):
        service = QueryService(store=populate(tmp_path / "obs"))
        service.request("round-summary", "1")
        assert service.request("round-summary", "2").cached is False
        assert service.request("round-summary", "1").cached is True

    def test_ingest_invalidates_by_bumping_the_generation(self, tmp_path):
        root = tmp_path / "obs"
        service = QueryService(store=populate(root, rounds=2))
        first = service.request("rounds")
        assert service.request("rounds").cached is True

        # A separate Store object (another process, in production) writes.
        writer = Store(root=root)
        for scan in synthetic_round(3):
            writer.ingest_result(scan, round_id=3)

        fresh = service.request("rounds")
        assert fresh.cached is False
        assert fresh.generation > first.generation
        assert fresh.value == [1, 2, 3]

    def test_lru_evicts_oldest_key(self, tmp_path):
        service = QueryService(store=populate(tmp_path / "obs"), cache_entries=2)
        service.request("rounds")
        service.request("device-count")
        service.request("stats")  # evicts "rounds"
        assert service.request("rounds").cached is False
        assert service.request("stats").cached is True


class TestRateLimiting:
    def test_excess_requests_are_shed_not_queued(self, tmp_path):
        clock = ManualClock(0.0)
        service = QueryService(
            store=populate(tmp_path / "obs"),
            rate_limit=RateLimit(rate=1.0, burst=2.0),
            clock=clock,
        )
        service.request("rounds", client="alice")
        service.request("rounds", client="alice")
        with pytest.raises(RateLimitExceeded, match="alice"):
            service.request("rounds", client="alice")
        # Refill on the injected clock re-admits the client.
        clock.advance(1.0)
        assert service.request("rounds", client="alice").cached is True

    def test_buckets_are_per_client(self, tmp_path):
        service = QueryService(
            store=populate(tmp_path / "obs"),
            rate_limit=RateLimit(rate=1.0, burst=1.0),
            clock=ManualClock(0.0),
        )
        service.request("rounds", client="alice")
        service.request("rounds", client="bob")
        with pytest.raises(RateLimitExceeded):
            service.request("rounds", client="alice")

    def test_shed_requests_count_in_metrics(self, tmp_path):
        service = QueryService(
            store=populate(tmp_path / "obs"),
            rate_limit=RateLimit(rate=1.0, burst=1.0),
            clock=ManualClock(0.0),
        )
        service.request("rounds")
        with pytest.raises(RateLimitExceeded):
            service.request("rounds")
        summary = service.metrics_summary()
        assert summary["shed"] == 1
        assert summary["endpoints"]["rounds"]["shed"] == 1


class TestMetrics:
    def test_summary_rolls_up_hits_misses_and_latency(self, tmp_path):
        service = QueryService(store=populate(tmp_path / "obs"))
        service.request("rounds")
        service.request("rounds")
        service.request("device-count")
        summary = service.metrics_summary()
        assert summary["requests"] == 3
        assert summary["hits"] == 1
        assert summary["misses"] == 2
        assert summary["hit_ratio"] == pytest.approx(1 / 3, abs=1e-3)
        rounds = summary["endpoints"]["rounds"]
        assert rounds["requests"] == 2
        assert rounds["p99_ms"] >= rounds["p50_ms"] >= 0.0

    def test_errors_are_counted(self, tmp_path):
        service = QueryService(store=populate(tmp_path / "obs"))
        with pytest.raises(ServiceError):
            service.request("round-summary", "99")
        assert service.metrics_summary()["endpoints"]["round-summary"]["errors"] == 1
