"""Unit tests for the OUI and enterprise-number registries."""

import pytest

from repro.net.mac import MacAddress
from repro.oui.enterprise import (
    ENTERPRISE_NUMBERS,
    enterprise_name,
    enterprise_number,
    has_enterprise_number,
)
from repro.oui.registry import OuiRegistry, default_registry


class TestOuiRegistry:
    def test_paper_figure3_example(self):
        # The Brocade engine ID in the paper's Figure 3 embeds 74:8e:f8.
        assert default_registry().vendor_of(MacAddress("74:8e:f8:31:db:80")) == "Brocade"

    def test_well_known_vendors(self):
        reg = default_registry()
        assert reg.vendor_of(MacAddress("00:00:0c:11:22:33")) == "Cisco"
        assert reg.vendor_of(MacAddress("00:e0:fc:00:00:01")) == "Huawei"
        assert reg.vendor_of(MacAddress("00:05:85:aa:bb:cc")) == "Juniper"

    def test_unregistered_is_none(self):
        assert default_registry().vendor_of(MacAddress("ee:ee:ee:00:00:01")) is None
        assert not default_registry().is_registered(MacAddress("ee:ee:ee:00:00:01"))

    def test_vendor_of_accepts_raw_bytes(self):
        assert default_registry().vendor_of(b"\x00\x00\x0c\x00\x00\x00") == "Cisco"

    def test_make_mac_is_deterministic(self):
        reg = default_registry()
        a = reg.make_mac("Cisco", 0, 42)
        b = reg.make_mac("Cisco", 0, 42)
        assert a == b
        assert reg.vendor_of(a) == "Cisco"

    def test_make_mac_blocks_rotate(self):
        reg = default_registry()
        ouis = {reg.make_mac("Cisco", i, 0).oui for i in range(20)}
        assert ouis == set(reg.ouis_for("Cisco"))

    def test_make_mac_index_bounds(self):
        with pytest.raises(ValueError):
            default_registry().make_mac("Cisco", 0, 1 << 24)

    def test_unknown_vendor(self):
        with pytest.raises(KeyError):
            default_registry().ouis_for("NotAVendor")

    def test_duplicate_oui_rejected(self):
        with pytest.raises(ValueError):
            OuiRegistry({"A": ("00000c",), "B": ("00000c",)})

    def test_malformed_oui_rejected(self):
        with pytest.raises(ValueError):
            OuiRegistry({"A": ("00000c00",)})

    def test_registry_covers_paper_vendors(self):
        """Every vendor named in the paper's Figures 11/12 must resolve."""
        paper_vendors = {
            "Cisco", "Huawei", "Juniper", "H3C", "Broadcom", "Thomson",
            "Netgear", "Ambit", "Ruijie", "Brocade", "Adtran", "OneAccess",
        }
        assert paper_vendors <= set(default_registry().vendors())


class TestEnterpriseNumbers:
    def test_real_iana_assignments(self):
        assert enterprise_name(9) == "Cisco"
        assert enterprise_name(2011) == "Huawei"
        assert enterprise_name(2636) == "Juniper"
        assert enterprise_name(8072) == "Net-SNMP"
        assert enterprise_name(25506) == "H3C"

    def test_unknown_number(self):
        assert enterprise_name(999999999) is None

    def test_reverse_lookup(self):
        assert enterprise_number("Cisco") == 9
        assert ENTERPRISE_NUMBERS[enterprise_number("Huawei")] == "Huawei"

    def test_reverse_lookup_unknown(self):
        with pytest.raises(KeyError):
            enterprise_number("NotAVendor")
        assert not has_enterprise_number("NotAVendor")

    def test_aliased_vendors_map_to_lowest_number(self):
        # Brocade holds 1588 and 1991 (Foundry); the canonical number is 1588.
        assert enterprise_number("Brocade") == 1588
        # Net-SNMP holds 2021 (ucdavis) and 8072; canonical is 2021.
        assert enterprise_number("Net-SNMP") == 2021
