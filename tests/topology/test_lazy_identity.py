"""Lazy-vs-eager byte identity for the streamed topology layout.

A :class:`~repro.topology.lazy.LazyTopology` derives every device from
``(seed, slot)`` at probe time; ``build_topology`` with
``layout="streamed"`` iterates the same slots eagerly.  The two views may
never differ by a single bit: every device field, every scan observation
(address, recv time, engine triplet, reply count, wire bytes), every scan
aggregate and every shard counter must match — at every worker count,
under every fault profile, across adversarial personalities, with and
without retry policies, and regardless of the order (or number of times)
devices are derived.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.scanner.campaign import ScanCampaign
from repro.scanner.executor import ExecutionOptions, RetryPolicy
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology
from repro.topology.lazy import LazyTopology

#: Small but adversarial-rich world (same sizing as the pipeline
#: identity suite): chaos sweeps still hit every personality.
DIVISOR = 4000.0
SEED = 1177

COUNTER_FIELDS = (
    "targets", "probes_sent", "replies", "observations",
    "dropped_loss", "dropped_reply_loss", "dropped_no_endpoint",
    "dropped_rate_limited", "retries", "timed_out", "unparsed",
    "breaker_tripped", "duplicated", "reordered", "truncated",
    "corrupted", "probe_bytes", "reply_bytes",
)


def make_config(seed: int = SEED, **overrides) -> TopologyConfig:
    return TopologyConfig(
        seed=seed, scale_divisor=DIVISOR, layout="streamed", **overrides
    )


def device_fingerprint(device) -> tuple:
    """Every field a scan outcome can depend on, as one comparable tuple."""
    agent = device.agent
    return (
        device.device_id,
        device.device_type,
        device.vendor,
        device.asn,
        device.region,
        device.snmp_open,
        device.dhcp_pool,
        device.reboot_between_scans,
        device.nat_gateway,
        agent.engine_id.raw,
        agent.engine_boots,
        agent.boot_time,
        tuple(
            (
                str(interface.address),
                interface.snmp_reachable,
                None if interface.mac is None else str(interface.mac),
            )
            for interface in device.interfaces
        ),
    )


def campaign_fingerprint(topology, config, **options_kw):
    """Run the four-scan campaign; reduce it to comparable structures."""
    campaign = ScanCampaign(
        topology=topology, config=config,
        options=ExecutionOptions(**options_kw),
    )
    result = campaign.run()
    fingerprint = []
    for label in sorted(result.scans):
        scan = result.scans[label]
        for observation in scan.observations.values():
            fingerprint.append((
                label,
                str(observation.address),
                observation.recv_time,
                None if observation.engine_id is None else observation.engine_id.raw,
                observation.engine_boots,
                observation.engine_time,
                observation.response_count,
                observation.wire_bytes,
            ))
        fingerprint.append((
            label, scan.targets_probed, scan.probe_bytes_sent,
            scan.reply_bytes_received, tuple(sorted(
                (str(a), n) for a, n in scan.multi_responders.items()
            )),
        ))
    counters = {
        label: [
            tuple(getattr(shard, f) for f in COUNTER_FIELDS)
            for shard in sorted(metrics.shards, key=lambda s: s.shard_index)
        ]
        for label, metrics in result.metrics.items()
    }
    return fingerprint, counters


def assert_campaigns_identical(config=None, **options_kw):
    config = config or make_config()
    lazy = LazyTopology(config=config)
    lazy_fp = campaign_fingerprint(lazy, config, **options_kw)
    eager_fp = campaign_fingerprint(build_topology(config), config, **options_kw)
    assert lazy_fp == eager_fp
    return lazy


# -- campaign-level identity (the acceptance gate) ------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("fault_profile", [None, "chaos"])
def test_campaign_identity_across_workers_and_faults(workers, fault_profile):
    assert_campaigns_identical(workers=workers, fault_profile=fault_profile)


def test_campaign_identity_with_adversarial_agents_and_retries():
    """Stateful adversarial personalities + retry breakers + chaos loss,
    with a residency cap low enough to force eviction and re-derivation
    mid-campaign — the hardest case for lazy state reconstruction."""
    config = make_config(adversarial_frac=0.15)
    retry = RetryPolicy(max_retries=2, timeout=1.5, breaker_threshold=3)
    lazy = LazyTopology(config=config, max_resident=512)
    lazy_fp = campaign_fingerprint(
        lazy, config, fault_profile="chaos", retry=retry
    )
    eager_fp = campaign_fingerprint(
        build_topology(config), config, fault_profile="chaos", retry=retry
    )
    assert lazy_fp == eager_fp
    # The cap genuinely bit: the materialized working set exceeded the
    # residency cap (so eviction and re-derivation happened mid-campaign)
    # while residency stayed O(cap) (topology window + handler cache).
    # Derivations stay *below* the device count because the snapshot
    # filter keeps closed devices from ever materializing.
    assert lazy.peak_resident <= 2 * lazy.max_resident
    assert lazy.derivations > lazy.max_resident


def test_campaign_identity_under_conformance_profile():
    assert_campaigns_identical(fault_profile="conformance")


# -- device-level identity ------------------------------------------------------


@pytest.fixture(scope="module")
def eager_world():
    return build_topology(make_config())


@pytest.fixture(scope="module")
def lazy_world():
    return LazyTopology(config=make_config())


def test_every_device_derives_identically(eager_world, lazy_world):
    assert len(lazy_world.devices) == len(eager_world.devices)
    for device_id, eager_device in eager_world.devices.items():
        assert device_fingerprint(lazy_world.devices[device_id]) == \
            device_fingerprint(eager_device)


def test_as_objects_match(eager_world, lazy_world):
    assert set(lazy_world.ases) == set(eager_world.ases)
    for asn, eager_as in eager_world.ases.items():
        lazy_as = lazy_world.ases[asn]
        assert lazy_as.region == eager_as.region
        assert lazy_as.ipv4_prefix == eager_as.ipv4_prefix
        assert lazy_as.ipv6_prefix == eager_as.ipv6_prefix
        assert lazy_as.router_open_rate == eager_as.router_open_rate


def test_owner_of_matches_eager_ownership(eager_world, lazy_world):
    owners = eager_world.address_owners()
    for address, device_id in owners.items():
        assert lazy_world.owner_of(address) == device_id


# -- property tests: derivation is a pure function of (seed, slot) --------------


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=200), min_size=1,
                max_size=40))
def test_derivation_is_order_independent(eager_world, ids):
    """Deriving any sample of devices, in any order, with repeats, on a
    fresh lazy view reproduces the eager build exactly."""
    fresh = LazyTopology(config=make_config())
    for device_id in ids:
        assert device_fingerprint(fresh.devices[device_id]) == \
            device_fingerprint(eager_world.devices[device_id])


@settings(max_examples=10, deadline=None)
@given(st.randoms(use_true_random=False))
def test_full_shuffled_sweep_matches_eager(eager_world, rng):
    fresh = LazyTopology(config=make_config())
    ids = list(eager_world.devices)
    rng.shuffle(ids)
    for device_id in ids:
        assert device_fingerprint(fresh.devices[device_id]) == \
            device_fingerprint(eager_world.devices[device_id])


def test_repeated_derivation_is_stable(lazy_world):
    first = device_fingerprint(lazy_world.devices[1])
    # While referenced, lookups return the same canonical object.
    assert lazy_world.devices[1] is lazy_world.devices[1]
    assert device_fingerprint(lazy_world.devices[1]) == first


def test_different_seeds_give_different_engine_ids():
    """Satellite check: the seed really keys the derivation.  Compared
    slot by slot, essentially every device changes engine ID when the
    seed moves by one.  (Address-derived engine-ID formats sit on the
    seed-independent address plan, so a few same-slot coincidences are
    tolerated; wholesale agreement would be a mixing bug.)"""
    world_a = LazyTopology(config=make_config(seed=SEED))
    world_b = LazyTopology(config=make_config(seed=SEED + 1))
    total = world_a.device_count
    assert world_b.device_count == total
    unchanged = sum(
        world_a.devices[i].agent.engine_id.raw
        == world_b.devices[i].agent.engine_id.raw
        for i in world_a.devices
    )
    assert unchanged / total < 0.02


def test_interleaved_derivation_across_two_views_agrees():
    """Two independent lazy views over the same seed agree device by
    device even when their derivation orders interleave arbitrarily."""
    rng = random.Random(99)
    view_a = LazyTopology(config=make_config())
    view_b = LazyTopology(config=make_config())
    ids = list(range(1, view_a.device_count + 1))
    sample = rng.sample(ids, min(80, len(ids)))
    for device_id in sample:
        if rng.random() < 0.5:
            first, second = view_a, view_b
        else:
            first, second = view_b, view_a
        fp_first = device_fingerprint(first.devices[device_id])
        fp_second = device_fingerprint(second.devices[device_id])
        assert fp_first == fp_second
