"""ITDK-style topology-description ingest (§ topology file format).

``load_topology_file`` turns a CAIDA-ITDK-shaped node file into a
runnable :class:`Topology`; ``dump_topology_file`` writes one back out.
These tests pin the golden-fixture round trip, the exact rejection
messages for malformed input, the determinism of derived agent state,
and that a file-described world drives a real campaign end to end.
"""

from __future__ import annotations

import ipaddress
from pathlib import Path

import pytest

from repro.topology.datasets import (
    TopologyFileError,
    dump_topology_file,
    load_topology_file,
)
from repro.topology.model import DeviceType

GOLDEN = Path(__file__).parent / "data" / "topology_golden.txt"


@pytest.fixture()
def golden():
    return load_topology_file(GOLDEN, seed=5)


# -- golden fixture -------------------------------------------------------------


def test_golden_fixture_shape(golden):
    assert golden.layout == "file"
    assert sorted(golden.devices) == [1, 2, 3, 4, 5]
    assert set(golden.ases) == {64500, 64501}
    as_64500 = golden.ases[64500]
    assert sorted(as_64500.device_ids) == [1, 2, 5]
    assert golden.devices[5].asn == 64500  # directive-less default AS


def test_golden_fixture_addresses_and_vendors(golden):
    n1 = golden.devices[1]
    assert [str(i.address) for i in n1.interfaces] == [
        "192.0.10.1", "192.0.10.2", "2a00:10::1",
    ]
    assert n1.vendor == "Cisco"
    assert golden.devices[2].vendor == "Juniper"
    assert golden.devices[3].vendor == "Huawei"
    # Directive-less vendors come from the seeded default pool.
    assert golden.devices[4].vendor in ("Cisco", "Juniper", "Huawei", "MikroTik")
    assert all(
        d.device_type is DeviceType.ROUTER for d in golden.devices.values()
    )


def test_golden_fixture_agents_are_deterministic(golden):
    again = load_topology_file(GOLDEN, seed=5)
    for device_id, device in golden.devices.items():
        twin = again.devices[device_id]
        assert twin.agent.engine_id.raw == device.agent.engine_id.raw
        assert twin.agent.engine_boots == device.agent.engine_boots
        assert twin.agent.boot_time == device.agent.boot_time
    different = load_topology_file(GOLDEN, seed=6)
    assert any(
        different.devices[i].agent.engine_id.raw
        != golden.devices[i].agent.engine_id.raw
        for i in golden.devices
    )


def test_golden_round_trip_is_stable(golden, tmp_path):
    """dump -> load -> dump reaches a fixed point, and the reloaded world
    matches the original device for device."""
    first = tmp_path / "dump1.txt"
    second = tmp_path / "dump2.txt"
    dump_topology_file(golden, str(first))
    reloaded = load_topology_file(first, seed=5)
    dump_topology_file(reloaded, str(second))
    assert first.read_text() == second.read_text()
    assert sorted(reloaded.devices) == sorted(golden.devices)
    for device_id, device in golden.devices.items():
        twin = reloaded.devices[device_id]
        assert twin.asn == device.asn
        assert twin.vendor == device.vendor
        assert [i.address for i in twin.interfaces] == [
            i.address for i in device.interfaces
        ]
        assert twin.agent.engine_id.raw == device.agent.engine_id.raw


# -- malformed input ------------------------------------------------------------


def _write(tmp_path, text):
    path = tmp_path / "topo.txt"
    path.write_text(text, encoding="utf-8")
    return path


def test_duplicate_node_rejected(tmp_path):
    path = _write(tmp_path, "node N1: 10.0.0.1\nnode N1: 10.0.0.2\n")
    with pytest.raises(TopologyFileError, match=rf"{path}:2: duplicate node N1"):
        load_topology_file(path)


def test_duplicate_address_rejected(tmp_path):
    path = _write(tmp_path, "node N1: 10.0.0.1\nnode N2: 10.0.0.1\n")
    with pytest.raises(
        TopologyFileError,
        match=rf"{path}:2: address 10\.0\.0\.1 already assigned to N1",
    ):
        load_topology_file(path)


def test_invalid_address_rejected(tmp_path):
    path = _write(tmp_path, "node N1: 10.0.0.999\n")
    with pytest.raises(
        TopologyFileError, match=rf"{path}:1: invalid address '10\.0\.0\.999'"
    ):
        load_topology_file(path)


def test_directive_for_unknown_node_rejected(tmp_path):
    path = _write(tmp_path, "node N1: 10.0.0.1\nnode.AS N7: 64500\n")
    with pytest.raises(
        TopologyFileError, match=rf"{path}:2: node\.AS for unknown node N7"
    ):
        load_topology_file(path)


def test_invalid_as_number_rejected(tmp_path):
    path = _write(tmp_path, "node N1: 10.0.0.1\nnode.AS N1: backbone\n")
    with pytest.raises(
        TopologyFileError, match=rf"{path}:2: invalid AS number 'backbone'"
    ):
        load_topology_file(path)


def test_unrecognized_line_rejected(tmp_path):
    path = _write(tmp_path, "link N1 N2\n")
    with pytest.raises(
        TopologyFileError, match=rf"{path}:1: unrecognized line 'link N1 N2'"
    ):
        load_topology_file(path)


def test_node_without_addresses_rejected(tmp_path):
    path = _write(tmp_path, "node N1:\n")
    with pytest.raises(
        TopologyFileError, match=rf"{path}:1: node carries no addresses"
    ):
        load_topology_file(path)


def test_invalid_node_id_rejected(tmp_path):
    path = _write(tmp_path, "node X1: 10.0.0.1\n")
    with pytest.raises(
        TopologyFileError, match=rf"{path}:1: invalid node id 'X1'"
    ):
        load_topology_file(path)


def test_empty_file_rejected(tmp_path):
    path = _write(tmp_path, "# only comments\n\n")
    with pytest.raises(TopologyFileError, match=rf"{path}: no node lines found"):
        load_topology_file(path)


def test_errors_are_value_errors(tmp_path):
    """CLI error handling catches ValueError; the file errors must be one."""
    path = _write(tmp_path, "garbage\n")
    with pytest.raises(ValueError):
        load_topology_file(path)


# -- end-to-end smoke -----------------------------------------------------------


def test_golden_fixture_runs_a_campaign(golden):
    from repro.scanner.campaign import ScanCampaign
    from repro.scanner.executor import ExecutionOptions

    campaign = ScanCampaign(topology=golden, options=ExecutionOptions(workers=1))
    result = campaign.run()
    assert set(result.scans) == {"v4-1", "v4-2", "v6-1", "v6-2"}
    observed = {
        address
        for scan in result.scans.values()
        for address in scan.observations
    }
    assert ipaddress.ip_address("192.0.10.1") in observed
    # Engine IDs observed on the wire match the described ground truth.
    scan = result.scans["v4-1"]
    obs = scan.observations[ipaddress.ip_address("192.0.10.1")]
    assert obs.engine_id is not None
    assert obs.engine_id.raw == golden.devices[1].agent.engine_id.raw
