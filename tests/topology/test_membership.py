"""Membership-only derivation vs full materialization.

``derive_membership`` replays the prefix of a slot's RNG stream that
fixes its addresses and open/reachable flags, stopping before the
engine-ID/agent draws.  That prefix must stay draw-for-draw identical to
``derive_device`` forever: these properties hold the two paths equal for
every slot, across seeds, churn rolls and reboot epochs, so any future
edit to the generator's draw order fails loudly here.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.topology import timeline
from repro.topology.config import TopologyConfig
from repro.topology.lazy import (
    LazyTopology,
    derive_churn_rotation,
    derive_device,
    derive_membership,
    membership_of_device,
)
from repro.topology.model import DeviceType

#: Same adversarial-rich sizing as the lazy identity suite.
DIVISOR = 4000.0

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def make_config(seed: int) -> TopologyConfig:
    return TopologyConfig(seed=seed, scale_divisor=DIVISOR, layout="streamed")


def membership_tuple(record) -> tuple:
    """Every membership fact, as one comparable tuple."""
    return (
        record.device_id,
        record.device_type,
        record.snmp_open,
        record.dhcp_pool,
        tuple(
            (str(interface.address), interface.version, interface.snmp_reachable)
            for interface in record.interfaces
        ),
    )


def full_membership(world: LazyTopology, slot) -> tuple:
    """Ground truth: fully materialize the slot, project the record."""
    device = derive_device(world.config, world.registry, world.plan, slot,
                           world.shared, world.ases)
    return membership_tuple(membership_of_device(device))


def binding_state(device) -> "tuple | None":
    if device is None:
        return None
    return (device.device_id, device.agent.engine_boots, device.agent.boot_time)


# -- every slot, across seeds ----------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(seed=SEEDS)
def test_membership_matches_full_derivation_for_every_slot(seed):
    world = LazyTopology(config=make_config(seed))
    lbs = 0
    for slot in world.plan.iter_slots():
        record = derive_membership(world.config, world.registry, world.plan,
                                   slot, world.ases[slot.asn])
        if slot.device_type is DeviceType.LOAD_BALANCER:
            # No cheap prefix exists for LBs; the cached path must fall
            # back to full materialization and still agree.
            assert record is None
            record = world.membership_at(slot)
            lbs += 1
        assert membership_tuple(record) == full_membership(world, slot)
    # The world sizing really exercises the fallback arm.
    assert lbs >= 1


@settings(max_examples=10, deadline=None)
@given(seed=SEEDS)
def test_cached_membership_agrees_before_and_after_materialization(seed):
    """membership_at must agree with itself whether the record was derived
    standalone, projected from a live device, or served from cache."""
    world = LazyTopology(config=make_config(seed))
    fresh = [world.membership_at(slot) for slot in world.plan.iter_slots()]
    for slot, record in zip(world.plan.iter_slots(), fresh):
        world.device_at(slot)  # materialize, then re-ask
        again = LazyTopology(config=make_config(seed))
        again.device_at(slot)
        assert membership_tuple(world.membership_at(slot)) == membership_tuple(record)
        assert membership_tuple(again.membership_at(slot)) == membership_tuple(record)


# -- churn rolls -----------------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(seed=SEEDS, version=st.sampled_from([4, 6]))
def test_churn_rotation_from_membership_matches_full_devices(seed, version):
    world = LazyTopology(config=make_config(seed))
    rotations = 0
    for as_plan in world.plan.plans:
        slots = [world.plan._slot(as_plan, i) for i in range(as_plan.n_devices)]
        via_devices = derive_churn_rotation(
            world.seed, version,
            [derive_device(world.config, world.registry, world.plan, slot,
                           world.shared, world.ases) for slot in slots],
        )
        via_membership = derive_churn_rotation(
            world.seed, version,
            (world.membership_at(slot) for slot in slots),
        )
        assert via_membership == via_devices
        rotations += len(via_membership)
    # At least one AS must actually rotate for the property to bite; the
    # v4 churn probability (0.6) makes an empty world-wide rotation a
    # sizing bug, not chance.
    if version == 4:
        assert rotations >= 2


# -- reboot epochs ---------------------------------------------------------------


EPOCHS = st.sampled_from([
    timeline.REFERENCE_TIME,
    timeline.SCAN1_V6_START + 1.0,
    timeline.SCAN2_V4_START,
    timeline.SCAN2_V4_START + timeline.SCAN2_V4_DURATION + 10.0,
])


@settings(max_examples=8, deadline=None)
@given(seed=SEEDS, epoch=EPOCHS, churned=st.booleans())
def test_binding_agrees_with_eager_materialization_across_epochs(seed, epoch, churned):
    """Fast-rejecting through membership must not change what a probe
    observes at any clock epoch: a view that materializes every device
    *before* the clock advances and a view that materializes lazily
    (after membership fast-rejection) bind every address identically,
    including agent reboot state.
    """
    config = make_config(seed)
    lazy_view = LazyTopology(config=config)
    eager_view = LazyTopology(config=config)
    pinned = [eager_view.device_at(slot) for slot in eager_view.plan.iter_slots()]
    for view in (lazy_view, eager_view):
        if churned:
            view.activate_churn(4)
            view.activate_churn(6)
        view.advance_clock(epoch)
    for address in lazy_view.plan.iter_v4_targets():
        assert binding_state(lazy_view.binding_of(address)) == \
            binding_state(eager_view.binding_of(address))
    assert pinned  # keep every eager device strongly referenced throughout
    # The fast path really avoided materializing the closed majority.
    assert lazy_view.derivations < eager_view.derivations
