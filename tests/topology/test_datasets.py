"""Unit tests for dataset views and rDNS zone generation."""

import pytest

from repro.topology.config import TopologyConfig
from repro.topology.datasets import build_rdns_zone, build_router_datasets
from repro.topology.generator import build_topology
from repro.topology.model import DeviceType


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyConfig.tiny(seed=9))


@pytest.fixture(scope="module")
def config():
    return TopologyConfig.tiny(seed=9)


@pytest.fixture(scope="module")
def datasets(topo, config):
    return build_router_datasets(topo, config)


class TestRouterDatasets:
    def test_deterministic(self, topo, config, datasets):
        again = build_router_datasets(topo, config)
        assert again.itdk_v4 == datasets.itdk_v4
        assert again.hitlist_v6 == datasets.hitlist_v6

    def test_itdk_v4_only_router_interfaces(self, topo, datasets):
        for address in datasets.itdk_v4:
            device = topo.device_of_address(address)
            assert device.device_type is DeviceType.ROUTER
            assert address.version == 4

    def test_ripe_smaller_than_itdk(self, datasets):
        assert len(datasets.ripe_v4) < len(datasets.itdk_v4)

    def test_itdk_covers_most_router_v4(self, topo, datasets):
        router_v4 = sum(
            1 for d in topo.routers() for i in d.interfaces if i.version == 4
        )
        assert len(datasets.itdk_v4) > 0.7 * router_v4

    def test_hitlist_targets_superset_of_hops(self, datasets):
        assert datasets.hitlist_v6 <= datasets.hitlist_targets_v6 | datasets.hitlist_v6
        # Targets include the non-router population the hop view excludes.
        assert len(datasets.hitlist_targets_v6) > len(datasets.hitlist_v6)

    def test_hitlist_hops_mostly_routers(self, topo, datasets):
        routers = sum(
            1
            for a in datasets.hitlist_v6
            if topo.device_of_address(a).device_type is DeviceType.ROUTER
        )
        assert routers > 0.5 * len(datasets.hitlist_v6)

    def test_union_and_tagging(self, datasets):
        assert datasets.union_v4 == datasets.itdk_v4 | datasets.ripe_v4
        some_v4 = next(iter(datasets.itdk_v4))
        assert datasets.is_router_ip(some_v4)


class TestRdnsZone:
    def test_zone_covers_fraction_of_router_interfaces(self, topo, config):
        zone = build_rdns_zone(topo, config)
        router_ifaces = sum(len(d.interfaces) for d in topo.routers())
        assert 0.25 * router_ifaces < len(zone) < 0.7 * router_ifaces

    def test_hostnames_follow_as_style(self, topo, config):
        zone = build_rdns_zone(topo, config)
        by_style = {}
        for address, hostname in zone.records.items():
            device = topo.device_of_address(address)
            style = topo.ases[device.asn].rdns_style
            by_style.setdefault(style, []).append(hostname)
        if "iface-router" in by_style:
            assert all(
                h.split(".")[0].startswith(("et-",)) for h in by_style["iface-router"]
            )
        if "flat" in by_style:
            assert all(h.startswith("host-") for h in by_style["flat"])

    def test_interfaces_of_one_router_share_name_when_structured(self, topo, config):
        zone = build_rdns_zone(topo, config)
        for device in topo.routers():
            style = topo.ases[device.asn].rdns_style
            if style not in ("iface-router", "router-iface"):
                continue
            names = set()
            for interface in device.interfaces:
                hostname = zone.ptr(interface.address)
                if hostname is None:
                    continue
                parts = hostname.split(".")
                if style == "iface-router":
                    names.add(parts[1])
                else:
                    names.add(parts[0].split("-")[0])
            assert len(names) <= 1

    def test_suffix_styles_recorded(self, topo, config):
        zone = build_rdns_zone(topo, config)
        assert len(zone.suffix_styles) == len(topo.ases)
