"""Unit tests for the topology generator."""


import pytest

from repro.net.addresses import is_routable_ipv4
from repro.oui.registry import default_registry
from repro.snmp.engine_id import EngineIdFormat
from repro.topology.config import TopologyConfig
from repro.topology.generator import _poisson, build_topology
from repro.topology.model import DeviceType, Region


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyConfig.tiny(seed=77))


class TestDeterminism:
    def test_same_seed_same_topology(self):
        a = build_topology(TopologyConfig.tiny(seed=5))
        b = build_topology(TopologyConfig.tiny(seed=5))
        assert a.device_count == b.device_count
        for device_id in list(a.devices)[:50]:
            da, db = a.devices[device_id], b.devices[device_id]
            assert da.vendor == db.vendor
            assert da.engine_id.raw == db.engine_id.raw
            assert [i.address for i in da.interfaces] == [i.address for i in db.interfaces]

    def test_different_seed_differs(self):
        a = build_topology(TopologyConfig.tiny(seed=5))
        b = build_topology(TopologyConfig.tiny(seed=6))
        assert any(
            a.devices[i].engine_id.raw != b.devices[i].engine_id.raw
            for i in list(a.devices)[:50]
            if i in b.devices
        )


class TestPopulation:
    def test_counts_near_config(self, topo):
        cfg = TopologyConfig.tiny(seed=77)
        assert topo.router_count == cfg.n_routers
        n_lbs = round(cfg.n_servers * cfg.lb_frac_of_servers)
        expected = cfg.n_routers + cfg.n_servers + cfg.n_cpe + n_lbs
        assert abs(topo.device_count - expected) <= 2

    def test_every_as_has_at_least_one_router(self, topo):
        for asys in topo.ases.values():
            routers = [
                d for d in topo.devices_in_as(asys.asn)
                if d.device_type is DeviceType.ROUTER
            ]
            assert routers, f"AS{asys.asn} has no routers"

    def test_all_regions_present(self, topo):
        regions = {a.region for a in topo.ases.values()}
        assert regions == set(Region)

    def test_device_as_assignment_consistent(self, topo):
        for asys in topo.ases.values():
            for device_id in asys.device_ids:
                assert topo.devices[device_id].asn == asys.asn


class TestAddressing:
    def test_addresses_unique(self, topo):
        seen = set()
        for device in topo.devices.values():
            for interface in device.interfaces:
                assert interface.address not in seen
                seen.add(interface.address)

    def test_addresses_inside_as_prefix(self, topo):
        for asys in topo.ases.values():
            for device_id in asys.device_ids:
                for interface in topo.devices[device_id].interfaces:
                    prefix = asys.ipv4_prefix if interface.version == 4 else asys.ipv6_prefix
                    assert interface.address in prefix

    def test_v4_addresses_globally_routable(self, topo):
        for address in topo.all_addresses(4):
            assert is_routable_ipv4(address)

    def test_device_of_address_ground_truth(self, topo):
        device = next(iter(topo.devices.values()))
        for interface in device.interfaces:
            assert topo.device_of_address(interface.address) is device


class TestEngineIds:
    def test_mac_engine_ids_match_interface_mac(self, topo):
        for device in topo.devices.values():
            eid = device.engine_id
            if eid.format is EngineIdFormat.MAC and eid.mac.value != 0 \
                    and not eid.mac.packed.startswith(b"\xa0"):
                macs = {i.mac for i in device.interfaces if i.mac is not None}
                shared_models = False
                if eid.mac not in macs:
                    # Shared/cloned engine IDs are the exception.
                    shared_models = True
                assert eid.mac in macs or shared_models

    def test_net_snmp_devices_use_net_snmp_format(self, topo):
        for device in topo.devices.values():
            if device.vendor != "Net-SNMP":
                continue
            if device.engine_id.data[:1] in (b"\xa0", b"\xa1"):
                continue  # promiscuous factory-default population
            assert device.engine_id.format is EngineIdFormat.NET_SNMP

    def test_shared_bug_population_exists(self):
        cfg = TopologyConfig.tiny(seed=3)
        cfg.cisco_shared_bug_frac = 0.5
        topo = build_topology(cfg)
        bug = bytes.fromhex("8000000903000000000000")
        count = sum(1 for d in topo.devices.values() if d.engine_id.raw == bug)
        assert count > 10

    def test_engine_ids_mostly_unique(self, topo):
        raws = [d.engine_id.raw for d in topo.devices.values()]
        # Shared-bug/cloned populations are bounded; uniqueness dominates.
        assert len(set(raws)) > 0.9 * len(raws)


class TestQuirkPopulations:
    def test_quirk_fractions_materialize(self):
        cfg = TopologyConfig(seed=11, scale_divisor=200.0)
        topo = build_topology(cfg)
        devices = list(topo.devices.values())
        zero_time = sum(1 for d in devices if d.agent.behavior.report_zero_time)
        amplifiers = sum(1 for d in devices if d.agent.behavior.amplification_count > 1)
        future = sum(1 for d in devices if d.agent.behavior.future_time_offset > 0)
        reboots = sum(1 for d in devices if d.reboot_between_scans)
        n = len(devices)
        assert 0.03 < zero_time / n < 0.11
        assert amplifiers >= 1
        assert future >= 1
        assert 0.06 < reboots / n < 0.20

    def test_uptime_distribution_matches_mixture(self, topo):
        from repro.topology import timeline

        uptimes = [
            (timeline.SCAN1_V4_START - d.agent.boot_time) / 86400
            for d in topo.devices.values()
            if not d.reboot_between_scans
        ]
        n = len(uptimes)
        month = sum(1 for u in uptimes if u <= 30) / n
        over_year = sum(1 for u in uptimes if u > 365) / n
        assert 0.10 < month < 0.26
        assert 0.18 < over_year < 0.40

    def test_router_clocks_tighter_than_cpe(self, topo):
        router_skews = [
            abs(d.agent.behavior.clock_skew)
            for d in topo.devices.values()
            if d.device_type is DeviceType.ROUTER
        ]
        cpe_skews = [
            abs(d.agent.behavior.clock_skew)
            for d in topo.devices.values()
            if d.device_type is DeviceType.CPE
        ]
        assert sum(router_skews) / len(router_skews) < sum(cpe_skews) / len(cpe_skews)


class TestVendorMix:
    def test_router_vendor_ordering(self, topo):
        counts = topo.vendor_counts(DeviceType.ROUTER)
        assert counts["Cisco"] == max(counts.values())
        assert counts.get("Huawei", 0) > counts.get("Brocade", 0)

    def test_na_region_has_no_huawei_routers(self, topo):
        for device in topo.routers():
            if device.region is Region.NA:
                assert device.vendor != "Huawei"

    def test_all_router_vendors_in_registry_or_software(self, topo):
        registry = default_registry()
        from repro.oui.enterprise import has_enterprise_number

        for device in topo.routers():
            assert has_enterprise_number(device.vendor) or registry.vendors()


class TestPoisson:
    def test_zero_lambda(self):
        import random

        assert _poisson(random.Random(1), 0.0) == 0

    def test_small_lambda_mean(self):
        import random

        rng = random.Random(2)
        samples = [_poisson(rng, 3.0) for __ in range(2000)]
        assert 2.8 < sum(samples) / len(samples) < 3.2

    def test_large_lambda_gaussian_branch(self):
        import random

        rng = random.Random(3)
        samples = [_poisson(rng, 100.0) for __ in range(500)]
        assert 95 < sum(samples) / len(samples) < 105
