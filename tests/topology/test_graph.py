"""Tests for interface/router topology graphs."""

import ipaddress

import networkx as nx
import pytest

from repro.alias.sets import AliasSets
from repro.topology.config import TopologyConfig
from repro.topology.generator import build_topology
from repro.topology.graph import (
    collapse_with_aliases,
    graph_statistics,
    interface_graph,
    true_router_graph,
)
from repro.topology.model import DeviceType


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyConfig.tiny(seed=91))


@pytest.fixture(scope="module")
def iface_graph(topo):
    return interface_graph(topo)


class TestInterfaceGraph:
    def test_nonempty(self, iface_graph):
        assert iface_graph.number_of_nodes() > 0
        assert iface_graph.number_of_edges() > 0

    def test_nodes_are_known_addresses(self, topo, iface_graph):
        for node in list(iface_graph.nodes)[:100]:
            assert topo.device_of_address(node) is not None

    def test_no_self_loops(self, iface_graph):
        assert all(a != b for a, b in iface_graph.edges)

    def test_every_edge_touches_a_router(self, topo, iface_graph):
        """Consecutive-hop edges always involve a router (the last hop
        pairs a router with the end-host target)."""
        for left, right in iface_graph.edges:
            kinds = {
                topo.device_of_address(left).device_type,
                topo.device_of_address(right).device_type,
            }
            assert DeviceType.ROUTER in kinds


class TestCollapse:
    def test_ground_truth_collapse_reduces_nodes(self, topo, iface_graph):
        collapsed = true_router_graph(topo, iface_graph)
        assert collapsed.number_of_nodes() < iface_graph.number_of_nodes()

    def test_collapse_with_empty_sets_is_identity(self, iface_graph):
        collapsed = collapse_with_aliases(iface_graph, AliasSets(sets=[]))
        assert collapsed.number_of_nodes() == iface_graph.number_of_nodes()
        assert collapsed.number_of_edges() == iface_graph.number_of_edges()

    def test_manual_collapse(self):
        g = nx.Graph()
        a, b, c = (ipaddress.ip_address(f"192.0.2.{i}") for i in (1, 2, 3))
        g.add_edge(a, b)
        g.add_edge(b, c)
        sets = AliasSets(sets=[frozenset({a, b})])
        collapsed = collapse_with_aliases(g, sets)
        assert collapsed.number_of_nodes() == 2
        # The a-b edge is internal to one router and disappears.
        assert collapsed.number_of_edges() == 1

    def test_collapsed_components_never_increase(self, topo, iface_graph):
        collapsed = true_router_graph(topo, iface_graph)
        assert (
            nx.number_connected_components(collapsed)
            <= nx.number_connected_components(iface_graph)
        )


class TestStatistics:
    def test_comparison_summary(self, topo, iface_graph):
        collapsed = true_router_graph(topo, iface_graph)
        stats = graph_statistics(iface_graph, collapsed)
        assert stats.interface_nodes >= stats.router_nodes
        assert 0.0 <= stats.node_reduction < 1.0
        assert stats.max_degree_interface >= 0

    def test_empty_graphs(self):
        empty = nx.Graph()
        stats = graph_statistics(empty, empty)
        assert stats.interface_nodes == 0
        assert stats.node_reduction == 0.0


class TestSnmpv3CollapseQuality:
    def test_snmpv3_aliases_approach_ground_truth(self, topo, iface_graph):
        """Collapsing with SNMPv3-inferred aliases lands between the raw
        interface view and the oracle — closer to the oracle for the
        responsive subset."""
        from repro.pipeline.filters import FilterPipeline
        from repro.alias.snmpv3 import resolve_aliases
        from repro.scanner.campaign import ScanCampaign

        cfg = TopologyConfig.tiny(seed=91)
        campaign = ScanCampaign(topology=topo, config=cfg).run()
        records = FilterPipeline().run(*campaign.scan_pair(4)).valid
        inferred = resolve_aliases(records)
        collapsed_inferred = collapse_with_aliases(iface_graph, inferred)
        collapsed_truth = true_router_graph(topo, iface_graph)
        assert (
            collapsed_truth.number_of_nodes()
            <= collapsed_inferred.number_of_nodes()
            <= iface_graph.number_of_nodes()
        )
