"""Unit tests for the traceroute engine and the Atlas-derived RIPE view."""

import pytest

from repro.topology.config import TopologyConfig
from repro.topology.datasets import build_router_datasets
from repro.topology.generator import build_topology
from repro.topology.model import DeviceType
from repro.topology.traceroute import TracerouteEngine


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyConfig.tiny(seed=61))


@pytest.fixture(scope="module")
def engine(topo):
    return TracerouteEngine(topo)


def any_target(topo, device_type=DeviceType.CPE, version=4):
    for device in topo.devices.values():
        if device.device_type is device_type:
            for interface in device.interfaces:
                if interface.version == version:
                    return interface.address
    raise AssertionError("no such target")


class TestTrace:
    def test_last_hop_is_target(self, topo, engine):
        target = any_target(topo)
        vantage = next(iter(topo.ases))
        hops = engine.trace(vantage, target)
        assert hops
        assert hops[-1].address == target

    def test_intermediate_hops_are_router_interfaces(self, topo, engine):
        target = any_target(topo)
        vantage = next(iter(topo.ases))
        for hop in engine.trace(vantage, target)[:-1]:
            if hop.responded:
                device = topo.device_of_address(hop.address)
                assert device.device_type is DeviceType.ROUTER

    def test_hops_match_target_family(self, topo, engine):
        target = any_target(topo, version=6)
        vantage = next(iter(topo.ases))
        for hop in engine.trace(vantage, target):
            if hop.responded:
                assert hop.address.version == 6

    def test_ttls_strictly_increase(self, topo, engine):
        target = any_target(topo)
        vantage = next(iter(topo.ases))
        ttls = [hop.ttl for hop in engine.trace(vantage, target)]
        assert ttls == sorted(set(ttls))

    def test_deterministic(self, topo):
        target = any_target(topo)
        vantage = next(iter(topo.ases))
        a = TracerouteEngine(topo).trace(vantage, target)
        b = TracerouteEngine(topo).trace(vantage, target)
        assert [(h.ttl, h.address) for h in a] == [(h.ttl, h.address) for h in b]

    def test_unknown_target_empty(self, topo, engine):
        import ipaddress

        assert engine.trace(next(iter(topo.ases)), ipaddress.ip_address("203.0.113.253")) == []

    def test_some_hops_stay_silent(self, topo):
        engine = TracerouteEngine(topo, hop_visibility=0.3)
        vantages = list(topo.ases)
        silent = 0
        answered = 0
        for i in range(50):
            target = list(topo.devices.values())[i * 7 % topo.device_count].interfaces[0].address
            for hop in engine.trace(vantages[i % len(vantages)], target)[:-1]:
                if hop.responded:
                    answered += 1
                else:
                    silent += 1
        assert silent > 0 and answered > 0


class TestAtlasCampaign:
    def test_campaign_reveals_core_routers(self, topo, engine):
        targets = [d.interfaces[0].address for d in list(topo.devices.values())[:200]]
        vantages = sorted(topo.ases)[:5]
        revealed = engine.atlas_campaign(vantages, targets)
        assert revealed
        assert all(
            topo.device_of_address(a).device_type is DeviceType.ROUTER for a in revealed
        )

    def test_ripe_view_built_from_traces(self, topo):
        cfg = TopologyConfig.tiny(seed=61)
        assert cfg.ripe_from_traceroutes
        datasets = build_router_datasets(topo, cfg)
        assert datasets.ripe_v4
        # Every traced hop is a router interface.
        for address in list(datasets.ripe_v4)[:50]:
            assert topo.device_of_address(address).device_type is DeviceType.ROUTER

    def test_legacy_sampled_view_still_available(self, topo):
        cfg = TopologyConfig.tiny(seed=61)
        cfg.ripe_from_traceroutes = False
        datasets = build_router_datasets(topo, cfg)
        assert datasets.ripe_v4  # sampled fallback populates the view
