"""Unit tests for offline USM password recovery (§8)."""

import pytest

from repro.asn1.oid import Oid
from repro.net.mac import MacAddress
from repro.snmp.agent import SnmpAgent, UsmUser
from repro.snmp.bruteforce import CapturedMessage, UsmBruteForcer
from repro.snmp.client import SnmpClient
from repro.snmp.constants import OID_SYS_DESCR
from repro.snmp.engine_id import EngineId
from repro.snmp.messages import build_discovery_probe
from repro.snmp.mib import build_system_mib
from repro.snmp.usm import AuthProtocol

PASSWORD = "autumn-leaves-2021"
USER = UsmUser(b"monitor", AuthProtocol.HMAC_SHA1_96, PASSWORD)


def make_agent(mac="00:00:0c:0a:0b:01"):
    agent = SnmpAgent(
        engine_id=EngineId.from_mac(9, MacAddress(mac)),
        boot_time=0.0,
        engine_boots=2,
        users=(USER,),
    )
    agent.mib = build_system_mib("router", "r1", Oid("1.3.6.1.4.1.9.1.1"), lambda: 0.0)
    return agent


def capture_authenticated_exchange(agent):
    """Sniff a legitimate manager's authenticated GET off the wire."""
    client = SnmpClient(agent)
    discovery = client.discover(now=50.0)
    # Rebuild the signed request exactly as the client sends it.
    from repro.snmp import constants, pdu as pdu_mod
    from repro.snmp.messages import ScopedPdu, SnmpV3Message, UsmSecurityParameters
    from repro.snmp.usm import compute_mac, localized_key_from_password

    message = SnmpV3Message(
        msg_id=77,
        flags=constants.FLAG_REPORTABLE | constants.FLAG_AUTH,
        security=UsmSecurityParameters(
            engine_id=discovery.engine_id,
            engine_boots=discovery.engine_boots,
            engine_time=discovery.engine_time,
            user_name=USER.name,
            auth_params=b"\x00" * 12,
        ),
        scoped_pdu=ScopedPdu(
            context_engine_id=discovery.engine_id,
            context_name=b"",
            pdu=pdu_mod.get_request(77, OID_SYS_DESCR),
        ),
    )
    blob = message.encode()
    key = localized_key_from_password(PASSWORD, discovery.engine_id, USER.auth_protocol)
    mac = compute_mac(key, blob, USER.auth_protocol)
    return blob.replace(b"\x00" * 12, mac, 1)


class TestForgeHelper:
    def test_forged_capture_cracks(self):
        from repro.snmp.bruteforce import forge_authenticated_get

        wire = forge_authenticated_get(
            engine_id=b"\x80\x00\x00\x09\x03\x00\x00\x0c\x01\x02\x03",
            engine_boots=5, engine_time=777,
            user_name=b"noc", password="forged-pass",
        )
        capture = CapturedMessage.from_wire(wire)
        result = UsmBruteForcer().crack(capture, ["nope", "forged-pass"])
        assert result.cracked

    def test_forged_capture_authenticates_against_agent(self):
        """A forged manager message is accepted by the matching agent —
        it is byte-for-byte what a real NMS would send."""
        agent = make_agent()
        from repro.snmp.bruteforce import forge_authenticated_get
        from repro.snmp.messages import SnmpV3Message

        discovery = SnmpClient(agent).discover(now=10.0)
        wire = forge_authenticated_get(
            engine_id=discovery.engine_id,
            engine_boots=discovery.engine_boots,
            engine_time=discovery.engine_time,
            user_name=USER.name,
            password=PASSWORD,
        )
        replies = agent.handle(wire, now=10.0)
        assert replies
        reply = SnmpV3Message.decode(replies[0])
        assert reply.scoped_pdu.pdu.is_response


class TestCapturedMessage:
    def test_dissection(self):
        wire = capture_authenticated_exchange(make_agent())
        capture = CapturedMessage.from_wire(wire)
        assert capture.user_name == b"monitor"
        assert len(capture.auth_params) == 12
        assert capture.engine_id.startswith(b"\x80\x00\x00\x09")

    def test_zeroed_restores_mac_input(self):
        wire = capture_authenticated_exchange(make_agent())
        capture = CapturedMessage.from_wire(wire)
        assert b"\x00" * 12 in capture.zeroed()
        assert capture.zeroed() != capture.raw

    def test_unauthenticated_capture_rejected(self):
        probe = build_discovery_probe(1).encode()
        with pytest.raises(ValueError):
            CapturedMessage.from_wire(probe)


class TestBruteForce:
    def test_crack_with_password_in_dictionary(self):
        wire = capture_authenticated_exchange(make_agent())
        capture = CapturedMessage.from_wire(wire)
        forcer = UsmBruteForcer()
        result = forcer.crack(capture, ["wrong1", "wrong2", PASSWORD, "later"])
        assert result.cracked
        assert result.password == PASSWORD
        assert result.guesses_tried == 3

    def test_crack_fails_without_password(self):
        wire = capture_authenticated_exchange(make_agent())
        capture = CapturedMessage.from_wire(wire)
        result = UsmBruteForcer().crack(capture, ["a", "b", "c"])
        assert not result.cracked
        assert result.guesses_tried == 3

    def test_stretch_cache_amortizes_across_engines(self):
        """The §8 warning: one stretched dictionary attacks every engine."""
        captures = [
            CapturedMessage.from_wire(
                capture_authenticated_exchange(make_agent(mac=f"00:00:0c:0a:0b:{i:02x}"))
            )
            for i in range(1, 4)
        ]
        forcer = UsmBruteForcer()
        dictionary = ["wrongA", "wrongB", PASSWORD]
        results = forcer.crack_many(captures, dictionary)
        assert all(r.cracked for r in results.values())
        # Three engines, three guesses — but only three stretches total.
        assert forcer.cache_size == 3

    def test_verified_guess_validates_against_agent(self):
        """The recovered password really authenticates."""
        agent = make_agent()
        wire = capture_authenticated_exchange(agent)
        result = UsmBruteForcer().crack(
            CapturedMessage.from_wire(wire), ["x", PASSWORD]
        )
        recovered = UsmUser(b"monitor", AuthProtocol.HMAC_SHA1_96, result.password)
        value = SnmpClient(agent).get_v3_auth(recovered, OID_SYS_DESCR, now=60.0)
        assert value == b"router"

    def test_md5_protocol_supported(self):
        forcer = UsmBruteForcer(protocol=AuthProtocol.HMAC_MD5_96)
        assert len(forcer.stretch("pw")) == 16
