"""Unit tests for the User-based Security Model (RFC 3414)."""

import pytest

from repro.snmp.usm import (
    AuthProtocol,
    compute_mac,
    localize_key,
    localized_key_from_password,
    password_to_key,
    verify_mac,
)


class TestPasswordToKey:
    def test_rfc3414_md5_test_vector(self):
        """RFC 3414 §A.3.1: password 'maplesyrup' -> known MD5 Ku."""
        key = password_to_key("maplesyrup", AuthProtocol.HMAC_MD5_96)
        assert key.hex() == "9faf3283884e92834ebc9847d8edd963"

    def test_rfc3414_sha_test_vector(self):
        """RFC 3414 §A.5.1: password 'maplesyrup' -> known SHA-1 Ku."""
        key = password_to_key("maplesyrup", AuthProtocol.HMAC_SHA1_96)
        assert key.hex() == "9fb5cc0381497b3793528939ff788d5d79145211"

    def test_key_lengths(self):
        assert len(password_to_key("x", AuthProtocol.HMAC_MD5_96)) == 16
        assert len(password_to_key("x", AuthProtocol.HMAC_SHA1_96)) == 20

    def test_empty_password_rejected(self):
        with pytest.raises(ValueError):
            password_to_key("", AuthProtocol.HMAC_MD5_96)

    def test_bytes_and_str_agree(self):
        assert password_to_key("pw", AuthProtocol.HMAC_MD5_96) == password_to_key(
            b"pw", AuthProtocol.HMAC_MD5_96
        )


class TestLocalization:
    ENGINE_ID = bytes.fromhex("000000000000000000000002")

    def test_rfc3414_md5_localized_vector(self):
        """RFC 3414 §A.3.1: localized MD5 key for engine ID 00..02."""
        ku = password_to_key("maplesyrup", AuthProtocol.HMAC_MD5_96)
        kul = localize_key(ku, self.ENGINE_ID, AuthProtocol.HMAC_MD5_96)
        assert kul.hex() == "526f5eed9fcce26f8964c2930787d82b"

    def test_rfc3414_sha_localized_vector(self):
        """RFC 3414 §A.5.1: localized SHA-1 key for engine ID 00..02."""
        ku = password_to_key("maplesyrup", AuthProtocol.HMAC_SHA1_96)
        kul = localize_key(ku, self.ENGINE_ID, AuthProtocol.HMAC_SHA1_96)
        assert kul.hex() == "6695febc9288e36282235fc7151f128497b38f3f"

    def test_different_engines_different_keys(self):
        """The property the whole paper rests on: the localized key depends
        on the engine ID, so discovery must disclose it."""
        ku = password_to_key("maplesyrup", AuthProtocol.HMAC_SHA1_96)
        a = localize_key(ku, b"\x80\x00\x00\x09\x01", AuthProtocol.HMAC_SHA1_96)
        b = localize_key(ku, b"\x80\x00\x00\x09\x02", AuthProtocol.HMAC_SHA1_96)
        assert a != b

    def test_empty_engine_id_rejected(self):
        with pytest.raises(ValueError):
            localize_key(b"\x00" * 16, b"", AuthProtocol.HMAC_MD5_96)

    def test_composed_helper(self):
        direct = localize_key(
            password_to_key("pw", AuthProtocol.HMAC_SHA1_96),
            self.ENGINE_ID,
            AuthProtocol.HMAC_SHA1_96,
        )
        assert localized_key_from_password("pw", self.ENGINE_ID, AuthProtocol.HMAC_SHA1_96) == direct


class TestMac:
    KEY = bytes(range(16))

    def test_mac_is_96_bits(self):
        assert len(compute_mac(self.KEY, b"message", AuthProtocol.HMAC_MD5_96)) == 12
        assert len(compute_mac(self.KEY, b"message", AuthProtocol.HMAC_SHA1_96)) == 12

    def test_verify_accepts_valid(self):
        mac = compute_mac(self.KEY, b"message", AuthProtocol.HMAC_SHA1_96)
        assert verify_mac(self.KEY, b"message", mac, AuthProtocol.HMAC_SHA1_96)

    def test_verify_rejects_tampered_message(self):
        mac = compute_mac(self.KEY, b"message", AuthProtocol.HMAC_SHA1_96)
        assert not verify_mac(self.KEY, b"messagf", mac, AuthProtocol.HMAC_SHA1_96)

    def test_verify_rejects_wrong_length(self):
        assert not verify_mac(self.KEY, b"message", b"\x00" * 11, AuthProtocol.HMAC_SHA1_96)

    def test_verify_rejects_wrong_key(self):
        mac = compute_mac(self.KEY, b"message", AuthProtocol.HMAC_MD5_96)
        assert not verify_mac(bytes(16), b"message", mac, AuthProtocol.HMAC_MD5_96)

    def test_protocol_metadata(self):
        assert AuthProtocol.HMAC_MD5_96.key_length == 16
        assert AuthProtocol.HMAC_SHA1_96.key_length == 20
