"""Tests for the authPriv security level (RFC 3826 AES privacy)."""

import pytest

from repro.asn1.oid import Oid
from repro.net.mac import MacAddress
from repro.snmp.agent import SnmpAgent, UsmUser
from repro.snmp.client import SnmpClient
from repro.snmp.constants import OID_SYS_DESCR
from repro.snmp.engine_id import EngineId
from repro.snmp.mib import build_system_mib
from repro.snmp.usm import (
    AuthProtocol,
    aes_privacy_iv,
    decrypt_scoped_pdu,
    encrypt_scoped_pdu,
    privacy_key_from_password,
)

USER = UsmUser(
    b"secops", AuthProtocol.HMAC_SHA1_96, "auth-pass-123",
    priv_password="priv-pass-456",
)


def make_agent():
    return SnmpAgent(
        engine_id=EngineId.from_mac(9, MacAddress("00:00:0c:42:42:01")),
        boot_time=0.0,
        engine_boots=3,
        users=(USER,),
        mib=build_system_mib("secure router", "r1", Oid("1.3.6.1.4.1.9.1.1"),
                             lambda: 0.0),
    )


class TestPrivPrimitives:
    ENGINE = b"\x80\x00\x00\x09\x03\x00\x00\x0c\x42\x42\x01"

    def test_privacy_key_is_16_bytes(self):
        key = privacy_key_from_password("pw", self.ENGINE, AuthProtocol.HMAC_SHA1_96)
        assert len(key) == 16

    def test_iv_layout(self):
        iv = aes_privacy_iv(engine_boots=0x01020304, engine_time=0x0A0B0C0D,
                            salt=b"SALTSALT")
        assert iv == bytes.fromhex("01020304" "0a0b0c0d") + b"SALTSALT"

    def test_bad_salt_rejected(self):
        with pytest.raises(ValueError):
            aes_privacy_iv(1, 2, b"short")

    def test_scoped_pdu_roundtrip(self):
        key = privacy_key_from_password("pw", self.ENGINE, AuthProtocol.HMAC_SHA1_96)
        plaintext = b"\x30\x10" + bytes(16)
        ciphertext = encrypt_scoped_pdu(key, 3, 999, b"\x00" * 8, plaintext)
        assert ciphertext != plaintext
        assert decrypt_scoped_pdu(key, 3, 999, b"\x00" * 8, ciphertext) == plaintext

    def test_salt_changes_ciphertext(self):
        key = privacy_key_from_password("pw", self.ENGINE, AuthProtocol.HMAC_SHA1_96)
        a = encrypt_scoped_pdu(key, 3, 999, b"\x00" * 8, b"payload-bytes")
        b = encrypt_scoped_pdu(key, 3, 999, b"\x01" * 8, b"payload-bytes")
        assert a != b


class TestAuthPrivExchange:
    def test_priv_get(self):
        client = SnmpClient(make_agent())
        assert client.get_v3_priv(USER, OID_SYS_DESCR, now=50.0) == b"secure router"

    def test_payload_not_visible_on_the_wire(self):
        """An eavesdropper sees ciphertext, not the OID/value."""
        agent = make_agent()
        captured = []
        original = agent.handle

        def tap(payload, now):
            captured.append(payload)
            replies = original(payload, now)
            captured.extend(replies)
            return replies

        agent.handle = tap
        SnmpClient(agent).get_v3_priv(USER, OID_SYS_DESCR, now=50.0)
        # The discovery exchange is plaintext; the GET and its response
        # must not contain the sysDescr value or its OID bytes.
        from repro.asn1 import ber

        oid_bytes = ber.encode_oid(OID_SYS_DESCR)
        data_frames = captured[2:]  # skip discovery probe + report
        assert data_frames
        for frame in data_frames:
            assert b"secure router" not in frame
            assert oid_bytes not in frame

    def test_wrong_priv_password_gets_nothing(self):
        agent = make_agent()
        impostor = UsmUser(b"secops", AuthProtocol.HMAC_SHA1_96, "auth-pass-123",
                           priv_password="wrong-priv")
        value = SnmpClient(agent).get_v3_priv(impostor, OID_SYS_DESCR, now=50.0)
        assert value is None

    def test_priv_requires_configured_user(self):
        agent = make_agent()
        no_priv = UsmUser(b"plain", AuthProtocol.HMAC_SHA1_96, "auth-pass-123")
        with pytest.raises(ValueError):
            SnmpClient(agent).get_v3_priv(no_priv, OID_SYS_DESCR)

    def test_agent_without_priv_user_rejects_encrypted(self):
        plain_user = UsmUser(b"plain", AuthProtocol.HMAC_SHA1_96, "pass-one-two")
        agent = SnmpAgent(
            engine_id=EngineId.from_mac(9, MacAddress("00:00:0c:42:42:02")),
            boot_time=0.0, engine_boots=1, users=(plain_user,),
            mib=build_system_mib("r", "r", Oid("1.3.6.1.4.1.9.1.1"), lambda: 0.0),
        )
        pretend = UsmUser(b"plain", AuthProtocol.HMAC_SHA1_96, "pass-one-two",
                          priv_password="whatever")
        assert SnmpClient(agent).get_v3_priv(pretend, OID_SYS_DESCR) is None

    def test_md5_authpriv(self):
        user = UsmUser(b"md5sec", AuthProtocol.HMAC_MD5_96, "md5-auth-pw",
                       priv_password="md5-priv-pw")
        agent = SnmpAgent(
            engine_id=EngineId.from_mac(9, MacAddress("00:00:0c:42:42:03")),
            boot_time=0.0, engine_boots=1, users=(user,),
            mib=build_system_mib("r", "r", Oid("1.3.6.1.4.1.9.1.1"), lambda: 0.0),
        )
        assert SnmpClient(agent).get_v3_priv(user, OID_SYS_DESCR) == b"r"

    def test_discovery_still_leaks_engine_id_despite_priv(self):
        """The paper's core point survives full encryption: discovery is,
        by design, unauthenticated and unencrypted."""
        agent = make_agent()
        result = SnmpClient(agent).discover(now=5.0)
        assert result is not None
        assert result.engine_id == agent.engine_id.raw
