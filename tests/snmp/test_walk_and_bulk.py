"""Tests for GETNEXT walks, GETBULK, and the interfaces table."""

import pytest

from repro.asn1.oid import Oid
from repro.net.mac import MacAddress
from repro.snmp.agent import SnmpAgent, UsmUser
from repro.snmp.client import SnmpClient
from repro.snmp.engine_id import EngineId
from repro.snmp.iftable import (
    COLUMN_IF_DESCR,
    COLUMN_IF_PHYS_ADDRESS,
    InterfaceEntry,
    OID_IF_NUMBER,
    OID_IF_TABLE_ENTRY,
    parse_if_table,
    populate_if_table,
)
from repro.snmp.mib import build_system_mib
from repro.snmp.usm import AuthProtocol

USER = UsmUser(b"admin", AuthProtocol.HMAC_SHA1_96, "walk-bulk-secret")

MACS = [MacAddress(f"00:00:0c:77:00:{i:02x}") for i in range(1, 5)]


@pytest.fixture
def agent():
    agent = SnmpAgent(
        engine_id=EngineId.from_mac(9, MACS[0]),
        boot_time=0.0,
        engine_boots=1,
        users=(USER,),
        mib=build_system_mib("lab router", "r1", Oid("1.3.6.1.4.1.9.1.1"),
                             lambda: 0.0),
    )
    populate_if_table(
        agent.mib,
        [
            InterfaceEntry(index=i + 1, descr=f"GigabitEthernet0/{i}", mac=mac)
            for i, mac in enumerate(MACS)
        ],
    )
    return agent


class TestWalk:
    def test_walk_if_table(self, agent):
        rows = SnmpClient(agent).walk_v3_auth(USER, OID_IF_TABLE_ENTRY)
        # 4 interfaces x 5 columns.
        assert len(rows) == 20
        assert all(OID_IF_TABLE_ENTRY.is_prefix_of(oid) for oid, __ in rows)

    def test_walk_stops_at_subtree_boundary(self, agent):
        rows = SnmpClient(agent).walk_v3_auth(USER, Oid("1.3.6.1.2.1.1"))
        names = [oid for oid, __ in rows]
        assert all(Oid("1.3.6.1.2.1.1").is_prefix_of(oid) for oid in names)
        assert len(rows) == 7  # the system group

    def test_walk_respects_limit(self, agent):
        rows = SnmpClient(agent).walk_v3_auth(USER, Oid("1.3.6.1"), limit=3)
        assert len(rows) == 3

    def test_get_next_single_step(self, agent):
        entry = SnmpClient(agent).get_next_v3_auth(USER, Oid("1.3.6.1.2.1.1.1"))
        assert entry is not None
        oid, value = entry
        assert oid == Oid("1.3.6.1.2.1.1.1.0")
        assert value == b"lab router"


class TestGetBulk:
    def test_bulk_pulls_repetitions(self, agent):
        rows = SnmpClient(agent).get_bulk_v3_auth(
            USER, [OID_IF_TABLE_ENTRY.child(COLUMN_IF_DESCR)], max_repetitions=3
        )
        assert len(rows) == 3
        assert rows[0][1] == b"GigabitEthernet0/0"

    def test_bulk_stops_when_exhausted(self, agent):
        rows = SnmpClient(agent).get_bulk_v3_auth(
            USER, [OID_IF_TABLE_ENTRY.child(COLUMN_IF_PHYS_ADDRESS, 3)],
            max_repetitions=500,
        )
        # Only one more phys-address row plus whatever follows in the MIB.
        assert rows  # never infinite

    def test_bulk_non_repeaters(self, agent):
        rows = SnmpClient(agent).get_bulk_v3_auth(
            USER,
            [Oid("1.3.6.1.2.1.1.4"), OID_IF_TABLE_ENTRY.child(COLUMN_IF_DESCR)],
            max_repetitions=2,
            non_repeaters=1,
        )
        # 1 non-repeater row + 2 repetitions of the repeater.
        assert len(rows) == 3
        assert rows[0][0] == Oid("1.3.6.1.2.1.1.4.0")

    def test_bulk_v2c(self, agent):
        from repro.snmp import constants, pdu as pdu_mod
        from repro.snmp.messages import CommunityMessage

        agent.communities.add(b"public")
        request = CommunityMessage(
            version=constants.VERSION_2C,
            community=b"public",
            pdu=pdu_mod.Pdu(
                tag=constants.TAG_GET_BULK_REQUEST,
                request_id=9,
                error_status=0,
                error_index=4,
                varbinds=(pdu_mod.VarBind(OID_IF_TABLE_ENTRY.child(COLUMN_IF_DESCR)),),
            ),
        )
        replies = agent.handle(request.encode(), 0.0)
        reply = CommunityMessage.decode(replies[0])
        assert len(reply.pdu.varbinds) == 4


class TestIfTable:
    def test_if_number(self, agent):
        assert SnmpClient(agent).get_v3_auth(USER, OID_IF_NUMBER) == 4

    def test_parse_if_table_groups_rows(self, agent):
        rows = SnmpClient(agent).walk_v3_auth(USER, OID_IF_TABLE_ENTRY)
        table = parse_if_table(rows)
        assert set(table) == {1, 2, 3, 4}
        assert table[2][COLUMN_IF_DESCR] == b"GigabitEthernet0/1"

    def test_engine_mac_matches_first_interface_row(self, agent):
        """The lab cross-check, done purely in-protocol: the engine ID's
        MAC equals ifPhysAddress of the first ifTable row."""
        client = SnmpClient(agent)
        discovery = client.discover(now=0.0)
        engine_mac = EngineId(discovery.engine_id).mac
        rows = client.walk_v3_auth(USER, OID_IF_TABLE_ENTRY)
        table = parse_if_table(rows)
        first_row_mac = MacAddress(table[1][COLUMN_IF_PHYS_ADDRESS])
        assert engine_mac == first_row_mac

    def test_parse_ignores_foreign_oids(self):
        table = parse_if_table([(Oid("1.3.6.1.2.1.1.1.0"), b"x")])
        assert table == {}
