"""Fuzz-hardening: agents and decoders must survive arbitrary input.

An Internet-facing UDP service is fed garbage constantly; the agent must
neither crash nor leak a reply to anything that is not well-formed SNMP,
and the message decoders must fail only with ``BerDecodeError``.
"""

from hypothesis import given, settings, strategies as st

from repro.asn1 import ber
from repro.net.mac import MacAddress
from repro.snmp.agent import SnmpAgent, UsmUser
from repro.snmp.engine_id import EngineId
from repro.snmp.messages import SnmpV3Message, build_discovery_probe
from repro.snmp.usm import AuthProtocol


def make_agent():
    return SnmpAgent(
        engine_id=EngineId.from_mac(9, MacAddress("00:00:0c:f0:0d:01")),
        boot_time=0.0,
        engine_boots=2,
        users=(UsmUser(b"u", AuthProtocol.HMAC_SHA1_96, "some-password"),),
        communities=(b"public",),
    )


@settings(max_examples=300)
@given(st.binary(max_size=256))
def test_agent_never_crashes_on_garbage(payload):
    agent = make_agent()
    replies = agent.handle(payload, now=100.0)
    assert isinstance(replies, list)


@settings(max_examples=200)
@given(st.binary(max_size=256))
def test_decoder_raises_only_ber_errors(payload):
    try:
        SnmpV3Message.decode(payload)
    except ber.BerDecodeError:
        pass


@settings(max_examples=150)
@given(st.binary(min_size=1, max_size=64), st.integers(min_value=0, max_value=80))
def test_agent_survives_truncated_valid_probe(junk, cut):
    """Valid probe prefixes (mid-datagram truncation) must be ignored."""
    agent = make_agent()
    probe = build_discovery_probe(1).encode()
    mutated = probe[:cut] + junk
    replies = agent.handle(mutated, now=0.0)
    assert isinstance(replies, list)


@settings(max_examples=150)
@given(st.integers(min_value=0, max_value=60), st.integers(min_value=0, max_value=255))
def test_agent_survives_bitflipped_probe(position, xor):
    """Single-byte corruption of a real probe: answer correctly formed
    requests, stay silent or report on broken ones — never raise."""
    agent = make_agent()
    probe = bytearray(build_discovery_probe(1).encode())
    position %= len(probe)
    probe[position] ^= xor
    replies = agent.handle(bytes(probe), now=0.0)
    for reply in replies:
        assert isinstance(reply, bytes)


@settings(max_examples=100)
@given(st.binary(max_size=128))
def test_garbage_never_elicits_engine_id(payload):
    """Only structurally valid SNMP earns a reply containing the engine
    ID — random noise must not trigger the discovery path."""
    agent = make_agent()
    try:
        SnmpV3Message.decode(payload)
        structurally_valid = True
    except ber.BerDecodeError:
        structurally_valid = False
    replies = agent.handle(payload, now=0.0)
    if not structurally_valid:
        try:
            from repro.snmp.messages import CommunityMessage

            CommunityMessage.decode(payload)
            structurally_valid = True
        except ber.BerDecodeError:
            pass
    if not structurally_valid:
        assert replies == []
