"""Property-based tests for the SNMP protocol layer."""

import ipaddress

from hypothesis import given, settings, strategies as st

from repro.asn1.oid import Oid
from repro.snmp import constants, pdu as pdu_mod
from repro.snmp.engine_id import EngineId, EngineIdFormat
from repro.snmp.messages import ScopedPdu, SnmpV3Message, UsmSecurityParameters
from repro.snmp.usm import AuthProtocol, compute_mac, localize_key, password_to_key
from repro.net.mac import MacAddress

# -- strategies ------------------------------------------------------------------

oids = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=39),
).flatmap(
    lambda head: st.lists(st.integers(min_value=0, max_value=2**24),
                          min_size=0, max_size=8).map(lambda t: Oid(head + tuple(t)))
)

var_values = st.one_of(
    st.none(),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.binary(max_size=64),
    oids,
    st.integers(min_value=0, max_value=2**32 - 1).map(pdu_mod.Counter32),
    st.integers(min_value=0, max_value=2**32 - 1).map(pdu_mod.TimeTicks),
    st.integers(min_value=0, max_value=2**64 - 1).map(pdu_mod.Counter64),
)

varbinds = st.tuples(oids, var_values).map(lambda t: pdu_mod.VarBind(*t))

pdus = st.builds(
    pdu_mod.Pdu,
    tag=st.sampled_from(sorted(constants.PDU_TAGS)),
    request_id=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    error_status=st.integers(min_value=0, max_value=18),
    error_index=st.integers(min_value=0, max_value=10),
    varbinds=st.lists(varbinds, max_size=5).map(tuple),
)

security_params = st.builds(
    UsmSecurityParameters,
    engine_id=st.binary(max_size=32),
    engine_boots=st.integers(min_value=0, max_value=2**31 - 1),
    engine_time=st.integers(min_value=0, max_value=2**31 - 1),
    user_name=st.binary(max_size=32),
    auth_params=st.one_of(st.just(b""), st.binary(min_size=12, max_size=12)),
    priv_params=st.binary(max_size=8),
)

# Plaintext messages: any flag combination without the priv bit.
messages = st.builds(
    SnmpV3Message,
    msg_id=st.integers(min_value=0, max_value=2**31 - 1),
    max_size=st.integers(min_value=484, max_value=2**16),
    flags=st.sampled_from([0, 1, 4, 5]),
    security_model=st.just(constants.SECURITY_MODEL_USM),
    security=security_params,
    scoped_pdu=st.builds(
        ScopedPdu,
        context_engine_id=st.binary(max_size=32),
        context_name=st.binary(max_size=16),
        pdu=pdus,
    ),
)

# Encrypted messages: priv bit set, opaque ciphertext instead of a PDU.
encrypted_messages = st.builds(
    SnmpV3Message,
    msg_id=st.integers(min_value=0, max_value=2**31 - 1),
    max_size=st.integers(min_value=484, max_value=2**16),
    flags=st.sampled_from([3, 7]),  # auth+priv (priv requires auth)
    security_model=st.just(constants.SECURITY_MODEL_USM),
    security=security_params,
    scoped_pdu=st.none(),
    encrypted_pdu=st.binary(min_size=1, max_size=200),
)


# -- round trips ---------------------------------------------------------------------


@given(pdus)
def test_pdu_roundtrip(pdu):
    decoded, __ = pdu_mod.Pdu.decode(pdu.encode())
    assert decoded == pdu


@given(security_params)
def test_usm_params_roundtrip(params):
    assert UsmSecurityParameters.decode(params.encode()) == params


@settings(max_examples=60)
@given(messages)
def test_v3_message_roundtrip(message):
    assert SnmpV3Message.decode(message.encode()) == message


@settings(max_examples=40)
@given(encrypted_messages)
def test_encrypted_message_roundtrip(message):
    decoded = SnmpV3Message.decode(message.encode())
    assert decoded == message
    assert decoded.is_encrypted
    assert decoded.scoped_pdu is None


@given(varbinds)
def test_varbind_roundtrip(varbind):
    decoded, __ = pdu_mod.VarBind.decode(varbind.encode(), 0)
    assert decoded == varbind


# -- engine-ID properties --------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=0, max_value=2**48 - 1))
def test_mac_engine_id_always_classifies_mac(enterprise, mac_int):
    eid = EngineId.from_mac(enterprise, MacAddress(mac_int))
    assert eid.format is EngineIdFormat.MAC
    assert eid.enterprise == enterprise
    assert eid.mac == MacAddress(mac_int)
    assert eid.is_valid_length


@given(st.binary(min_size=0, max_size=40))
def test_engine_id_classification_total(raw):
    """Any byte string classifies without raising."""
    eid = EngineId(raw)
    assert eid.format in EngineIdFormat
    if raw:
        assert 0.0 <= eid.relative_hamming_weight() <= 1.0


@given(st.integers(min_value=0, max_value=2**31 - 1), st.binary(min_size=8, max_size=8))
def test_legacy_engine_ids_never_conforming(enterprise, data):
    eid = EngineId.legacy(enterprise, data)
    assert eid.format is EngineIdFormat.NON_CONFORMING
    assert eid.enterprise == enterprise


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_ipv4_engine_id_embeds_address(value):
    address = ipaddress.IPv4Address(value)
    eid = EngineId.from_ipv4(9, address)
    assert eid.ip == address


# -- USM properties ---------------------------------------------------------------------


@given(st.text(min_size=1, max_size=24), st.binary(min_size=5, max_size=32),
       st.sampled_from(list(AuthProtocol)))
def test_localized_keys_deterministic_and_engine_bound(password, engine_id, protocol):
    ku = password_to_key(password, protocol)
    k1 = localize_key(ku, engine_id, protocol)
    k2 = localize_key(ku, engine_id, protocol)
    assert k1 == k2
    other = localize_key(ku, engine_id + b"\x01", protocol)
    assert other != k1


@given(st.binary(min_size=16, max_size=20), st.binary(max_size=128),
       st.sampled_from(list(AuthProtocol)))
def test_mac_is_96_bits_and_message_bound(key, message, protocol):
    mac = compute_mac(key, message, protocol)
    assert len(mac) == 12
    assert compute_mac(key, message + b"x", protocol) != mac
