"""Byte-identity of the cached discovery-Report fast path.

The agent answers discovery probes through a cached encoded template
(:class:`~repro.snmp.messages.DiscoveryReportTemplate`) patched with the
per-request integers.  These tests pin the contract: for every probe and
every agent personality, the fast path emits exactly the bytes the full
message-object path would — disabling the probe matcher must never change
a single bit on the wire.
"""

import random

import pytest

import repro.snmp.agent as agent_module
from repro.net.mac import MacAddress
from repro.snmp.agent import AgentBehavior, SnmpAgent
from repro.snmp.constants import ENGINE_TIME_MAX
from repro.snmp.engine_id import EngineId
from repro.snmp.messages import encode_discovery_probe, match_discovery_probe


def _agent(**behavior):
    return SnmpAgent(
        engine_id=EngineId.from_mac(9, MacAddress("00:00:0c:aa:bb:01")),
        boot_time=50.0,
        engine_boots=3,
        behavior=AgentBehavior(**behavior) if behavior else None,
    )


def _slow_replies(monkeypatch, agent, payload, now):
    """The same request through the template-less message-object path."""
    with monkeypatch.context() as patcher:
        patcher.setattr(agent_module, "match_discovery_probe", lambda p: None)
        return agent.handle(payload, now)


BEHAVIORS = [
    {},
    {"report_zero_time": True},
    {"report_empty_engine_id": True},
    {"engine_id_pad_to": 40},
    {"engine_id_pad_to": 3},
    {"future_time_offset": 10**9},
    {"clock_skew": 0.02, "time_resolution": 10},
    {"amplification_count": 3},
    {"garbage_reports": True},
    {"malformed": True},
    {"reboot_after_handles": 3},
]


class TestByteIdentity:
    @pytest.mark.parametrize(
        "behavior", BEHAVIORS, ids=[str(sorted(b)) for b in BEHAVIORS]
    )
    def test_fast_equals_slow_for_every_personality(self, monkeypatch, behavior):
        fast_agent = _agent(**behavior)
        slow_agent = _agent(**behavior)
        rng = random.Random(2021)
        for i in range(40):
            msg_id = rng.randint(1, 2**31 - 1)
            request_id = rng.randint(0, 2**31 - 1)
            now = 50.0 + i * rng.random() * 100.0
            payload = encode_discovery_probe(msg_id, request_id=request_id)
            fast = fast_agent.handle(payload, now)
            slow = _slow_replies(monkeypatch, slow_agent, payload, now)
            assert fast == slow, (behavior, i)

    def test_property_random_probe_stream(self, monkeypatch):
        """Shared-clock property run: both agents see one request stream."""
        fast_agent = _agent()
        slow_agent = _agent()
        rng = random.Random(7)
        now = 50.0
        for __ in range(400):
            now += rng.random() * 1000.0
            payload = encode_discovery_probe(
                rng.randint(1, 2**31 - 1), request_id=rng.randint(0, 2**31 - 1)
            )
            assert fast_agent.handle(payload, now) == _slow_replies(
                monkeypatch, slow_agent, payload, now
            )

    def test_engine_time_overflow_rolls_boots_identically(self, monkeypatch):
        """RFC 3414 §2.2.2 lazy boots bump happens on both paths."""
        fast_agent = _agent()
        slow_agent = _agent()
        payload = encode_discovery_probe(5, request_id=6)
        now = 50.0 + ENGINE_TIME_MAX + 10.0
        assert fast_agent.handle(payload, now) == _slow_replies(
            monkeypatch, slow_agent, payload, now
        )
        assert fast_agent.engine_boots == slow_agent.engine_boots == 4

    def test_template_invalidated_on_reboot(self, monkeypatch):
        fast_agent = _agent()
        slow_agent = _agent()
        payload = encode_discovery_probe(1, request_id=2)
        assert fast_agent.handle(payload, 60.0) == _slow_replies(
            monkeypatch, slow_agent, payload, 60.0
        )
        fast_agent.reboot(70.0)
        slow_agent.reboot(70.0)
        assert fast_agent.handle(payload, 80.0) == _slow_replies(
            monkeypatch, slow_agent, payload, 80.0
        )

    def test_counter_advances_across_requests(self):
        agent = _agent()
        first = agent.handle(encode_discovery_probe(1), 60.0)
        second = agent.handle(encode_discovery_probe(2), 61.0)
        assert agent.stats_unknown_engine_ids == 2
        assert first != second  # msg_id and counter both moved


class TestProbeMatcher:
    def test_matches_canonical_probe(self):
        payload = encode_discovery_probe(123, request_id=456)
        assert match_discovery_probe(payload) == (123, 456)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p[:-1],                      # truncated
            lambda p: p + b"\x00",                 # trailing garbage
            lambda p: b"\x00" + p[1:],             # wrong outer tag
            lambda p: p.replace(b"\x02\x01\x03", b"\x02\x01\x02", 1),  # v2c
            lambda p: bytes([p[0]]) + p[1:].replace(b"\x04\x00", b"\x04\x01A", 1),
        ],
        ids=["truncated", "trailing", "outer-tag", "version", "nonempty-field"],
    )
    def test_rejects_non_probes(self, mutate):
        mutated = mutate(encode_discovery_probe(123, request_id=456))
        assert match_discovery_probe(mutated) is None

    def test_rejected_probe_still_answered(self):
        """A near-probe that misses the matcher falls through to the full
        decoder and still gets a Report — the fast path only ever adds."""
        agent = _agent()
        payload = bytearray(encode_discovery_probe(9, request_id=9))
        # Bump maxSize: still a valid discovery request, not the canonical
        # scanner probe, so the matcher refuses it.
        index = bytes(payload).index(b"\x02\x03\x00\xff\xe3")
        payload[index : index + 5] = b"\x02\x03\x00\xff\xe2"
        assert match_discovery_probe(bytes(payload)) is None
        assert agent.handle(bytes(payload), 60.0)
        assert agent.stats_unknown_engine_ids == 1
