"""Unit tests for engine-ID construction, parsing, and classification."""

import ipaddress

import pytest

from repro.net.mac import MacAddress
from repro.snmp.engine_id import EngineId, EngineIdFormat, engine_id_for_vendor_mac


class TestConstruction:
    def test_paper_figure3_value(self):
        """Reproduce the exact Brocade engine ID dissected in Figure 3."""
        eid = EngineId.from_mac(1991, MacAddress("74:8e:f8:31:db:80"))
        assert eid.raw == bytes.fromhex("800007c703748ef831db80")
        assert eid.is_conforming
        assert eid.enterprise == 1991
        assert eid.enterprise_vendor == "Brocade"
        assert eid.format is EngineIdFormat.MAC
        assert eid.mac == MacAddress("74:8e:f8:31:db:80")

    def test_ipv4_format(self):
        eid = EngineId.from_ipv4(9, ipaddress.IPv4Address("192.0.2.1"))
        assert eid.format is EngineIdFormat.IPV4
        assert eid.ip == ipaddress.IPv4Address("192.0.2.1")
        assert len(eid.raw) == 9

    def test_ipv6_format(self):
        addr = ipaddress.IPv6Address("2001:db8::1")
        eid = EngineId.from_ipv6(9, addr)
        assert eid.format is EngineIdFormat.IPV6
        assert eid.ip == addr

    def test_text_format(self):
        eid = EngineId.from_text(9, "router-1.example")
        assert eid.format is EngineIdFormat.TEXT
        assert eid.text == "router-1.example"

    def test_text_length_bounds(self):
        with pytest.raises(ValueError):
            EngineId.from_text(9, "")
        with pytest.raises(ValueError):
            EngineId.from_text(9, "x" * 28)

    def test_octets_format(self):
        eid = EngineId.from_octets(4413, bytes.fromhex("3910910680002970"))
        assert eid.format is EngineIdFormat.OCTETS

    def test_net_snmp_format(self):
        eid = EngineId.net_snmp_random(bytes(8))
        assert eid.format is EngineIdFormat.NET_SNMP
        assert eid.enterprise == 8072
        assert eid.enterprise_vendor == "Net-SNMP"

    def test_net_snmp_requires_8_bytes(self):
        with pytest.raises(ValueError):
            EngineId.net_snmp_random(bytes(4))

    def test_legacy_non_conforming(self):
        eid = EngineId.legacy(9, bytes.fromhex("00e0acf1325a8800"))
        assert not eid.is_conforming
        assert eid.format is EngineIdFormat.NON_CONFORMING
        assert eid.enterprise == 9
        assert len(eid.raw) == 12

    def test_enterprise_range_enforced(self):
        with pytest.raises(ValueError):
            EngineId.from_mac(1 << 31, MacAddress(0))


class TestClassificationEdgeCases:
    def test_empty(self):
        eid = EngineId(b"")
        assert not eid.is_valid_length
        assert not eid.is_conforming
        assert eid.format is EngineIdFormat.NON_CONFORMING

    def test_too_short_still_classifiable(self):
        eid = EngineId(b"\x01\x02\x03")
        assert not eid.is_valid_length
        assert eid.enterprise is None

    def test_length_bounds(self):
        assert EngineId(b"\x80\x00\x00\x09\x01").is_valid_length
        assert not EngineId(b"\x80" * 33).is_valid_length
        assert EngineId(b"\x80" * 32).is_valid_length

    def test_reserved_format(self):
        eid = EngineId(bytes.fromhex("8000000907") + b"\x01\x02")
        assert eid.format is EngineIdFormat.RESERVED

    def test_enterprise_specific_format_non_netsnmp(self):
        eid = EngineId(bytes.fromhex("80000009") + b"\x81" + b"\x01\x02\x03")
        assert eid.format is EngineIdFormat.ENTERPRISE_SPECIFIC

    def test_mac_format_with_wrong_data_length_not_mac(self):
        # Format byte 3 but only 4 data bytes: not a valid MAC engine ID.
        eid = EngineId(bytes.fromhex("8000000903") + b"\x01\x02\x03\x04")
        assert eid.format is not EngineIdFormat.MAC
        assert eid.mac is None

    def test_shared_bug_engine_id(self):
        """The CSCts87275 constant engine ID observed on 181k IPs.

        The paper prints it as 0x800000090300000000000000 (a trailing pad
        byte); the canonical Cisco MAC engine ID is the 11-byte form used
        here, which classifies as a (constant, all-zero) MAC.
        """
        eid = EngineId(bytes.fromhex("8000000903000000000000"))
        assert eid.format is EngineIdFormat.MAC
        assert eid.enterprise_vendor == "Cisco"
        assert eid.mac == MacAddress(0)

    def test_mac_is_none_for_other_formats(self):
        assert EngineId.from_text(9, "abc").mac is None
        assert EngineId.from_text(9, "abc").ip is None


class TestHammingWeight:
    def test_all_zero(self):
        assert EngineId(b"\x00" * 8).hamming_weight() == 0
        assert EngineId(b"\x00" * 8).relative_hamming_weight() == 0.0

    def test_all_ones(self):
        assert EngineId(b"\xff" * 4).relative_hamming_weight() == 1.0

    def test_half(self):
        assert EngineId(b"\x0f\xf0").relative_hamming_weight() == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            EngineId(b"").relative_hamming_weight()


class TestVendorHelper:
    def test_engine_id_for_vendor_mac(self):
        mac = MacAddress("00:00:0c:01:02:03")
        eid = engine_id_for_vendor_mac("Cisco", mac)
        assert eid.enterprise == 9
        assert eid.mac == mac

    def test_dunder(self):
        eid = EngineId(b"\x80\x00\x00\x09\x01\x02")
        assert len(eid) == 6
        assert bool(eid)
        assert str(eid) == "0x800000090102"
        assert not bool(EngineId(b""))
