"""Unit tests for the SNMP agent's protocol behaviour."""

import pytest

from repro.asn1.oid import Oid
from repro.net.mac import MacAddress
from repro.snmp import constants
from repro.snmp.agent import AgentBehavior, SnmpAgent, UsmUser
from repro.snmp.client import SnmpClient
from repro.snmp.engine_id import EngineId
from repro.snmp.messages import SnmpV3Message, build_discovery_probe
from repro.snmp.mib import build_system_mib
from repro.snmp.usm import AuthProtocol

ENGINE = EngineId.from_mac(9, MacAddress("00:00:0c:01:02:03"))


def make_agent(**kwargs):
    defaults = dict(engine_id=ENGINE, boot_time=1000.0, engine_boots=5)
    defaults.update(kwargs)
    agent = SnmpAgent(**defaults)
    if agent.mib is not None and len(agent.mib) == 0:
        agent.mib = build_system_mib(
            "Test Router", "r1", Oid("1.3.6.1.4.1.9.1.1"), lambda: agent.boot_time
        )
    return agent


class TestDiscovery:
    def test_discovery_returns_engine_triple(self):
        agent = make_agent()
        result = SnmpClient(agent).discover(now=1500.0)
        assert result.engine_id == ENGINE.raw
        assert result.engine_boots == 5
        assert result.engine_time == 500

    def test_discovery_counts_usm_stat(self):
        agent = make_agent()
        client = SnmpClient(agent)
        client.discover(now=0.0)
        client.discover(now=1.0)
        assert agent.stats_unknown_engine_ids == 2

    def test_discovery_reply_is_report(self):
        agent = make_agent()
        replies = agent.handle(build_discovery_probe(1).encode(), now=1500.0)
        message = SnmpV3Message.decode(replies[0])
        assert message.scoped_pdu.pdu.is_report
        assert message.scoped_pdu.pdu.varbinds[0].name == constants.OID_USM_STATS_UNKNOWN_ENGINE_IDS

    def test_non_reportable_discovery_ignored(self):
        agent = make_agent()
        probe = build_discovery_probe(1)
        from dataclasses import replace

        silent = replace(probe, flags=0)
        assert agent.handle(silent.encode(), now=0.0) == []

    def test_garbage_ignored(self):
        assert make_agent().handle(b"\xde\xad\xbe\xef", now=0.0) == []

    def test_v3_disabled_silent(self):
        agent = make_agent(behavior=AgentBehavior(v3_enabled=False))
        assert SnmpClient(agent).discover(now=0.0) is None


class TestEngineTime:
    def test_reboot_resets_time_and_bumps_boots(self):
        agent = make_agent()
        agent.reboot(now=2000.0)
        assert agent.engine_boots == 6
        assert agent.engine_time(2100.0) == 100

    def test_clock_skew_applied(self):
        agent = make_agent(behavior=AgentBehavior(clock_skew=0.01))
        assert agent.engine_time(1000.0 + 10000.0) == 10100

    def test_zero_time_behavior(self):
        agent = make_agent(behavior=AgentBehavior(report_zero_time=True))
        result = SnmpClient(agent).discover(now=5000.0)
        assert result.engine_time == 0
        assert result.engine_boots == 0

    def test_future_time_offset(self):
        agent = make_agent(behavior=AgentBehavior(future_time_offset=10**9))
        assert agent.engine_time(1500.0) == 500 + 10**9

    def test_time_never_negative(self):
        agent = make_agent(boot_time=5000.0)
        assert agent.engine_time(100.0) == 0

    def test_time_resolution_quantizes(self):
        agent = make_agent(behavior=AgentBehavior(time_resolution=10))
        assert agent.engine_time(1000.0 + 57.0) == 50


class TestBehaviorQuirks:
    def test_amplification(self):
        agent = make_agent(behavior=AgentBehavior(amplification_count=48))
        replies = agent.handle(build_discovery_probe(1).encode(), now=0.0)
        assert len(replies) == 48
        assert len(set(replies)) == 1  # identical copies, as the paper observed

    def test_malformed_reply_unparseable(self):
        from repro.asn1 import ber
        from repro.snmp.messages import parse_discovery_response

        agent = make_agent(behavior=AgentBehavior(malformed=True))
        replies = agent.handle(build_discovery_probe(1).encode(), now=0.0)
        assert len(replies) == 1
        with pytest.raises(ber.BerDecodeError):
            parse_discovery_response(replies[0])

    def test_empty_engine_id_reply(self):
        agent = make_agent(behavior=AgentBehavior(report_empty_engine_id=True))
        result = SnmpClient(agent).discover(now=0.0)
        assert result.engine_id == b""

    def test_v3_enabled_by_community(self):
        """The Cisco lab finding: configuring only a v2c community makes
        the agent answer v3 discovery."""
        behavior = AgentBehavior(v3_enabled=False, v3_enabled_by_community=True)
        without_community = make_agent(behavior=behavior)
        assert SnmpClient(without_community).discover(now=0.0) is None
        with_community = make_agent(behavior=behavior, communities=(b"pass123",))
        assert SnmpClient(with_community).discover(now=0.0) is not None


class TestCommunityAccess:
    def test_correct_community_answers(self):
        agent = make_agent(communities=(b"public",))
        value = SnmpClient(agent).get_v2c(b"public", constants.OID_SYS_DESCR)
        assert value == b"Test Router"

    def test_wrong_community_silent(self):
        agent = make_agent(communities=(b"public",))
        assert SnmpClient(agent).get_v2c(b"secret", constants.OID_SYS_DESCR) is None

    def test_v2c_disabled(self):
        agent = make_agent(
            communities=(b"public",), behavior=AgentBehavior(v2c_enabled=False)
        )
        assert SnmpClient(agent).get_v2c(b"public", constants.OID_SYS_DESCR) is None

    def test_unknown_oid_error(self):
        agent = make_agent(communities=(b"public",))
        assert SnmpClient(agent).get_v2c(b"public", Oid("1.3.6.1.99")) is None


class TestV3Queries:
    USER = UsmUser(b"admin", AuthProtocol.HMAC_SHA1_96, "correct horse battery")

    def test_unknown_user_leaks_engine_id(self):
        """§6.2.1: the Report rejecting an unknown user still carries the
        engine ID — the core information leak."""
        agent = make_agent()
        value, engine_id = SnmpClient(agent).get_v3_noauth(
            b"noAuthUser", constants.OID_SYS_DESCR
        )
        assert value is None
        assert engine_id == ENGINE.raw
        assert agent.stats_unknown_user_names == 1

    def test_authenticated_get(self):
        agent = make_agent(users=(self.USER,))
        value = SnmpClient(agent).get_v3_auth(self.USER, constants.OID_SYS_DESCR, now=1500.0)
        assert value == b"Test Router"

    def test_wrong_password_rejected(self):
        agent = make_agent(users=(self.USER,))
        impostor = UsmUser(b"admin", AuthProtocol.HMAC_SHA1_96, "wrong password")
        assert SnmpClient(agent).get_v3_auth(impostor, constants.OID_SYS_DESCR) is None
        assert agent.stats_wrong_digests == 1

    def test_md5_auth_also_works(self):
        user = UsmUser(b"md5user", AuthProtocol.HMAC_MD5_96, "another secret")
        agent = make_agent(users=(user,))
        assert SnmpClient(agent).get_v3_auth(user, constants.OID_SYS_DESCR) == b"Test Router"

    def test_sysuptime_tracks_boot_time(self):
        from repro.snmp.pdu import TimeTicks

        agent = make_agent(users=(self.USER,))
        value = SnmpClient(agent).get_v3_auth(self.USER, constants.OID_SYS_UPTIME, now=1060.0)
        assert isinstance(value, TimeTicks)
        assert int(value) == 6000  # 60 s in hundredths
