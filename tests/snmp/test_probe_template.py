"""The batch pipeline's cached fast paths never change a byte.

Three equivalences, each load-bearing for the staged pipeline:

* :class:`DiscoveryProbeTemplate` renders byte-identically to
  :func:`encode_discovery_probe` across every msg-id width boundary;
* :func:`match_discovery_report` accepts only payloads the full
  :func:`parse_discovery_response` decoder would, with identical fields;
* the hinted :meth:`SnmpAgent.handle_discovery` entry point answers
  exactly like the generic :meth:`SnmpAgent.handle` for every
  adversarial personality, including state effects (handled counts,
  mid-scan reboots).
"""

from __future__ import annotations

import pytest

from repro.asn1 import ber
from repro.net.addresses import parse_ip
from repro.net.packet import Datagram
from repro.snmp.agent import AgentBehavior, SnmpAgent
from repro.snmp.constants import SNMP_PORT
from repro.snmp.engine_id import EngineId
from repro.snmp.loadbalancer import AgentPool, BalancingPolicy
from repro.snmp.messages import (
    DiscoveryProbeTemplate,
    encode_discovery_probe,
    match_discovery_report,
    parse_discovery_response,
)

#: msg-id values straddling every BER integer length boundary the scan
#: can reach, plus the sign-bit padding cases (0x80 needs a leading zero).
BOUNDARY_IDS = [
    1, 2, 0x7F, 0x80, 0x81, 0xFF, 0x100, 0x7FFF, 0x8000,
    0xFFFF, 0x10000, 0x7FFFFF, 0x800000, 0x7FFFFFFF,
]


@pytest.mark.parametrize("msg_id", BOUNDARY_IDS)
def test_template_render_matches_reference_encoder(msg_id):
    template = DiscoveryProbeTemplate()
    assert template.render(msg_id) == encode_discovery_probe(msg_id)


def test_render_batch_matches_per_id_render():
    template = DiscoveryProbeTemplate()
    batch = template.render_batch(BOUNDARY_IDS)
    assert batch == [encode_discovery_probe(i) for i in BOUNDARY_IDS]


def test_render_batch_reuses_cached_frames_across_calls():
    template = DiscoveryProbeTemplate()
    first = template.render_batch([5, 0x5000])
    second = template.render_batch([5, 0x5000])
    assert first == second == [encode_discovery_probe(5), encode_discovery_probe(0x5000)]


@pytest.mark.parametrize("msg_id", BOUNDARY_IDS)
def test_encode_integer_batch_matches_scalar(msg_id):
    assert ber.encode_integer_batch([msg_id]) == [ber.encode_integer(msg_id)]


def test_encode_integer_batch_mixed_widths():
    values = [0, 1, 0x7F, 0x80, 0xFFFF, 0x123456, -1, -128, -129]
    assert ber.encode_integer_batch(values) == [ber.encode_integer(v) for v in values]


def agent(behavior: "AgentBehavior | None" = None) -> SnmpAgent:
    return SnmpAgent(
        engine_id=EngineId(bytes([0x80, 0, 0, 9, 3, 1, 2, 3, 4, 5, 6])),
        boot_time=-300.0,
        behavior=behavior or AgentBehavior(),
    )


def reply_to(msg_id: int = 7, now: float = 50.0) -> bytes:
    replies = agent().handle(encode_discovery_probe(msg_id), now)
    assert len(replies) == 1
    return replies[0]


def test_fast_match_agrees_with_full_parser():
    payload = reply_to()
    fast = match_discovery_report(payload)
    slow = parse_discovery_response(payload)
    assert fast is not None
    assert (fast.engine_id, fast.engine_boots, fast.engine_time, fast.msg_id) == (
        slow.engine_id, slow.engine_boots, slow.engine_time, slow.msg_id
    )


def test_fast_match_rejects_every_single_byte_truncation():
    payload = reply_to()
    for cut in range(len(payload)):
        truncated = payload[:cut]
        assert match_discovery_report(truncated) is None


def test_fast_match_never_disagrees_under_byte_flips():
    """Flip each byte in turn: wherever the fast matcher still accepts,
    the full decoder must accept with the same fields (a match may
    legitimately survive flips inside variable fields like engine time)."""
    payload = reply_to()
    for pos in range(len(payload)):
        mutated = bytearray(payload)
        mutated[pos] ^= 0x01
        mutated = bytes(mutated)
        fast = match_discovery_report(mutated)
        if fast is None:
            continue
        slow = parse_discovery_response(mutated)
        assert (fast.engine_id, fast.engine_boots, fast.engine_time, fast.msg_id) == (
            slow.engine_id, slow.engine_boots, slow.engine_time, slow.msg_id
        )


def test_fast_match_rejects_trailing_garbage_and_probes():
    payload = reply_to()
    assert match_discovery_report(payload + b"\x00") is None
    assert match_discovery_report(encode_discovery_probe(7)) is None
    assert match_discovery_report(b"") is None


PERSONALITIES = [
    AgentBehavior(),
    AgentBehavior(garbage_reports=True),
    AgentBehavior(malformed=True),
    AgentBehavior(amplification_count=4),
    AgentBehavior(reboot_after_handles=2),
    AgentBehavior(report_zero_time=True),
    AgentBehavior(report_empty_engine_id=True),
    AgentBehavior(v3_enabled=False),
    AgentBehavior(future_time_offset=7200),
    AgentBehavior(clock_skew=1.5),
    AgentBehavior(time_resolution=10),
    AgentBehavior(engine_id_pad_to=32),
]


@pytest.mark.parametrize("behavior", PERSONALITIES, ids=lambda b: repr(b)[:40])
def test_hinted_handle_discovery_equals_generic_handle(behavior):
    """Drive twin agents through several probes so stateful personalities
    (reboots, skew) diverge if the fast path miscounts anything."""
    generic = agent(behavior)
    hinted = agent(behavior)
    for step in range(5):
        msg_id = 100 + step
        payload = encode_discovery_probe(msg_id)
        now = 50.0 + step * 3.7
        assert hinted.handle_discovery(payload, msg_id, msg_id, now) == generic.handle(
            payload, now
        )
    assert hinted.handled_count == generic.handled_count
    assert hinted.engine_boots == generic.engine_boots


def test_pool_hinted_dispatch_matches_generic_per_policy():
    source = parse_ip("203.0.113.5")
    vip = parse_ip("198.51.100.50")
    for policy in BalancingPolicy:
        def make_pool():
            return AgentPool(
                backends=[
                    agent(AgentBehavior(reboot_after_handles=3)) for _ in range(3)
                ],
                policy=policy,
            )

        generic, hinted = make_pool(), make_pool()
        for step in range(7):
            msg_id = 200 + step
            payload = encode_discovery_probe(msg_id)
            now = 80.0 + step
            datagram = Datagram(
                src=source, dst=vip, sport=40000, dport=SNMP_PORT,
                payload=payload, sent_at=now,
            )
            want = generic.handle_datagram(datagram, now)
            got = hinted.handle_discovery(payload, msg_id, msg_id, now, source=source)
            assert got == want, policy
