"""Unit tests for SNMP message framing."""

import pytest

from repro.asn1 import ber
from repro.asn1.oid import Oid
from repro.snmp import constants, pdu as pdu_mod
from repro.snmp.messages import (
    CommunityMessage,
    ScopedPdu,
    SnmpV3Message,
    UsmSecurityParameters,
    build_discovery_probe,
    parse_discovery_response,
    peek_version,
)


class TestUsmSecurityParameters:
    def test_roundtrip(self):
        params = UsmSecurityParameters(
            engine_id=bytes.fromhex("800000090300000c112233"),
            engine_boots=148,
            engine_time=10043812,
            user_name=b"admin",
            auth_params=b"\x00" * 12,
        )
        assert UsmSecurityParameters.decode(params.encode()) == params

    def test_empty_defaults_roundtrip(self):
        params = UsmSecurityParameters()
        decoded = UsmSecurityParameters.decode(params.encode())
        assert decoded.engine_id == b""
        assert decoded.engine_boots == 0
        assert decoded.engine_time == 0

    def test_trailing_bytes_rejected(self):
        blob = UsmSecurityParameters().encode() + b"\x00"
        with pytest.raises(ber.BerDecodeError):
            UsmSecurityParameters.decode(blob)


class TestDiscoveryProbe:
    def test_matches_paper_figure2(self):
        """The probe must have empty engine ID, zero boots/time, empty user,
        no auth/priv params, and plaintext msgData — Figure 2."""
        probe = build_discovery_probe(msg_id=99)
        decoded = SnmpV3Message.decode(probe.encode())
        assert decoded.security.engine_id == b""
        assert decoded.security.engine_boots == 0
        assert decoded.security.engine_time == 0
        assert decoded.security.user_name == b""
        assert decoded.security.auth_params == b""
        assert decoded.security.priv_params == b""
        assert decoded.is_reportable
        assert not decoded.is_authenticated
        assert decoded.scoped_pdu.pdu.tag == constants.TAG_GET_REQUEST
        assert decoded.scoped_pdu.pdu.varbinds == ()

    def test_probe_version_is_3(self):
        assert peek_version(build_discovery_probe(1).encode()) == constants.VERSION_3

    def test_probe_wire_size_plausible(self):
        """The paper sends 88-byte IPv4 packets; minus 28 bytes of headers
        the SNMP payload should be around 60 bytes."""
        assert 50 <= len(build_discovery_probe(1).encode()) <= 70

    def test_msg_ids_vary(self):
        a = build_discovery_probe(1).encode()
        b = build_discovery_probe(2).encode()
        assert a != b


class TestV3MessageRoundtrip:
    def make_message(self, **kwargs):
        defaults = dict(
            msg_id=7,
            flags=constants.FLAG_REPORTABLE,
            security=UsmSecurityParameters(engine_id=b"\x80\x00\x00\x09\x01"),
            scoped_pdu=ScopedPdu(
                context_engine_id=b"\x80\x00\x00\x09\x01",
                context_name=b"",
                pdu=pdu_mod.get_request(7, Oid("1.3.6.1.2.1.1.1.0")),
            ),
        )
        defaults.update(kwargs)
        return SnmpV3Message(**defaults)

    def test_roundtrip(self):
        message = self.make_message()
        assert SnmpV3Message.decode(message.encode()) == message

    def test_report_roundtrip(self):
        message = self.make_message(
            scoped_pdu=ScopedPdu(
                context_engine_id=b"",
                context_name=b"",
                pdu=pdu_mod.report(7, constants.OID_USM_STATS_UNKNOWN_ENGINE_IDS, 4),
            )
        )
        decoded = SnmpV3Message.decode(message.encode())
        assert decoded.scoped_pdu.pdu.is_report
        assert int(decoded.scoped_pdu.pdu.varbinds[0].value) == 4

    def test_wrong_version_rejected(self):
        v2c = CommunityMessage(
            version=constants.VERSION_2C,
            community=b"public",
            pdu=pdu_mod.get_request(1, Oid("1.3.6.1.2.1.1.1.0")),
        )
        with pytest.raises(ber.BerDecodeError):
            SnmpV3Message.decode(v2c.encode())

    def test_multibyte_flags_rejected(self):
        message = self.make_message()
        blob = bytearray(message.encode())
        # Corrupting deep structure must raise BerDecodeError, never others.
        blob[5] ^= 0xFF
        with pytest.raises(ber.BerDecodeError):
            SnmpV3Message.decode(bytes(blob))

    def test_encode_requires_scoped_pdu(self):
        with pytest.raises(ValueError):
            SnmpV3Message(msg_id=1, scoped_pdu=None).encode()


class TestCommunityMessage:
    def test_roundtrip_v2c(self):
        message = CommunityMessage(
            version=constants.VERSION_2C,
            community=b"public",
            pdu=pdu_mod.get_request(3, Oid("1.3.6.1.2.1.1.1.0")),
        )
        assert CommunityMessage.decode(message.encode()) == message

    def test_roundtrip_v1(self):
        message = CommunityMessage(
            version=constants.VERSION_1,
            community=b"private",
            pdu=pdu_mod.get_request(3, Oid("1.3.6.1.2.1.1.5.0")),
        )
        assert CommunityMessage.decode(message.encode()).version == constants.VERSION_1

    def test_v3_version_rejected_in_constructor(self):
        with pytest.raises(ValueError):
            CommunityMessage(
                version=constants.VERSION_3,
                community=b"x",
                pdu=pdu_mod.get_request(1, Oid("1.3.6.1")),
            )


class TestParseDiscoveryResponse:
    def test_extracts_triple(self):
        reply = SnmpV3Message(
            msg_id=42,
            flags=0,
            security=UsmSecurityParameters(
                engine_id=bytes.fromhex("800007c703748ef831db80"),
                engine_boots=148,
                engine_time=10043812,
            ),
            scoped_pdu=ScopedPdu(
                context_engine_id=b"",
                context_name=b"",
                pdu=pdu_mod.report(42, constants.OID_USM_STATS_UNKNOWN_ENGINE_IDS, 1),
            ),
        )
        parsed = parse_discovery_response(reply.encode())
        assert parsed.engine_id == bytes.fromhex("800007c703748ef831db80")
        assert parsed.engine_boots == 148
        assert parsed.engine_time == 10043812
        assert parsed.msg_id == 42

    def test_garbage_raises_decode_error(self):
        with pytest.raises(ber.BerDecodeError):
            parse_discovery_response(b"\x30\x03\x02\x01")
