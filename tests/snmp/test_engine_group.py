"""Tests for the snmpEngine MIB group and engine-time wrap behaviour."""


from repro.asn1.oid import Oid
from repro.net.mac import MacAddress
from repro.snmp import constants
from repro.snmp.agent import SnmpAgent, UsmUser
from repro.snmp.client import SnmpClient
from repro.snmp.engine_id import EngineId
from repro.snmp.mib import build_system_mib, install_engine_group
from repro.snmp.usm import AuthProtocol

USER = UsmUser(b"ops", AuthProtocol.HMAC_SHA1_96, "mib-walk-pass")


def make_agent(boot_time=0.0, boots=7):
    agent = SnmpAgent(
        engine_id=EngineId.from_mac(9, MacAddress("00:00:0c:33:44:55")),
        boot_time=boot_time,
        engine_boots=boots,
        users=(USER,),
        mib=build_system_mib("r", "r", Oid("1.3.6.1.4.1.9.1.1"), lambda: boot_time),
    )
    install_engine_group(agent.mib, agent)
    return agent


class TestEngineGroup:
    def test_engine_id_readable_over_mib(self):
        agent = make_agent()
        value = SnmpClient(agent).get_v3_auth(USER, constants.OID_SNMP_ENGINE_ID)
        assert value == agent.engine_id.raw

    def test_engine_boots_live(self):
        agent = make_agent(boots=7)
        client = SnmpClient(agent)
        assert client.get_v3_auth(USER, constants.OID_SNMP_ENGINE_BOOTS) == 7
        agent.reboot(now=500.0)
        assert client.get_v3_auth(USER, constants.OID_SNMP_ENGINE_BOOTS, now=600.0) == 8

    def test_engine_time_tracks_clock(self):
        agent = make_agent(boot_time=100.0)
        value = SnmpClient(agent).get_v3_auth(
            USER, constants.OID_SNMP_ENGINE_TIME, now=350.0
        )
        assert value == 250

    def test_mib_values_match_discovery(self):
        """The MIB view and the USM header tell one story."""
        agent = make_agent(boot_time=0.0, boots=7)
        client = SnmpClient(agent)
        discovery = client.discover(now=1234.0)
        assert client.get_v3_auth(USER, constants.OID_SNMP_ENGINE_BOOTS, now=1234.0) \
            == discovery.engine_boots
        mib_time = client.get_v3_auth(USER, constants.OID_SNMP_ENGINE_TIME, now=1234.0)
        assert abs(mib_time - discovery.engine_time) <= 1


class TestEngineTimeWrap:
    def test_wrap_increments_boots(self):
        """RFC 3414 §2.2.2: the 31-bit engine time wraps into boots."""
        agent = make_agent(boot_time=0.0, boots=1)
        far_future = float(constants.ENGINE_TIME_MAX) + 10_000.0
        value = agent.engine_time(far_future)
        assert 0 <= value <= constants.ENGINE_TIME_MAX
        assert agent.engine_boots == 2

    def test_double_wrap(self):
        agent = make_agent(boot_time=0.0, boots=1)
        value = agent.engine_time(2.0 * (constants.ENGINE_TIME_MAX + 1) + 55.0)
        assert agent.engine_boots == 3
        assert 0 <= value <= constants.ENGINE_TIME_MAX

    def test_normal_uptimes_unaffected(self):
        agent = make_agent(boot_time=0.0, boots=1)
        assert agent.engine_time(5_000_000.0) == 5_000_000
        assert agent.engine_boots == 1
