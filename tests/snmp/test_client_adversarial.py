"""Adversarial-personality hardening: broken firmware must never crash
the scan path.

The agent personalities under test (``garbage_reports``,
``engine_id_pad_to``, ``response_delay``, ``reboot_after_handles``) model
firmware actually seen by Internet-wide scans.  The manager-side client,
the scanner's observe path and the sharded executor must all treat their
replies as data — counted, skipped or filtered, never a crash.
"""

import ipaddress

from hypothesis import given, settings, strategies as st

from repro.asn1.oid import Oid
from repro.net.mac import MacAddress
from repro.net.packet import Datagram
from repro.net.transport import LinkProfile, NetworkFabric
from repro.scanner.zmap import ZmapScanner
from repro.snmp.agent import AgentBehavior, SnmpAgent, UsmUser
from repro.snmp.client import SnmpClient
from repro.snmp.engine_id import EngineId
from repro.snmp.usm import AuthProtocol

SYS_DESCR = Oid((1, 3, 6, 1, 2, 1, 1, 1, 0))
PROBER = ipaddress.ip_address("198.51.100.9")
TARGET = ipaddress.ip_address("192.0.2.1")


def make_agent(**behavior_kwargs):
    return SnmpAgent(
        engine_id=EngineId.from_mac(9, MacAddress("00:00:0c:f0:0d:01")),
        boot_time=0.0,
        engine_boots=2,
        behavior=AgentBehavior(**behavior_kwargs),
        communities=(b"public",),
        users=(UsmUser(b"u", AuthProtocol.HMAC_SHA1_96, "some-password"),),
    )


AUTH_USER = UsmUser(b"u", AuthProtocol.HMAC_SHA1_96, "some-password")


class TestGarbageReports:
    def test_discovery_returns_none(self):
        client = SnmpClient(make_agent(garbage_reports=True))
        assert client.discover(now=10.0) is None

    def test_v2c_get_returns_none(self):
        client = SnmpClient(make_agent(garbage_reports=True))
        assert client.get_v2c(b"public", SYS_DESCR) is None

    def test_v3_noauth_returns_nothing(self):
        client = SnmpClient(make_agent(garbage_reports=True))
        assert client.get_v3_noauth(b"u", SYS_DESCR) == (None, None)

    def test_v3_auth_returns_none(self):
        client = SnmpClient(make_agent(garbage_reports=True))
        assert client.get_v3_auth(AUTH_USER, SYS_DESCR) is None

    def test_garbage_is_not_silence(self):
        """The reply arrives on the wire — it is garbage, not a timeout."""
        agent = make_agent(garbage_reports=True)
        replies = agent.handle(
            SnmpClient(make_agent()).discover(now=0.0) and b"" or b"", now=0.0
        )
        assert replies == []  # empty payload is ignored, sanity check
        from repro.snmp.messages import build_discovery_probe

        replies = agent.handle(build_discovery_probe(1).encode(), now=0.0)
        assert len(replies) == 1 and len(replies[0]) > 0

    def test_scanner_observe_counts_unparsed(self):
        """ZmapScanner._observe yields an engine-id-less observation."""
        agent = make_agent(garbage_reports=True)
        fabric = NetworkFabric(seed=1, default_profile=LinkProfile())
        fabric.bind(TARGET, "udp", 161, agent.handle_datagram)
        from repro.snmp.messages import encode_discovery_probe

        probe = Datagram(PROBER, TARGET, 40000, 161, encode_discovery_probe(1))
        replies = fabric.inject(probe, now=0.0)
        observation = ZmapScanner._observe(TARGET, replies)
        assert observation.engine_id is None
        assert observation.response_count == 1


class TestOddEngineIds:
    def test_oversized_engine_id_disclosed(self):
        client = SnmpClient(make_agent(engine_id_pad_to=64))
        result = client.discover(now=5.0)
        assert result is not None
        assert len(result.engine_id) == 64

    def test_undersized_engine_id_disclosed(self):
        client = SnmpClient(make_agent(engine_id_pad_to=3))
        result = client.discover(now=5.0)
        assert result is not None
        assert len(result.engine_id) == 3

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=200))
    def test_any_pad_length_survives_full_exchange(self, pad_to):
        client = SnmpClient(make_agent(engine_id_pad_to=pad_to))
        result = client.discover(now=5.0)
        assert result is not None
        assert len(result.engine_id) == pad_to
        # The authenticated path keys off the reported ID; it must not
        # crash even when that ID is nonsense.
        value, engine_id = client.get_v3_noauth(b"nobody", SYS_DESCR)
        assert engine_id is not None and len(engine_id) == pad_to


class TestSlowResponder:
    def test_fabric_stretches_arrival_times(self):
        fast, slow = make_agent(), make_agent(response_delay=3.0)
        arrivals = {}
        for name, agent in (("fast", fast), ("slow", slow)):
            fabric = NetworkFabric(seed=42, default_profile=LinkProfile(jitter=0.0))
            fabric.bind(TARGET, "udp", 161, agent.handle_datagram)
            from repro.snmp.messages import encode_discovery_probe

            probe = Datagram(PROBER, TARGET, 40000, 161, encode_discovery_probe(1))
            [(__, arrival)] = fabric.inject(probe, now=0.0)
            arrivals[name] = arrival
        assert arrivals["slow"] - arrivals["fast"] == 3.0


class TestMidScanReboot:
    def test_boots_bump_under_probe_load(self):
        agent = make_agent(reboot_after_handles=3)
        client = SnmpClient(agent)
        boots = []
        for i in range(9):
            result = client.discover(now=float(i))
            assert result is not None
            boots.append(result.engine_boots)
        # Started at 2 and rebooted on every third handled request.
        assert boots[0] == 2
        assert boots[-1] == 5
        assert boots == sorted(boots)

    def test_engine_time_resets_on_reboot(self):
        agent = make_agent(reboot_after_handles=2)
        client = SnmpClient(agent)
        client.discover(now=100.0)
        result = client.discover(now=100.0)  # second handle triggers reboot
        assert result.engine_time == 0
