"""Unit tests for the ECDF type."""

import pytest

from repro.analysis.ecdf import Ecdf


class TestEcdf:
    def test_at(self):
        ecdf = Ecdf.from_values([1, 2, 2, 3, 10])
        assert ecdf.at(0) == 0.0
        assert ecdf.at(1) == 0.2
        assert ecdf.at(2) == 0.6
        assert ecdf.at(10) == 1.0
        assert ecdf.at(100) == 1.0

    def test_fraction_above_and_at_least(self):
        ecdf = Ecdf.from_values([1, 2, 3, 4])
        assert ecdf.fraction_above(2) == 0.5
        assert ecdf.fraction_at_least(2) == 0.75

    def test_quantiles(self):
        ecdf = Ecdf.from_values(range(1, 101))
        assert ecdf.quantile(0.0) == 1
        assert ecdf.quantile(1.0) == 100
        assert ecdf.median == 50

    def test_quantile_bounds(self):
        ecdf = Ecdf.from_values([1.0])
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_empty_rejected(self):
        ecdf = Ecdf.from_values([])
        with pytest.raises(ValueError):
            ecdf.at(1.0)
        with pytest.raises(ValueError):
            ecdf.quantile(0.5)

    def test_series_monotonic(self):
        ecdf = Ecdf.from_values([5, 1, 3, 3, 9])
        series = ecdf.series()
        ys = [y for __, y in series]
        assert ys == sorted(ys)
        assert series[-1][1] == 1.0

    def test_render_contains_fractions(self):
        text = Ecdf.from_values([1, 2, 3]).render("demo", [1, 2, 3])
        assert "demo" in text
        assert "33.3%" in text

    def test_count(self):
        assert Ecdf.from_values([1, 1, 2]).count == 3


class TestEcdfProperties:
    def test_at_matches_manual_count(self):
        from hypothesis import given, strategies as st

        @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                  min_value=-1e9, max_value=1e9), min_size=1),
               st.floats(allow_nan=False, allow_infinity=False,
                         min_value=-1e9, max_value=1e9))
        def check(values, x):
            ecdf = Ecdf.from_values(values)
            manual = sum(1 for v in values if v <= x) / len(values)
            assert ecdf.at(x) == pytest.approx(manual)

        check()
