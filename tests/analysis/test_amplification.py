"""Unit tests for amplification analysis (§8)."""

import ipaddress

import pytest

from repro.analysis.amplification import analyze_amplification
from repro.scanner.records import ScanObservation, ScanResult
from repro.snmp.engine_id import EngineId


def make_scan(observations):
    scan = ScanResult(label="t", ip_version=4, started_at=0.0)
    scan.targets_probed = len(observations) * 2
    scan.probe_bytes_sent = scan.targets_probed * 88
    for obs in observations:
        scan.add(obs)
    return scan


def obs(address, response_count=1, wire_bytes=130):
    return ScanObservation(
        address=ipaddress.ip_address(address),
        recv_time=0.0,
        engine_id=EngineId(b"\x80\x00\x00\x09\x01\x01"),
        engine_boots=1,
        engine_time=10,
        response_count=response_count,
        wire_bytes=wire_bytes,
    )


class TestAmplification:
    def test_single_reply_baf(self):
        scan = make_scan([obs("192.0.2.1")])
        report = analyze_amplification(scan)
        # One 130-byte reply to an 88-byte probe.
        assert report.mean_baf == pytest.approx(130 / 88)
        assert report.worst_paf == 1.0
        assert report.multi_responder_reply_share == 0.0

    def test_amplifier_dominates_tail(self):
        scan = make_scan([obs("192.0.2.1"), obs("192.0.2.2", response_count=48)])
        report = analyze_amplification(scan)
        assert report.worst_paf == 48.0
        assert report.worst_baf == pytest.approx(48 * 130 / 88)
        assert report.multi_responder_reply_share == pytest.approx(48 / 49)

    def test_explicit_probe_size(self):
        scan = make_scan([obs("192.0.2.1", wire_bytes=100)])
        report = analyze_amplification(scan, probe_size=50)
        assert report.mean_baf == pytest.approx(2.0)

    def test_empty_scan(self):
        scan = ScanResult(label="t", ip_version=4, started_at=0.0)
        report = analyze_amplification(scan)
        assert report.responders == 0
        assert report.mean_baf == 0.0

    def test_ecdfs_cover_population(self):
        scan = make_scan([obs(f"192.0.2.{i}") for i in range(1, 11)])
        report = analyze_amplification(scan)
        assert report.paf_ecdf.count == 10
        assert report.paf_ecdf.at(1.0) == 1.0

    def test_headline_renders(self):
        scan = make_scan([obs("192.0.2.1", response_count=3)])
        text = analyze_amplification(scan).headline()
        assert "BAF" in text and "responders" in text
