"""Tests for the statistical-rigor helpers."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    bootstrap_interval,
    compare_proportions,
    vendor_share_intervals,
    wilson_interval,
)


class TestWilson:
    def test_contains_point_estimate(self):
        est = wilson_interval(42, 100)
        assert est.low < est.point < est.high
        assert est.point == 0.42

    def test_small_sample_wide_interval(self):
        small = wilson_interval(2, 5)
        large = wilson_interval(400, 1000)
        assert (small.high - small.low) > (large.high - large.low)

    def test_extremes_bounded(self):
        zero = wilson_interval(0, 50)
        full = wilson_interval(50, 50)
        assert zero.low == 0.0 and zero.high > 0.0
        assert full.high == 1.0 and full.low < 1.0

    def test_no_trials(self):
        est = wilson_interval(0, 0)
        assert (est.low, est.high) == (0.0, 1.0)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_confidence_widens_interval(self):
        c95 = wilson_interval(30, 100, confidence=0.95)
        c99 = wilson_interval(30, 100, confidence=0.99)
        assert (c99.high - c99.low) > (c95.high - c95.low)

    def test_known_value(self):
        # Wilson 95% for 5/10 is approximately [0.237, 0.763].
        est = wilson_interval(5, 10)
        assert est.low == pytest.approx(0.237, abs=0.01)
        assert est.high == pytest.approx(0.763, abs=0.01)

    def test_str(self):
        assert "[" in str(wilson_interval(3, 10))


class TestBootstrap:
    def test_mean_recovery(self):
        values = [10.0] * 50
        est = bootstrap_interval(values)
        assert est.point == 10.0
        assert est.low == est.high == 10.0

    def test_interval_contains_true_mean_usually(self):
        rng = np.random.default_rng(3)
        values = list(rng.normal(5.0, 2.0, size=200))
        est = bootstrap_interval(values)
        assert est.low < 5.0 < est.high

    def test_median_statistic(self):
        values = [1.0, 2.0, 3.0, 100.0]
        est = bootstrap_interval(values, statistic=np.median)
        assert est.point == 2.5

    def test_deterministic_given_seed(self):
        values = [1.0, 5.0, 9.0, 2.0, 7.0]
        a = bootstrap_interval(values, seed=11)
        b = bootstrap_interval(values, seed=11)
        assert (a.low, a.high) == (b.low, b.high)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_interval([])


class TestCompareProportions:
    def test_identical_not_significant(self):
        result = compare_proportions(50, 100, 50, 100)
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant()

    def test_large_difference_significant(self):
        result = compare_proportions(90, 100, 10, 100)
        assert result.significant()
        assert result.z_score > 5

    def test_small_samples_not_significant(self):
        result = compare_proportions(3, 5, 2, 5)
        assert not result.significant()

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            compare_proportions(0, 0, 1, 10)


class TestVendorShares:
    def test_intervals_for_census(self):
        counts = {"Cisco": 240, "Huawei": 52, "Juniper": 16}
        intervals = vendor_share_intervals(counts)
        assert intervals["Cisco"].point > intervals["Huawei"].point
        # Cisco's dominance is statistically separable from Huawei's share.
        assert intervals["Cisco"].low > intervals["Huawei"].high
