"""Unit tests for Hamming, coverage, dominance and regional analysis."""

import ipaddress

import pytest

from repro.alias.sets import AliasSets
from repro.analysis.coverage import as_coverage, combined_coverage
from repro.analysis.dominance import as_vendor_profiles, dominance_values, vendors_per_as
from repro.analysis.hamming import hamming_weight_distribution, histogram, mean, skewness
from repro.snmp.engine_id import EngineId


class TestHamming:
    def test_dedup(self):
        ids = [EngineId(b"\xf0" * 8)] * 5 + [EngineId(b"\x0f" * 8)]
        assert len(hamming_weight_distribution(ids)) == 2

    def test_data_only_strips_header(self):
        eid = EngineId.from_octets(9, b"\xff" * 8)
        (weight,) = hamming_weight_distribution([eid], data_only=True)
        assert weight == 1.0
        (full,) = hamming_weight_distribution([eid], data_only=False)
        assert full < 1.0  # header bits dilute

    def test_non_conforming_uses_full_value(self):
        eid = EngineId.legacy(9, b"\x00" * 8)
        (weight,) = hamming_weight_distribution([eid])
        assert weight < 0.1

    def test_skewness_signs(self):
        right_tail = [0.2] * 50 + [0.8] * 10
        left_tail = [0.8] * 50 + [0.2] * 10
        assert skewness(right_tail) > 0
        assert skewness(left_tail) < 0

    def test_skewness_needs_data(self):
        with pytest.raises(ValueError):
            skewness([0.1, 0.2])

    def test_mean_and_histogram(self):
        assert mean([0.0, 1.0]) == 0.5
        hist = histogram([0.05, 0.05, 0.95], bins=10)
        assert hist[0][1] == pytest.approx(2 / 3)
        assert hist[-1][1] == pytest.approx(1 / 3)
        with pytest.raises(ValueError):
            histogram([0.5], bins=0)


class TestCoverage:
    def _topo(self):
        from repro.topology.config import TopologyConfig
        from repro.topology.generator import build_topology

        return build_topology(TopologyConfig.tiny(seed=23))

    def test_as_coverage_ratios(self):
        topo = self._topo()
        router_ips = {
            i.address for d in topo.routers() for i in d.interfaces if i.version == 4
        }
        responsive = set(list(router_ips)[: len(router_ips) // 4])
        cov = as_coverage(topo, router_ips, responsive)
        assert 0.15 < cov.overall < 0.35
        for asn, ratio in cov.ratios(min_total=2).items():
            assert 0.0 <= ratio <= 1.0

    def test_min_total_filters_small_ases(self):
        topo = self._topo()
        router_ips = {
            i.address for d in topo.routers() for i in d.interfaces if i.version == 4
        }
        cov = as_coverage(topo, router_ips, set())
        assert len(cov.ratios(min_total=50)) <= len(cov.ratios(min_total=2))

    def test_combined_coverage(self):
        a1, a2, a3, a4 = (ipaddress.ip_address(f"192.0.2.{i}") for i in range(1, 5))
        router_ips = {a1, a2, a3, a4}
        midar = AliasSets(sets=[frozenset({a1, a2})], technique="midar")
        snmp = AliasSets(sets=[frozenset({a2, a3})], technique="snmp")
        combined = combined_coverage(router_ips, midar, snmp)
        assert combined.midar_fraction == 0.5
        assert combined.snmpv3_fraction == 0.5
        assert combined.combined_fraction == 0.75

    def test_combined_ignores_singletons(self):
        a1 = ipaddress.ip_address("192.0.2.1")
        singleton = AliasSets(sets=[frozenset({a1})])
        combined = combined_coverage({a1}, singleton, singleton)
        assert combined.combined_fraction == 0.0


class TestDominance:
    def test_profiles(self):
        profiles = as_vendor_profiles({1: ["Cisco", "Cisco", "Juniper"], 2: ["Huawei"]})
        by_asn = {p.asn: p for p in profiles}
        assert by_asn[1].dominance == pytest.approx(2 / 3)
        assert by_asn[1].dominant_vendor == "Cisco"
        assert by_asn[1].vendor_count == 2
        assert by_asn[2].dominance == 1.0

    def test_empty_as_skipped(self):
        assert as_vendor_profiles({1: []}) == []

    def test_vendors_per_as_threshold(self):
        profiles = as_vendor_profiles(
            {1: ["Cisco"] * 10 + ["Juniper"], 2: ["Huawei"]}
        )
        ecdf_all = vendors_per_as(profiles, min_routers=1)
        ecdf_big = vendors_per_as(profiles, min_routers=5)
        assert ecdf_all.count == 2
        assert ecdf_big.count == 1

    def test_dominance_ecdf(self):
        profiles = as_vendor_profiles(
            {1: ["Cisco"] * 9 + ["Juniper"], 2: ["Cisco", "Huawei"]}
        )
        ecdf = dominance_values(profiles, min_routers=2)
        assert ecdf.fraction_at_least(0.9) == 0.5
